#!/usr/bin/env python3
"""TPC-C on DynaStar vs the baselines.

Runs the same TPC-C workload (4 warehouses, 4 partitions) under three
systems and compares throughput and cross-partition traffic:

* DynaStar        — random initial placement, on-line repartitioning;
* S-SMR*          — static warehouse-aligned placement (needs a-priori
                    workload knowledge: the idealized comparator);
* S-SMR (random)  — static random placement: what static partitioning
                    costs you when you guess wrong.

Run:  python examples/tpcc_benchmark.py
"""

from repro.baselines import SSMRSystem
from repro.core import DynaStarSystem, SystemConfig
from repro.experiments.harness import warehouse_aligned_placement
from repro.sim import ConstantLatency
from repro.workloads.tpcc import TPCCApp, TPCCConfig, TPCCWorkload

DURATION = 60.0
CLIENTS = 24


def run(mode: str, placement):
    tpcc = TPCCConfig(n_warehouses=4, customers_per_district=10, n_items=60)
    app = TPCCApp(tpcc)
    config = SystemConfig(
        n_partitions=4,
        seed=5,
        latency=ConstantLatency(0.0005),
        placement=placement,
        repartition_enabled=(mode == "dynastar"),
        repartition_threshold=4000,
        service_time=0.002,
        mode="ssmr" if mode.startswith("ssmr") else "dynastar",
    )
    if mode.startswith("ssmr"):
        system = SSMRSystem(app, config)
    else:
        system = DynaStarSystem(app, config)
    workload = TPCCWorkload(tpcc, seed=9)
    for _ in range(CLIENTS):
        system.add_client(workload, stop_at=DURATION)
    system.run(until=DURATION)

    counters = system.monitor.counters()
    completed = counters.get("commands_completed", 0)
    # steady state: second half of the run
    series = system.monitor.series("completed").buckets()
    steady = [v for t, v in series if t >= DURATION / 2]
    return {
        "tput": sum(steady) / max(1, len(steady)),
        "completed": completed,
        "multi": counters.get("multi_partition_commands", 0),
        "objects": counters.get("objects_exchanged", 0),
        "aborts": counters.get("commands_failed", 0),
    }


def main() -> None:
    rows = [
        ("DynaStar (random start)", run("dynastar", "random")),
        ("S-SMR* (aligned)", run("ssmr_star", warehouse_aligned_placement(
            TPCCConfig(n_warehouses=4, customers_per_district=10, n_items=60)))),
        ("S-SMR (random)", run("ssmr_random", "random")),
    ]
    print(f"{'system':<26} {'steady tput':>12} {'completed':>10} "
          f"{'multi-part':>10} {'objects':>9} {'aborts':>7}")
    print("-" * 80)
    for name, r in rows:
        print(f"{name:<26} {r['tput']:>10.1f}/s {r['completed']:>10} "
              f"{r['multi']:>10} {r['objects']:>9} {r['aborts']:>7}")
    print("\nDynaStar converges to S-SMR*-like throughput without knowing the")
    print("workload in advance; random static placement pays a permanent")
    print("multi-partition tax (the paper's core claim).")


if __name__ == "__main__":
    main()
