#!/usr/bin/env python3
"""Chirper on DynaStar: watch repartitioning adapt to a social workload.

Generates a power-law social graph (the paper's Higgs-dataset stand-in),
starts DynaStar with a *random* placement, drives a mixed 85/15
timeline/post workload, and shows the multi-partition command rate
collapsing once the oracle repartitions the workload graph.

Run:  python examples/social_network.py
"""

from repro.core import DynaStarSystem, SystemConfig
from repro.sim import ConstantLatency
from repro.workloads.social import (
    ChirperApp,
    ChirperWorkload,
    generate_social_graph,
)


def rate_in(series, t0, t1):
    window = [v for t, v in series if t0 <= t < t1]
    return sum(window) / max(1, len(window))


def main() -> None:
    graph = generate_social_graph(n_users=800, avg_follows=10, seed=7)
    ranked = graph.users_by_popularity()
    print(
        f"social graph: {graph.num_users} users, {graph.num_edges} follow edges; "
        f"top celebrity has {graph.in_degree(ranked[0])} followers"
    )

    app = ChirperApp(graph)
    system = DynaStarSystem(
        app,
        SystemConfig(
            n_partitions=4,
            seed=3,
            latency=ConstantLatency(0.0005),
            placement="random",           # DynaStar needs no prior knowledge
            repartition_enabled=True,
            repartition_threshold=4000,   # accesses between repartitions
        ),
    )

    workload = ChirperWorkload(graph, mix="mix", seed=11)
    for _ in range(12):
        system.add_client(workload, stop_at=60.0)
    system.run(until=60.0)

    completed = system.monitor.series("completed").buckets()
    multi = system.monitor.counters().get("multi_partition_commands", 0)
    total = system.monitor.counters().get("commands_completed", 0)
    plans = [t for t, v in system.monitor.series("plans").buckets() if v > 0]

    print(f"\ncompleted {total} commands "
          f"({workload.stats['timeline']} timeline / {workload.stats['post']} post)")
    print(f"plans applied at t = {[f'{t:.0f}s' for t in plans]}")
    print(f"multi-partition commands overall: {multi} ({100 * multi / max(1, total):.1f}%)")

    if plans:
        before = rate_in(completed, 0, plans[0])
        after = rate_in(completed, plans[0] + 5, 60.0)
        print(f"throughput before first plan: {before:7.1f} cmds/s")
        print(f"throughput after  first plan: {after:7.1f} cmds/s")

    print("\nper-partition load (skewed by user popularity, like Table 1):")
    for name in system.partition_names:
        tput = system.monitor.series("tput", partition=name).total()
        nodes = len(system.servers(name)[0].owned_nodes)
        print(f"  {name}: {tput:7.0f} commands executed, {nodes:4d} users hosted")


if __name__ == "__main__":
    main()
