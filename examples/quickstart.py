#!/usr/bin/env python3
"""Quickstart: a replicated key-value store on DynaStar.

Builds a 2-partition DynaStar deployment on the simulated network, runs a
handful of single- and multi-partition commands through a closed-loop
client, and prints what happened — including the borrow-and-return dance
behind a cross-partition ``transfer``.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace /tmp/quickstart-trace.jsonl
      python -m repro.obs.explain /tmp/quickstart-trace.jsonl
      python examples/quickstart.py --obs /tmp/quickstart-obs
      python -m repro.obs.report /tmp/quickstart-obs
      python examples/quickstart.py --elastic --obs /tmp/quickstart-elastic
      python -m repro.obs.report /tmp/quickstart-elastic --check-reconfig
      python examples/quickstart.py --compartment --obs /tmp/quickstart-reads
      python -m repro.obs.report /tmp/quickstart-reads --check-reads
"""

import argparse
import random

from repro.compartment import CompartmentConfig
from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import ScriptedWorkload
from repro.sim import ConstantLatency
from repro.smr import Command, KeyValueApp


def run_elastic(args) -> None:
    """The elastic variant: a seeded hot-key workload against low split
    thresholds, so the oracle splits a partition online within the run —
    the CI elastic smoke checks the exported artifacts with
    ``python -m repro.obs.report DIR --check-reconfig``."""
    app = KeyValueApp({f"account{i}": 100 for i in range(12)})
    system = DynaStarSystem(
        app,
        SystemConfig(
            n_partitions=2,
            seed=42,
            latency=ConstantLatency(0.001),
            repartition_enabled=False,
            elastic_enabled=True,
            elastic_split_factor=1.5,
            elastic_eval_interval=100,
            elastic_cooldown=200,
            max_partitions=4,
            min_partitions=2,
            hint_period=0.25,
            idempotency_keys=True,
            tracing=args.trace is not None or args.obs is not None,
            audit=True,
            health_sample_period=1.0 if args.obs is not None else None,
        ),
    )
    before = len(system.partition_names)
    # Hammer the keys of the node-heaviest partition: its windowed access
    # share blows through the split factor (and it is guaranteed to hold
    # enough nodes to be splittable) so the oracle splits it online.
    by_partition: dict = {}
    for node, part in system.initial_assignment.items():
        by_partition.setdefault(part, []).append(node)
    hot = sorted(max(by_partition.values(), key=lambda nodes: (len(nodes), nodes)))
    every = sorted(system.initial_assignment)
    rng = random.Random(42)
    commands = []
    for i in range(800):
        key = rng.choice(hot) if rng.random() < 0.9 else rng.choice(every)
        if rng.random() < 0.5:
            commands.append(Command(f"c:{i}", "read", (key,)))
        else:
            commands.append(Command(f"c:{i}", "write", (key, i)))
    client = system.add_client(ScriptedWorkload(commands))
    system.run(until=30.0)

    after = len(system.partition_names)
    print(f"partitions: {before} -> {after} "
          f"({', '.join(sorted(system.partition_names))})")
    reconfigs = [
        r for r in system.audit.records if r["kind"].startswith("reconfig-")
    ]
    for record in reconfigs:
        detail = " ".join(
            f"{k}={record[k]}"
            for k in ("epoch", "op", "source", "target", "partition")
            if k in record
        )
        print(f"  t={record['t']:.3f} {record['kind']} {detail}")
    print(f"completed={client.completed}  failed={client.failed}")
    if after == before:
        raise SystemExit("elastic quickstart did not change the partition count")

    if args.obs:
        from repro.experiments.harness import export_run_artifacts

        written = export_run_artifacts(system, args.obs)
        print(f"wrote run artifacts to {args.obs}: " + ", ".join(sorted(written)))
        print(f"check them with: python -m repro.obs.report {args.obs} "
              "--check-reconfig")


def run_compartment(args) -> None:
    """The compartmentalized variant: proxy-leader ingress, three read
    learners per partition, and leader-lease local reads under a
    read-heavy scripted workload — the CI compartment smoke checks the
    exported artifacts with
    ``python -m repro.obs.report DIR --check-reads``."""
    app = KeyValueApp({f"account{i}": 100 for i in range(12)})
    system = DynaStarSystem(
        app,
        SystemConfig(
            n_partitions=2,
            seed=42,
            latency=ConstantLatency(0.001),
            service_time=0.001,
            client_timeout=1.0,
            tracing=args.trace is not None or args.obs is not None,
            audit=args.obs is not None,
            health_sample_period=1.0 if args.obs is not None else None,
            compartment=CompartmentConfig(
                enabled=True, n_proxy_leaders=2, n_learners=3
            ),
        ),
    )
    keys = sorted(system.initial_assignment)
    rng = random.Random(42)
    commands = []
    for i in range(600):
        key = rng.choice(keys)
        if rng.random() < 0.85:
            commands.append(Command(f"c:{i}", "read", (key,)))
        else:
            commands.append(Command(f"c:{i}", "write", (key, i)))
    client = system.add_client(ScriptedWorkload(commands))
    system.run(until=30.0)

    counters = system.monitor.snapshot()["counters"]
    local_ok = sum(
        v for k, v in counters.items()
        if k.startswith("reads{") and "event=local_ok" in k
    )
    print(f"completed={client.completed}  failed={client.failed}")
    print(f"local reads served: {local_ok} of {client.local_reads} dispatched")
    for key in sorted(counters):
        if key.startswith(("lease{", "learner_reads{", "proxy{")):
            print(f"  {key} = {counters[key]}")
    if not local_ok:
        raise SystemExit("compartment quickstart served no local reads")

    if args.obs:
        from repro.experiments.harness import export_run_artifacts

        written = export_run_artifacts(system, args.obs)
        print(f"wrote run artifacts to {args.obs}: " + ", ".join(sorted(written)))
        print(f"check them with: python -m repro.obs.report {args.obs} "
              "--check-reads")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a command trace and export it as JSONL to PATH",
    )
    parser.add_argument(
        "--obs",
        metavar="DIR",
        default=None,
        help="enable tracing, decision auditing, and health sampling, "
        "and export all run artifacts into DIR (for repro.obs.report)",
    )
    parser.add_argument(
        "--elastic",
        action="store_true",
        help="run the elastic variant: a hot-key workload that makes the "
        "oracle split a partition at runtime",
    )
    parser.add_argument(
        "--compartment",
        action="store_true",
        help="run the compartmentalized variant: proxy leaders, three "
        "read learners per partition, and leader-lease local reads",
    )
    parser.add_argument(
        "--lanes",
        type=int,
        metavar="K",
        default=1,
        help="execute non-conflicting commands on K parallel lanes per "
        "partition (1 = serial legacy order; see DESIGN.md section 10)",
    )
    # parse_known_args: the test suite runs this file under runpy with
    # pytest's own argv still in place.
    args, _ = parser.parse_known_args()
    if args.elastic:
        run_elastic(args)
        return
    if args.compartment:
        run_compartment(args)
        return
    # 1. An application: a multi-key key-value store.  Every key is one
    #    DynaStar state variable (and one workload-graph node).
    app = KeyValueApp({f"account{i}": 100 for i in range(8)})

    # 2. A deployment: 2 partitions, each a Paxos group of 2 replicas +
    #    3 acceptors, plus the replicated location oracle.
    system = DynaStarSystem(
        app,
        SystemConfig(
            n_partitions=2,
            seed=42,
            latency=ConstantLatency(0.001),  # 1 ms one-way links
            execution_lanes=args.lanes,
            tracing=args.trace is not None or args.obs is not None,
            audit=args.obs is not None,
            health_sample_period=1.0 if args.obs is not None else None,
        ),
    )
    print("initial placement (node -> partition):")
    for node, part in sorted(system.initial_assignment.items()):
        print(f"  {node:>10} -> {part}")

    # 3. A closed-loop client issuing commands.
    loc = system.initial_assignment
    keys = sorted(loc)
    key_a = keys[0]
    key_b = next(k for k in keys if loc[k] != loc[key_a])  # other partition
    commands = [
        Command("c:1", "read", (key_a,)),
        Command("c:2", "write", (key_a, 250)),
        Command("c:3", "sum", (key_a, key_b)),  # multi-partition!
        Command("c:4", "transfer", (key_a, key_b, 50)),  # borrow & return
        Command("c:5", "read", (key_b,)),
    ]
    client = system.add_client(ScriptedWorkload(commands))

    # 4. Run the virtual clock.
    system.run(until=10.0)

    # 5. Inspect the results.
    print("\ncommand results:")
    for uid, (status, result) in sorted(client.results.items()):
        print(f"  {uid}: {status.value:>5}  -> {result!r}")

    counters = system.monitor.counters()
    print(f"\ncompleted={client.completed}  failed={client.failed}")
    print(f"multi-partition commands: {counters.get('multi_partition_commands', 0)}")
    print(f"objects borrowed+returned: {counters.get('objects_exchanged', 0)}")
    print(f"oracle queries: {counters.get('oracle_queries_total', 0)} "
          "(only cache misses — repeats hit the client cache)")

    lat = system.monitor.histogram("latency")
    print(f"latency: mean={lat.mean()*1e3:.2f} ms  p95={lat.percentile(95)*1e3:.2f} ms")

    if args.trace:
        n = system.tracer.export_jsonl(args.trace)
        print(f"\nwrote {n} trace records to {args.trace}")
        print(f"explain them with: python -m repro.obs.explain {args.trace}")

    if args.obs:
        from repro.experiments.harness import export_run_artifacts

        written = export_run_artifacts(system, args.obs)
        print(f"\nwrote run artifacts to {args.obs}: "
              + ", ".join(sorted(written)))
        print(f"report on them with: python -m repro.obs.report {args.obs}")


if __name__ == "__main__":
    main()
