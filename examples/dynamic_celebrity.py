#!/usr/bin/env python3
"""The Fig 6 scenario as a runnable story: a celebrity joins mid-run.

Starts Chirper on DynaStar, lets the system converge, then introduces a
new celebrity user at t=60 s.  Users flock to follow them, the workload
graph changes shape, and DynaStar repartitions on-line to adapt — watch
the multi-partition command rate rise after the event and fall again
after the next repartitioning.

Run:  python examples/dynamic_celebrity.py
"""

from repro.core import DynaStarSystem, SystemConfig
from repro.sim import ConstantLatency
from repro.workloads.social import (
    CelebrityEvent,
    ChirperApp,
    ChirperWorkload,
    generate_social_graph,
)

DURATION = 120.0
EVENT_TIME = 60.0


def window_rate(series, t0, t1):
    window = [v for t, v in series if t0 <= t < t1]
    return sum(window) / max(1, len(window))


def main() -> None:
    graph = generate_social_graph(n_users=600, avg_follows=8, seed=13)
    app = ChirperApp(graph)
    system = DynaStarSystem(
        app,
        SystemConfig(
            n_partitions=4,
            seed=4,
            latency=ConstantLatency(0.0005),
            placement="random",
            repartition_enabled=True,
            repartition_threshold=5000,
        ),
    )
    celebrity = graph.num_users + 7
    event = CelebrityEvent(
        time=EVENT_TIME, celebrity=celebrity, follow_prob=0.4,
        celebrity_post_prob=0.25,
    )
    workload = ChirperWorkload(graph, mix="mix", seed=21, event=event)
    for _ in range(12):
        system.add_client(workload, stop_at=DURATION)
    system.run(until=DURATION)

    completed = system.monitor.series("completed").buckets()
    plans = [t for t, v in system.monitor.series("plans").buckets() if v > 0]
    followers = graph.in_degree(celebrity)

    print(f"celebrity user {celebrity} joined at t={EVENT_TIME:.0f}s and "
          f"gained {followers} followers by t={DURATION:.0f}s")
    print(f"plans applied at t = {[f'{t:.0f}s' for t in plans]}")
    phases = [
        ("cold start (random placement)", 0, min(plans, default=20)),
        ("converged, pre-celebrity", min(plans, default=20) + 5, EVENT_TIME),
        ("celebrity chaos", EVENT_TIME, EVENT_TIME + 30),
        ("re-adapted", EVENT_TIME + 30, DURATION),
    ]
    print(f"\n{'phase':<34} {'throughput':>12}")
    print("-" * 48)
    for name, t0, t1 in phases:
        if t1 > t0:
            print(f"{name:<34} {window_rate(completed, t0, t1):>10.1f}/s")
    print(f"\ntotal: {system.total_completed()} commands, "
          f"{system.monitor.counter('client', event='retry').value} cache-staleness retries, "
          f"{len(plans)} repartitionings")


if __name__ == "__main__":
    main()
