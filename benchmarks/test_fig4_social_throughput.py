"""Figure 4: social-network throughput & latency vs partitions.

Paper shape: with timeline-only commands both systems scale almost
linearly and perform similarly (no moves needed, no synchronization).
With the 85/15 mix, throughput still scales but multi-partition posts
temper it; DynaStar rivals S-SMR* despite starting with no workload
knowledge.
"""

from repro.experiments import figures, reporting

from benchmarks.conftest import emit, run_once


def test_fig4_social_throughput(benchmark):
    result = run_once(
        benchmark,
        figures.fig4_social_throughput,
        partition_counts=(2, 4),
        mixes=("timeline", "mix"),
        n_users=800,
        duration=20.0,
        clients_per_partition=5,
        seed=1,
    )
    emit(reporting.render_fig4(result))
    rows = {(r["mix"], r["partitions"]): r for r in result["rows"]}

    # Timeline-only: both scale with partitions and are comparable.
    for mode in ("dynastar", "ssmr_star"):
        small = rows[("timeline", 2)][f"{mode}_tput"]
        large = rows[("timeline", 4)][f"{mode}_tput"]
        assert large > 1.4 * small, (mode, small, large)
    t_dyna = rows[("timeline", 4)]["dynastar_tput"]
    t_ssmr = rows[("timeline", 4)]["ssmr_star_tput"]
    assert 0.7 < t_dyna / t_ssmr < 1.4, (t_dyna, t_ssmr)

    # Mix workload: still scales, and DynaStar stays in S-SMR*'s league.
    for mode in ("dynastar", "ssmr_star"):
        assert rows[("mix", 4)][f"{mode}_tput"] > rows[("mix", 2)][f"{mode}_tput"]
    m_dyna = rows[("mix", 4)]["dynastar_tput"]
    m_ssmr = rows[("mix", 4)]["ssmr_star_tput"]
    assert m_dyna > 0.6 * m_ssmr, (m_dyna, m_ssmr)

    # Latency is sane and reported for every cell.
    for row in result["rows"]:
        for key in ("dynastar_lat_mean_ms", "ssmr_star_lat_mean_ms"):
            assert row[key] > 0
        assert row["dynastar_lat_p95_ms"] >= row["dynastar_lat_mean_ms"] * 0.5
