"""Figure 5: latency CDFs for the mixed workload.

Paper shape: S-SMR* achieves lower latency than DynaStar for ~80 % of
the load — DynaStar's multi-partition commands pay an extra round trip
to return borrowed objects to their home partitions.
"""

from repro.experiments import figures, reporting

from benchmarks.conftest import emit, run_once


def _value_at(cdf, frac):
    for value, cum in cdf:
        if cum >= frac:
            return value
    return cdf[-1][0]


def test_fig5_latency_cdf(benchmark):
    result = run_once(
        benchmark,
        figures.fig5_latency_cdf,
        partition_counts=(2, 4),
        n_users=800,
        duration=20.0,
        clients_per_partition=3,
        seed=1,
    )
    emit(reporting.render_fig5(result))
    cdfs = result["cdfs"]

    for k in (2, 4):
        dyna = cdfs[("dynastar", k)]
        ssmr = cdfs[("ssmr_star", k)]
        assert dyna and ssmr
        # CDFs are monotone and complete.
        for cdf in (dyna, ssmr):
            fracs = [f for _, f in cdf]
            assert fracs == sorted(fracs)
            assert abs(fracs[-1] - 1.0) < 1e-9
        # The paper's observation: S-SMR* is at least as fast for the
        # bulk of the distribution (p50).
        assert _value_at(ssmr, 0.5) <= _value_at(dyna, 0.5) * 1.5
