"""Ablation benchmarks for DESIGN.md's called-out design choices.

* **DS-SMR comparison** — DynaStar's workload-graph repartitioning vs
  DS-SMR's naive permanent migration on a skewed social workload (§7:
  "largely outperforms DS-SMR when the state cannot be perfectly
  partitioned").
* **Client cache (§4.3)** — the optimized protocol vs the base protocol
  where every command flows through the oracle.
* **Target-partition heuristic** — most-nodes (the paper's rule) vs a
  naive deterministic pick: the heuristic should move fewer objects.
* **Partitioner quality** — the multilevel partitioner vs random/hash
  placement on a power-law social graph.
"""

from repro.experiments.harness import (
    build_chirper_system,
    make_social_graph,
    run_clients,
)
from repro.partitioning import WorkloadGraph, partition_graph
from repro.partitioning.metis import hash_partition, random_partition
from repro.partitioning.quality import cut_fraction
from repro.workloads.social import ChirperWorkload

from benchmarks.conftest import emit, run_once


def _social_run(mode, seed=1, n_partitions=4, duration=28.0, clients=12, **kwargs):
    graph = make_social_graph(800, seed=seed + 10)
    system = build_chirper_system(
        n_partitions,
        graph,
        mode=mode,
        placement="random",
        seed=seed,
        repartition_threshold=8000,
        **kwargs,
    )
    workload = ChirperWorkload(graph, mix="mix", seed=seed + 2)
    result = run_clients(system, workload, clients, duration, warmup=duration / 2)
    return result


class TestAblationDSSMR:
    def test_dynastar_beats_dssmr_on_skewed_mix(self, benchmark):
        def experiment():
            dyna = _social_run("dynastar")
            dssmr = _social_run("dssmr")
            return dyna, dssmr

        dyna, dssmr = benchmark.pedantic(experiment, rounds=1, iterations=1)
        emit(
            "Ablation: DynaStar vs DS-SMR (Chirper mix, 4 partitions)\n"
            f"  DynaStar: {dyna.throughput:9.1f} cmds/s "
            f"(objects moved: {dyna.counters.get('objects_exchanged', 0)})\n"
            f"  DS-SMR:   {dssmr.throughput:9.1f} cmds/s "
            f"(migrations: {dssmr.counters.get('dssmr_migrations', 0)})"
        )
        assert dyna.throughput > dssmr.throughput, (
            dyna.throughput,
            dssmr.throughput,
        )
        # DS-SMR keeps migrating forever; DynaStar settles after plans.
        assert dssmr.counters.get("dssmr_migrations", 0) > 10


class TestAblationClientCache:
    def test_cache_slashes_oracle_traffic(self, benchmark):
        def experiment_fixed():
            graph = make_social_graph(800, seed=11)
            cached_sys = build_chirper_system(
                4, graph, mode="dynastar", placement="random",
                seed=1, repartition_threshold=8000,
            )
            wl = ChirperWorkload(graph, mix="mix", seed=3)
            cached = run_clients(cached_sys, wl, 12, 24.0, warmup=12.0)

            graph2 = make_social_graph(800, seed=11)
            uncached_sys = build_chirper_system(
                4, graph2, mode="dynastar", placement="random",
                seed=1, repartition_threshold=8000,
            )
            uncached_sys.config.oracle_dispatch = True
            wl2 = ChirperWorkload(graph2, mix="mix", seed=3)
            uncached = run_clients(uncached_sys, wl2, 12, 24.0, warmup=12.0)
            return cached, uncached

        cached, uncached = benchmark.pedantic(
            experiment_fixed, rounds=1, iterations=1
        )
        cached_q = cached.counters.get("oracle_queries_total", 0)
        uncached_q = uncached.counters.get("oracle_queries_total", 0)
        emit(
            "Ablation: client location cache (§4.3)\n"
            f"  cache ON : {cached.throughput:9.1f} cmds/s, "
            f"{cached_q} oracle queries / {cached.completed} commands\n"
            f"  cache OFF: {uncached.throughput:9.1f} cmds/s, "
            f"{uncached_q} oracle queries / {uncached.completed} commands"
        )
        # Base protocol: one oracle query per command.  Cached: a tiny
        # fraction (first contact + post-plan invalidations only).
        assert uncached_q >= uncached.completed * 0.95
        assert cached_q < cached.completed * 0.5
        assert cached.throughput > uncached.throughput


class TestAblationTargetPolicy:
    def test_most_nodes_target_moves_fewer_objects(self, benchmark):
        def experiment():
            results = {}
            for policy in ("most_nodes", "first"):
                graph = make_social_graph(800, seed=11)
                system = build_chirper_system(
                    4, graph, mode="dynastar", placement="random",
                    seed=1, repartition_threshold=10**9,  # isolate the policy
                )
                system.config.target_policy = policy
                for replica in system.oracle_replicas():
                    replica.target_policy = policy
                wl = ChirperWorkload(graph, mix="mix", seed=3)
                results[policy] = run_clients(system, wl, 12, 24.0)
            return results

        results = benchmark.pedantic(experiment, rounds=1, iterations=1)
        moved = {
            p: r.counters.get("objects_exchanged", 0)
            for p, r in results.items()
        }
        emit(
            "Ablation: target-partition heuristic\n"
            f"  most_nodes: {moved['most_nodes']} objects moved, "
            f"{results['most_nodes'].throughput:8.1f} cmds/s\n"
            f"  first:      {moved['first']} objects moved, "
            f"{results['first'].throughput:8.1f} cmds/s"
        )
        assert moved["most_nodes"] < moved["first"], moved


class TestAblationPartitionerQuality:
    def test_multilevel_beats_random_and_hash(self, benchmark):
        def experiment():
            # A community-structured social graph (users follow mostly
            # within their community): the realistic regime where graph
            # partitioning pays off.  A pure preferential-attachment graph
            # is expander-like and nearly unpartitionable for everyone.
            import random as _random

            rng = _random.Random(5)
            graph = WorkloadGraph()
            n_communities, size = 24, 125
            for c in range(n_communities):
                for i in range(size):
                    graph.ensure_vertex(("user", c * size + i))
            for c in range(n_communities):
                base = c * size
                for i in range(size):
                    for _ in range(8):
                        if rng.random() < 0.9:  # intra-community follow
                            other = base + rng.randrange(size)
                        else:  # cross-community follow
                            other = rng.randrange(n_communities * size)
                        if other != base + i:
                            graph.add_edge(
                                ("user", base + i), ("user", other)
                            )
            return {
                "multilevel": cut_fraction(
                    graph, partition_graph(graph, 8, seed=1).assignment
                ),
                "random": cut_fraction(
                    graph, random_partition(graph, 8, seed=1).assignment
                ),
                "hash": cut_fraction(
                    graph, hash_partition(graph, 8).assignment
                ),
            }

        cuts = benchmark.pedantic(experiment, rounds=1, iterations=1)
        emit(
            "Ablation: partitioner quality (8-way cut fraction, social graph)\n"
            + "\n".join(f"  {name:<11} {cut:6.3f}" for name, cut in cuts.items())
        )
        assert cuts["multilevel"] < 0.6 * cuts["random"], cuts
        assert cuts["multilevel"] < 0.6 * cuts["hash"], cuts
        # random 8-way cuts ~7/8 of edges
        assert 0.8 < cuts["random"] < 0.95
