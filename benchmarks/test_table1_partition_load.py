"""Table 1: per-partition load at peak throughput.

Paper shape: even though objects are spread evenly, the Zipfian access
pattern skews the load — the busiest partition serves roughly twice the
commands of the least busy one, with matching skew in multi-partition
commands and exchanged objects.
"""

from repro.experiments import figures, reporting

from benchmarks.conftest import emit, run_once


def test_table1_partition_load(benchmark):
    result = run_once(
        benchmark,
        figures.table1_partition_load,
        n_partitions=4,
        n_users=800,
        duration=30.0,
        clients_per_partition=5,
        seed=1,
    )
    emit(reporting.render_table1(result))
    rows = result["rows"]
    assert len(rows) == 4

    tputs = [row["tput"] for row in rows]
    assert all(t > 0 for t in tputs)
    # Load skew: busiest partition clearly ahead of the least busy
    # (paper: ~2:1 despite the partitioner balancing).
    assert max(tputs) > 1.3 * min(tputs), tputs

    # Every partition holds a real share of the data (the partitioner
    # balances on access weight, so node counts skew with hot users —
    # but no partition is starved of objects).
    nodes = [row["owned_nodes"] for row in rows]
    total_nodes = sum(nodes)
    assert min(nodes) > total_nodes / 20, nodes
