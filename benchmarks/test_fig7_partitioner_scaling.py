"""Figure 7: partitioner CPU time and memory vs graph size.

Paper shape: METIS scales (near-)linearly in both compute time and
memory up to 10 M vertices.  We verify the same linear shape for the
multilevel implementation — superlinear blowup would disqualify the
oracle design.
"""

from repro.experiments import figures, reporting

from benchmarks.conftest import emit, run_once


def test_fig7_partitioner_scaling(benchmark):
    result = run_once(
        benchmark,
        figures.fig7_partitioner_scaling,
        sizes=(10_000, 30_000, 90_000),
        k=8,
        seed=1,
    )
    emit(reporting.render_fig7(result))
    rows = result["rows"]

    # Time and memory both grow with size...
    seconds = [row["seconds"] for row in rows]
    memory = [row["peak_mb"] for row in rows]
    assert seconds == sorted(seconds)
    assert memory == sorted(memory)

    # ...and sublinearly relative to a quadratic: 9x vertices should cost
    # well under 9^2 = 81x time (linear would be ~9x; allow noise to 30x).
    size_ratio = rows[-1]["vertices"] / rows[0]["vertices"]
    time_ratio = seconds[-1] / max(seconds[0], 1e-9)
    mem_ratio = memory[-1] / max(memory[0], 1e-9)
    assert time_ratio < size_ratio * 3.5, (size_ratio, time_ratio)
    assert mem_ratio < size_ratio * 3.5, (size_ratio, mem_ratio)
