"""Observability-off overhead guarantees.

The tentpole claim is that the audit/health hooks cost (essentially)
nothing when observability is disabled.  Per repo convention wall-clock
thresholds are NOT asserted in tests — the <2% events/s budget is
enforced by `python -m repro.experiments.perf` against the committed
``benchmarks/perf/baseline.json`` (recorded before the hooks existed),
and the new ``micro.obs_disabled`` entry tracks the disabled-path cost
in the emitted ``BENCH_*.json`` trajectory.

What tests CAN assert deterministically:

* the disabled path is structurally free — a shared no-op audit
  instance, no sampler scheduled, nothing recorded;
* the perf macro scenarios the baseline comparison runs really do run
  with observability off (else the <2% comparison measures nothing);
* enabling the audit log does not perturb the simulation — the traced
  fingerprint is byte-identical with audit on or off.
"""

import io

from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import ScriptedWorkload
from repro.experiments import perf
from repro.obs.audit import NULL_AUDIT
from repro.sim import ConstantLatency
from repro.smr import Command, KeyValueApp


def small_system(audit: bool, tracing: bool = True):
    app = KeyValueApp({f"k{i}": 100 for i in range(8)})
    config = SystemConfig(
        n_partitions=2,
        seed=42,
        latency=ConstantLatency(0.001),
        repartition_enabled=True,
        repartition_threshold=50,
        tracing=tracing,
        audit=audit,
    )
    system = DynaStarSystem(app, config)
    keys = sorted(system.initial_assignment)
    loc = system.initial_assignment
    key_a = keys[0]
    key_b = next(k for k in keys if loc[k] != loc[key_a])
    commands = [
        Command(f"c:{i}", "transfer", (key_a, key_b, 1)) for i in range(40)
    ]
    system.add_client(ScriptedWorkload(commands))
    return system


class TestDisabledPathIsStructurallyFree:
    def test_default_config_has_no_observers(self):
        system = small_system(audit=False, tracing=False)
        assert system.audit is NULL_AUDIT
        assert system.health is None
        system.run(until=10.0)
        assert len(system.audit) == 0

    def test_null_audit_record_is_noop(self):
        before = len(NULL_AUDIT)
        NULL_AUDIT.record("plan-applied", 1.0, version=3)
        NULL_AUDIT.decision(
            t=1.0, version=1, trigger="threshold", published=True,
            inputs={}, outputs={},
        )
        assert len(NULL_AUDIT) == before == 0

    def test_perf_macro_scenarios_run_with_observability_off(self):
        """The committed baseline's events/s comparison only proves the
        <2% budget if the measured scenarios take the disabled path."""
        for system, _ in (
            perf._social_system(True, gate=True),
            perf._chaos_system(True)[:2],
        ):
            assert system.audit is NULL_AUDIT
            assert system.health is None


class TestMicroPlumbing:
    def test_obs_disabled_micro_shape(self):
        result = perf.micro_obs_disabled(quick=True)
        assert set(result) == {"ops", "wall_clock_s", "ops_per_sec"}
        assert result["ops"] == 200_000
        assert result["ops_per_sec"] > 0

    def test_micro_registered_in_harness(self):
        assert callable(perf.micro_obs_disabled)


class TestAuditHooksArePureObservers:
    def test_fingerprint_identical_with_audit_on_and_off(self):
        """Audit recording must never schedule events or touch the
        monitor: trace JSONL and metric dumps are byte-identical
        whether the audit log is enabled or not."""
        fingerprints = []
        for audit in (False, True):
            system = small_system(audit=audit)
            system.run(until=10.0)
            buf = io.StringIO()
            system.tracer.export_jsonl(buf)
            fingerprints.append(
                (buf.getvalue(), perf.json.dumps(
                    system.monitor.snapshot(), sort_keys=True))
            )
        assert fingerprints[0] == fingerprints[1]
        assert fingerprints[0][0]

    def test_audited_run_actually_records(self):
        """Sanity for the comparison above: the audit=True arm did
        exercise the recording path, not an accidentally-dead one."""
        system = small_system(audit=True)
        system.run(until=10.0)
        assert len(system.audit) > 0
