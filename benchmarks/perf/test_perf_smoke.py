"""Smoke tests for the wall-clock perf harness (`repro.experiments.perf`).

Tiny-scale versions of what `python -m repro.experiments.perf --quick`
runs in CI: the determinism gate must hold and the report plumbing must
round-trip.  Timing numbers are *not* asserted here — wall-clock
thresholds in tests are flaky by construction; the trajectory lives in
the emitted ``BENCH_*.json`` files.
"""

import json

from repro.experiments import perf


class TestDeterminismGate:
    def test_traced_social_fingerprint_is_repeatable(self):
        """The seeded, traced social scenario exports byte-identical
        trace JSONL and metric dumps across two in-process runs."""
        trace_a, metrics_a = perf._traced_social_fingerprint(quick=True)
        trace_b, metrics_b = perf._traced_social_fingerprint(quick=True)
        assert trace_a == trace_b
        assert metrics_a == metrics_b
        assert trace_a  # non-trivial: the run actually produced spans
        assert '"kind": "span"' in trace_a

    def test_gate_reports_baseline_match(self):
        results, ok = perf.run_determinism_gate(
            True,
            baseline={
                "determinism": {
                    "social_macro": {
                        "trace_sha256": "not-the-real-hash",
                        "metrics_sha256": "nope",
                    }
                }
            },
        )
        assert ok  # repeats are identical even when the baseline differs
        assert results["social_macro"]["matches_baseline"] is False
        assert "matches_baseline" not in results["chaos"]  # no baseline entry


class TestReportPlumbing:
    def test_compare_to_baseline(self):
        scenarios = {"social_macro": {"events_per_sec": 125.0}}
        baseline = {"scenarios": {"social_macro": {"events_per_sec": 100.0}}}
        comparison = perf.compare_to_baseline(scenarios, baseline)
        assert comparison["social_macro"]["improvement"] == 0.25

    def test_compare_skips_missing_scenarios(self):
        assert perf.compare_to_baseline({}, {"scenarios": {}}) == {}

    def test_baseline_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        section = {"schema": perf.SCHEMA_VERSION, "scenarios": {}}
        perf.save_baseline(path, quick=True, section=section)
        perf.save_baseline(path, quick=False, section=section)
        assert perf.load_baseline(path, quick=True) == section
        assert perf.load_baseline(path, quick=False) == section
        raw = json.loads(path.read_text())
        assert set(raw) == {"quick", "full"}

    def test_load_baseline_rejects_schema_mismatch(self, tmp_path):
        path = tmp_path / "baseline.json"
        perf.save_baseline(path, quick=True, section={"schema": -1})
        assert perf.load_baseline(path, quick=True) == {}

    def test_load_baseline_missing_file(self, tmp_path):
        assert perf.load_baseline(tmp_path / "nope.json", quick=True) == {}

    def test_committed_baseline_is_loadable(self):
        """The repo ships a recorded baseline; the harness must be able
        to read it (schema drift here silently disables the gate)."""
        path = perf.default_baseline_path()
        assert path.is_file(), "benchmarks/perf/baseline.json missing"
        for quick in (True, False):
            section = perf.load_baseline(path, quick)
            assert section, f"baseline section unreadable (quick={quick})"
            assert "determinism" in section
            assert "social_macro" in section["scenarios"]
