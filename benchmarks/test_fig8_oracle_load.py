"""Figure 8: oracle query throughput over time.

Paper shape: once the clients' caches are warm the oracle sees ~zero
queries.  A repartitioning invalidates cached locations, producing a
query spike that decays rapidly back to ~zero — evidence the oracle is
not a steady-state bottleneck.
"""

from repro.experiments import figures, reporting
from repro.experiments.harness import steady_rate

from benchmarks.conftest import emit, run_once


def test_fig8_oracle_load(benchmark):
    result = run_once(
        benchmark,
        figures.fig8_oracle_load,
        n_partitions=4,
        n_users=800,
        duration=120.0,
        repartition_time=60.0,
        clients=12,
        seed=1,
    )
    emit(reporting.render_fig8(result))
    queries = result["oracle_queries"]
    t_plan = result["repartition_time"]
    duration = result["duration"]

    # Warm phase just before the plan: oracle nearly idle.
    warm = steady_rate(queries, t_plan - 20.0, t_plan)
    # Spike window right after the plan.
    spike = max(
        (v for t, v in queries if t_plan <= t < t_plan + 15.0), default=0.0
    )
    # Decayed tail.
    tail = steady_rate(queries, duration - 20.0, duration)

    assert spike > 4 * max(warm, 1.0), (warm, spike)
    assert tail < spike / 4, (spike, tail)
    assert result["plan_times"], "manual repartition never applied"
