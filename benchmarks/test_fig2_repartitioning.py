"""Figure 2: the impact of graph repartitioning (TPC-C, 4 partitions).

Paper shape: with random initial placement, throughput is low and nearly
every transaction is multi-partition; once the oracle computes a plan,
objects relocate, the multi-partition rate collapses, and throughput
rises several-fold.
"""

from repro.experiments import figures, reporting
from repro.experiments.harness import steady_rate

from benchmarks.conftest import emit, run_once


def test_fig2_repartitioning(benchmark):
    result = run_once(
        benchmark, figures.fig2_repartitioning, duration=60.0, seed=1
    )
    emit(reporting.render_fig2(result))

    assert result["plan_times"], "the oracle never repartitioned"
    first_plan = result["plan_times"][0]
    duration = result["duration"]
    assert first_plan < duration / 2, "plan landed too late to observe recovery"

    # Throughput after convergence beats the random-placement phase.
    before = steady_rate(result["throughput"], 0.0, first_plan)
    after = steady_rate(result["throughput"], first_plan + 5.0, duration)
    assert after > 1.3 * before, (before, after)

    # Multi-partition fraction collapses (paper: ~100% -> ~few %);
    # measured over the converged tail (last quarter of the run).
    frac_before = steady_rate(
        result["multi_partition_fraction"], 0.0, first_plan
    )
    frac_after = steady_rate(
        result["multi_partition_fraction"], duration * 0.75, duration
    )
    assert frac_before > 0.4, frac_before
    assert frac_after < frac_before / 2.5, (frac_before, frac_after)

    # Object exchange traffic dies down after relocation.
    objects_before = steady_rate(result["objects_exchanged"], 0.0, first_plan)
    objects_after = steady_rate(
        result["objects_exchanged"], first_plan + 5.0, duration
    )
    assert objects_after < objects_before / 2
