"""Figure 6: dynamic workload — a celebrity joins mid-run.

Paper shape: DynaStar starts worse than S-SMR* (random vs optimized
placement), overtakes once it repartitions; the celebrity event degrades
both, and DynaStar recovers via another repartitioning while the static
S-SMR* cannot adapt.
"""

from repro.experiments import figures, reporting
from repro.experiments.harness import steady_rate

from benchmarks.conftest import emit, run_once


def test_fig6_dynamic_workload(benchmark):
    result = run_once(
        benchmark,
        figures.fig6_dynamic_workload,
        n_partitions=4,
        n_users=800,
        duration=90.0,
        event_time=45.0,
        clients=12,
        repartition_threshold=25000,
        seed=1,
    )
    emit(reporting.render_fig6(result))
    event = result["event_time"]
    duration = result["duration"]
    dyna = result["dynastar"]

    # DynaStar repartitioned at least once before the event.
    assert dyna["plan_times"], "DynaStar never repartitioned"
    first_plan = dyna["plan_times"][0]
    assert first_plan < event

    # The cold random placement pays a clearly higher multi-partition
    # rate than the converged phase (throughput is a weak signal here:
    # Chirper timeline reads are single-partition under ANY placement).
    cold_multi = steady_rate(dyna["multi_fraction"], 0.0, first_plan)
    converged_multi = steady_rate(
        dyna["multi_fraction"], first_plan + 5.0, event
    )
    assert converged_multi < cold_multi, (cold_multi, converged_multi)
    converged = steady_rate(dyna["throughput"], first_plan + 5.0, event)

    # After the event + adaptation, DynaStar ends healthy: its final
    # throughput stays within range of its pre-event converged level.
    tail = steady_rate(dyna["throughput"], duration - 20.0, duration)
    assert tail > 0.5 * converged, (converged, tail)

    # S-SMR* cannot adapt: its multi-partition rate after the event stays
    # elevated relative to DynaStar's adapted tail.
    ssmr = result["ssmr_star"]
    dyna_tail_multi = steady_rate(dyna["multi_fraction"], duration - 20.0, duration)
    ssmr_tail_multi = steady_rate(ssmr["multi_fraction"], duration - 20.0, duration)
    assert ssmr["plan_times"] == []  # static system never repartitions
    assert dyna_tail_multi <= ssmr_tail_multi * 1.5, (
        dyna_tail_multi,
        ssmr_tail_multi,
    )
