"""Shared helpers for the figure-regenerating benchmarks.

Each benchmark runs its experiment exactly once under pytest-benchmark
(``pedantic`` with one round — these are minutes-long simulations, not
microbenchmarks), prints the paper-style rendering, and asserts the
qualitative *shape* the paper reports.  Absolute numbers are not asserted:
the substrate is a simulator, not the authors' EC2 testbed.
"""

from __future__ import annotations


def run_once(benchmark, fn, **kwargs):
    """Run ``fn(**kwargs)`` once under the benchmark fixture and return
    its result."""
    return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)


def emit(rendered: str) -> None:
    print("\n" + rendered + "\n")
