"""Figure 3: TPC-C scalability — peak throughput vs partitions.

Paper shape: both DynaStar and S-SMR* scale with the number of
partitions (one warehouse per partition, state grows with partitions);
DynaStar — starting from a random placement with no workload knowledge —
rivals the idealized S-SMR* after repartitioning.
"""

from repro.experiments import figures, reporting

from benchmarks.conftest import emit, run_once


def test_fig3_tpcc_scalability(benchmark):
    result = run_once(
        benchmark,
        figures.fig3_tpcc_scalability,
        partition_counts=(1, 2, 4),
        duration=30.0,
        seed=1,
    )
    emit(reporting.render_fig3(result))
    rows = result["rows"]

    # Scalability: throughput grows with partitions for both systems.
    for key in ("dynastar_tput", "ssmr_star_tput"):
        values = [row[key] for row in rows]
        assert values == sorted(values), f"{key} not monotone: {values}"
        # 4 partitions at least double 1 partition (paper: near-linear)
        assert values[-1] > 2.0 * values[0], values

    # DynaStar rivals S-SMR* (within 40% at every scale after convergence).
    for row in rows:
        ratio = row["dynastar_tput"] / row["ssmr_star_tput"]
        assert ratio > 0.6, row
