"""DynaStar: optimized dynamic partitioning for scalable state machine
replication — a full reproduction of Le et al. (ICDCS 2019).

Public API tour:

* :mod:`repro.core` — the DynaStar system (oracle, servers, clients).
* :mod:`repro.baselines` — S-SMR / S-SMR* / DS-SMR comparators.
* :mod:`repro.partitioning` — the multilevel graph partitioner.
* :mod:`repro.multicast` — genuine atomic multicast (BaseCast).
* :mod:`repro.consensus` — Multi-Paxos replica groups.
* :mod:`repro.workloads` — Chirper social network and TPC-C.
* :mod:`repro.experiments` — the harness regenerating every paper figure.
* :mod:`repro.sim` — the deterministic discrete-event kernel underneath.
"""

from repro.core import DynaStarSystem, SystemConfig
from repro.smr import Command, KeyValueApp

__version__ = "1.0.0"

__all__ = ["DynaStarSystem", "SystemConfig", "Command", "KeyValueApp", "__version__"]
