"""S-SMR: scalable state machine replication with static partitioning.

Differences from DynaStar (§5.5):

* multi-partition commands are executed by **all** involved partitions,
  after each involved partition sends the variables it holds to the
  others (copies — variables never change home);
* the state partitioning is static: no workload graph, no hints, no
  repartitioning, no object moves.

S-SMR\\* is S-SMR configured with a placement computed offline by the
graph partitioner from full workload knowledge
(:func:`optimized_placement`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.messages import GlobalCommand, VarTransfer
from repro.core.server import PartitionServer
from repro.core.system import DynaStarSystem, SystemConfig
from repro.partitioning import WorkloadGraph, partition_graph
from repro.partitioning.graph import Partitioning
from repro.smr.command import ReplyStatus
from repro.smr.statemachine import VariableStore


class SSMRServer(PartitionServer):
    """Partition server implementing the S-SMR execution model."""

    def _try_global(self, payload: GlobalCommand) -> bool:
        command = payload.command
        key = (command.uid, payload.attempt)
        claimed = set(payload.nodes_at(self.partition))
        state = self._cmd_state(payload)

        if not state.get("checked"):
            if any(node not in self.owned_nodes for node in claimed):
                self._abort_global(payload, notify=True)
                return True
            state["checked"] = True
        if any(node in self.in_transit for node in claimed):
            return False

        # The borrow span tracks the copy exchange; the target partition
        # owns it (one span per attempt, shared tracer) and the sources
        # annotate it with their ship events.
        if payload.target == self.partition and self.tracer.enabled:
            self.tracer.begin(
                command.uid, "borrow", self.now, disc=payload.attempt,
                target=self.partition, attempt=payload.attempt, copies=True,
            )
        if not state.get("sent"):
            # Exchange: copies of our variables go to every other involved
            # partition; ownership never changes.
            pairs = tuple(
                (var, self.store.get(var))
                for var in self._borrowable_vars(command, claimed)
            )
            if self.tracer.enabled:
                self.tracer.event_on(
                    command.uid, "borrow", payload.attempt,
                    "var-transfer-sent", self.now,
                    source=self.partition, variables=len(pairs),
                )
            for partition in payload.involved():
                if partition != self.partition:
                    self._send_to_partition(
                        partition,
                        VarTransfer(
                            command.uid, self.partition, pairs, payload.attempt
                        ),
                    )
            state["sent"] = True
            if self._records_metrics:
                self._pseries("objects").record(
                    self.now, len(pairs) * (len(payload.involved()) - 1)
                )
                self.monitor.counter("objects_exchanged").inc(
                    len(pairs) * (len(payload.involved()) - 1)
                )

        if self.transfer_failures.get(key):
            self._reply(payload, ReplyStatus.RETRY)
            self._cleanup_cmd(key)
            return True
        needed = {p for p in payload.involved() if p != self.partition}
        received = self.recv_transfers.get(key, {})
        if not needed <= set(received):
            return False
        if payload.target == self.partition and self.tracer.enabled:
            self.tracer.finish(
                command.uid, "borrow", self.now, disc=payload.attempt
            )
        if not self._gate_service():
            return False
        self._consume_service()

        # Execute on an overlay store: own variables plus received copies.
        if payload.target == self.partition:
            self._trace_execute_start(payload)
        overlay = VariableStore()
        for var in self._borrowable_vars(command, claimed):
            overlay.insert_copy(var, self.store.get(var))
        for pairs in received.values():
            for var, value in pairs:
                overlay.insert_copy(var, value)
        overlay.begin_tracking()
        try:
            result = self.app.execute(command, overlay)
            status = ReplyStatus.OK
        except (KeyError, ValueError) as exc:
            result = repr(exc)
            status = ReplyStatus.NOK
        written, removed = overlay.end_tracking()
        if payload.target == self.partition:
            self._trace_execute_end(payload, status)

        # Persist only the writes that belong to this partition.
        for var in written:
            if self.app.graph_node_of(var) in claimed and var in overlay:
                self.store.insert_copy(var, overlay.get(var))
                self._index_var(var)
        for var in removed:
            if self.app.graph_node_of(var) in claimed:
                self.store.discard(var)
                self._unindex_var(var)

        # Every involved partition replies; the client deduplicates.
        self._reply(payload, status, result)
        self.executed_count += 1
        self.multi_partition_count += 1
        self._cleanup_cmd(key)
        if self._records_metrics:
            self._pseries("tput").record(self.now)
            self._pseries("multipart").record(self.now)
            self.monitor.counter("multi_partition_commands").inc()
        return True


class SSMRSystem(DynaStarSystem):
    """A deployment running the S-SMR protocol.

    Pass ``placement=optimized_placement(graph, k)`` for S-SMR\\*.
    """

    def __init__(self, app, config: Optional[SystemConfig] = None, monitor=None):
        config = config or SystemConfig()
        config.mode = "ssmr"
        config.repartition_enabled = False
        super().__init__(app, config, monitor)

    def _make_server(self, **kwargs) -> SSMRServer:
        cfg = self.config
        return SSMRServer(
            app=self.app,
            monitor=self.monitor,
            mode="ssmr",
            oracle_group=self.oracle_group,
            hint_period=cfg.hint_period,
            service_time=cfg.service_time,
            lanes=cfg.execution_lanes,
            **kwargs,
        )


def optimized_placement(
    graph: WorkloadGraph, k: int, imbalance: float = 0.20, seed: int = 0
) -> Partitioning:
    """Offline METIS-style placement from a-priori workload knowledge —
    what the paper's operators hand to S-SMR\\*."""
    return partition_graph(graph, k, imbalance=imbalance, seed=seed)
