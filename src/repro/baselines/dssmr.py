"""DS-SMR: dynamic SMR with naive permanent migration.

The DS-SMR execution model is implemented inside the core server and
oracle (``mode="dssmr"``); this module provides the convenience system
class.  On every multi-partition command the involved nodes migrate
permanently to the target partition — with skewed, non-perfectly-
partitionable workloads the same nodes ping-pong between partitions,
which is the pathology DynaStar's workload-graph partitioning avoids.

Traced runs (``SystemConfig(tracing=True)``) reuse the DynaStar span
vocabulary: the permanent migration shows up as a ``borrow`` span
tagged ``permanent=True`` and — since the variables never travel home —
no ``return`` span.
"""

from __future__ import annotations

from typing import Optional

from repro.core.system import DynaStarSystem, SystemConfig


class DSSMRSystem(DynaStarSystem):
    """A deployment running the DS-SMR protocol."""

    def __init__(self, app, config: Optional[SystemConfig] = None, monitor=None):
        config = config or SystemConfig()
        config.mode = "dssmr"
        config.repartition_enabled = False
        super().__init__(app, config, monitor)
