"""Baseline systems the paper compares DynaStar against.

* **S-SMR** (Bezerra et al., DSN 2014): static state partitioning;
  multi-partition commands are executed by *every* involved partition
  after the partitions exchange the needed state.  No oracle traffic at
  steady state, no object moves — but also no ability to adapt.
* **S-SMR\\*** — S-SMR whose static placement was optimized offline with
  the graph partitioner using full workload knowledge (the paper's
  idealized, impractical-in-reality comparator).
* **DS-SMR** (Le et al., DSN 2016): dynamic migration without a workload
  graph — every multi-partition command permanently migrates the
  involved variables to the target partition, which thrashes when the
  workload cannot be perfectly partitioned.  Implemented as
  ``mode="dssmr"`` of the core system.
"""

from repro.baselines.ssmr import SSMRServer, SSMRSystem, optimized_placement
from repro.baselines.dssmr import DSSMRSystem

__all__ = ["SSMRServer", "SSMRSystem", "optimized_placement", "DSSMRSystem"]
