"""Genuine atomic multicast (BaseCast-style).

The paper's prototype uses BaseCast (Coelho et al., "Fast Atomic
Multicast", DSN 2017): each destination group is a Multi-Paxos-replicated
state machine running Skeen's timestamp algorithm.  A message addressed
to a single group costs one consensus round in that group; a message
addressed to ``k`` groups costs one consensus round per group to assign a
local timestamp, one cross-group timestamp exchange, and one more
consensus round per group to agree on the remote timestamps — exactly the
single- vs multi-partition cost asymmetry the DynaStar evaluation
measures.

The protocol is *genuine*: only the sender and the destination groups of
a message exchange messages to order it.

Guarantees (see §2.2 of the paper, tested in ``tests/multicast``):
validity, uniform agreement, integrity, FIFO order from each sender,
acyclic delivery order, and prefix order across groups.
"""

from repro.multicast.messages import MulticastMessage, OrderEvent, TsEvent, RemoteTs
from repro.multicast.basecast import MulticastReplica, MulticastGroup, GroupDirectory

__all__ = [
    "MulticastMessage",
    "OrderEvent",
    "TsEvent",
    "RemoteTs",
    "MulticastReplica",
    "MulticastGroup",
    "GroupDirectory",
]
