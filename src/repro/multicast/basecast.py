"""BaseCast: genuine atomic multicast over Multi-Paxos groups.

Every group runs a deterministic Skeen state machine *inside* its Paxos
log: both local ordering events and remote-timestamp events are consensus
log entries, so all replicas of a group advance the same logical clock at
the same log position and compute identical final timestamps.

Message lifecycle for ``m`` with destinations {g, h}:

1. The sender submits ``OrderEvent(m)`` to both groups (to every replica;
   uid-dedup makes this idempotent and leader-crash tolerant).
2. When group ``g`` delivers ``OrderEvent(m)`` from its log it assigns
   local timestamp ``ts_g = ++clock``; its leader sends ``RemoteTs`` to
   the replicas of every other destination group.
3. A replica receiving ``RemoteTs`` resubmits it to its own group's log
   as a ``TsEvent``; on delivery the group records the remote timestamp
   and bumps ``clock = max(clock, ts)``.
4. Once a group knows the timestamps of all destination groups, the final
   timestamp is their max.  Messages are a-delivered in ``(final_ts,
   uid)`` order once no pending message could precede them.

Single-group messages skip steps 2-3: their local timestamp is final,
which is why single-partition DynaStar commands are fundamentally cheaper
than multi-partition ones.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.consensus.group import GroupConfig, PaxosGroup
from repro.consensus.messages import Submit
from repro.consensus.paxos import PaxosReplica, ReplicaConfig
from repro.multicast.messages import MulticastMessage, OrderEvent, RemoteTs, TsEvent
from repro.sim.network import Network


@dataclass
class _Pending:
    """Per-message Skeen bookkeeping inside one group."""

    message: MulticastMessage
    local_ts: int
    ts_from: dict = field(default_factory=dict)

    @property
    def final_ts(self) -> Optional[int]:
        if len(self.ts_from) == len(self.message.dests):
            return max(self.ts_from.values())
        return None

    @property
    def effective_ts(self) -> int:
        """Lower bound on the final timestamp (== final once complete)."""
        final = self.final_ts
        return final if final is not None else max(self.ts_from.values(), default=self.local_ts)


class MulticastReplica(PaxosReplica):
    """A Paxos replica that additionally runs the group's Skeen machine.

    Applications receive a-delivered messages through :meth:`adeliver`
    (override in subclasses) or the ``on_adeliver`` callback.
    """

    def __init__(self, *args, on_adeliver: Optional[Callable[[MulticastMessage], None]] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.on_adeliver = on_adeliver
        self.clock = 0
        self.pending_msgs: dict[str, _Pending] = {}
        self.adelivered_uids: set[str] = set()
        self._adelivered_ts: dict[str, int] = {}
        #: Retained-timestamp keys already present at the last checkpoint
        #: (pruned at the next one — two-generation retention).
        self._adelivered_ts_prev: set[str] = set()
        self.adelivered_count = 0
        self._fifo_next: dict[str, int] = {}
        self._fifo_blocked: dict[str, dict[int, MulticastMessage]] = {}
        self._early_ts_store: dict[str, dict[str, int]] = {}
        self._directory: Optional["GroupDirectory"] = None
        self._retransmit_timer_armed = False

    # -- wiring ---------------------------------------------------------------

    def attach_directory(self, directory: "GroupDirectory") -> None:
        """Give this replica the group-name -> replica-names map it needs
        to exchange timestamps with other groups."""
        self._directory = directory

    def start(self) -> None:
        super().start()
        if not self._retransmit_timer_armed:
            self._retransmit_timer_armed = True
            self.set_periodic_timer(0.25, self._retransmit_stalled)

    def on_recover(self) -> None:
        self._retransmit_timer_armed = False
        super().on_recover()

    # -- checkpointing --------------------------------------------------------

    def on_checkpoint(self, watermark: int) -> None:
        """Checkpoint-aware timestamp retention: `_adelivered_ts` entries
        exist only to re-answer duplicate-OrderEvent probes from peer
        groups whose copy of our RemoteTs was lost.  Such probes arrive
        within retransmission timescales, so entries that have survived a
        full checkpoint interval are dropped — memory stays bounded by
        the interval instead of growing with every multi-group message.
        Pruning happens at a log watermark, so replicas prune in step."""
        super().on_checkpoint(watermark)
        for uid in self._adelivered_ts_prev:
            self._adelivered_ts.pop(uid, None)
        self._adelivered_ts_prev = set(self._adelivered_ts)

    def capture_app_state(self) -> dict:
        state = super().capture_app_state()
        state["mcast.state"] = {
            "clock": self.clock,
            # Messages are immutable dataclasses shared within the sim,
            # so references are safe to ship; per-message Skeen
            # bookkeeping is re-materialized on install.
            "pending": [
                (uid, entry.message, entry.local_ts, sorted(entry.ts_from.items()))
                for uid, entry in sorted(self.pending_msgs.items())
            ],
            "adelivered_uids": sorted(self.adelivered_uids),
            "adelivered_ts": sorted(self._adelivered_ts.items()),
            "adelivered_ts_prev": sorted(self._adelivered_ts_prev),
            "adelivered_count": self.adelivered_count,
            "fifo_next": sorted(self._fifo_next.items()),
            "fifo_blocked": [
                (key, sorted(blocked.items()))
                for key, blocked in sorted(self._fifo_blocked.items())
            ],
            "early_ts": [
                (uid, sorted(per_group.items()))
                for uid, per_group in sorted(self._early_ts_store.items())
            ],
        }
        return state

    def install_app_state(self, sections: dict) -> None:
        super().install_app_state(sections)
        state = sections.get("mcast.state", {})
        self.clock = state.get("clock", 0)
        self.pending_msgs = {
            uid: _Pending(message=message, local_ts=local_ts, ts_from=dict(ts_from))
            for uid, message, local_ts, ts_from in state.get("pending", ())
        }
        self.adelivered_uids = set(state.get("adelivered_uids", ()))
        self._adelivered_ts = dict(state.get("adelivered_ts", ()))
        self._adelivered_ts_prev = set(state.get("adelivered_ts_prev", ()))
        self.adelivered_count = state.get("adelivered_count", 0)
        self._fifo_next = dict(state.get("fifo_next", ()))
        self._fifo_blocked = {
            key: dict(blocked) for key, blocked in state.get("fifo_blocked", ())
        }
        self._early_ts_store = {
            uid: dict(per_group) for uid, per_group in state.get("early_ts", ())
        }

    # -- log delivery (the deterministic Skeen machine) --------------------------

    def deliver_value(self, value: Any) -> None:
        if isinstance(value, OrderEvent):
            self._on_order_event(value.message)
        elif isinstance(value, TsEvent):
            self._on_ts_event(value)
        else:
            super().deliver_value(value)

    def _on_order_event(self, msg: MulticastMessage) -> None:
        if msg.uid in self.adelivered_uids or msg.uid in self.pending_msgs:
            return
        self.clock += 1
        entry = _Pending(message=msg, local_ts=self.clock)
        entry.ts_from[self.group] = self.clock
        self.pending_msgs[msg.uid] = entry
        self._trace_ordered(msg, self.clock)
        if not msg.is_single_group:
            self._send_ts(entry)
        self._try_adeliver()

    def _trace_ordered(self, msg: MulticastMessage, ts: int) -> None:
        """Stamp an "ordered" event on the command's in-flight span when
        its OrderEvent clears this group's log (one replica per group
        records, like metrics).  Command payloads annotate their
        ``multicast-order`` span; oracle queries their ``oracle-lookup``
        span.  ``event_on`` is a no-op when the span is not open."""
        if self.index != 0 or not self.tracer.enabled:
            return
        payload = msg.payload
        command = getattr(payload, "command", None)
        attempt = getattr(payload, "attempt", None)
        if command is None or attempt is None:
            return
        # OracleQuery is the only traced payload with a ``dispatch`` flag.
        span = "oracle-lookup" if hasattr(payload, "dispatch") else "multicast-order"
        self.tracer.event_on(
            command.uid, span, attempt, "ordered", self.now,
            group=self.group, local_ts=ts,
        )

    def _on_ts_event(self, event: TsEvent) -> None:
        entry = self.pending_msgs.get(event.msg_uid)
        if entry is None:
            # Either already a-delivered, or the remote ts arrived before
            # our own OrderEvent; buffer by re-checking once ordered.
            if event.msg_uid not in self.adelivered_uids:
                self._early_ts.setdefault(event.msg_uid, {})[event.from_group] = event.ts
            self.clock = max(self.clock, event.ts)
            return
        entry.ts_from[event.from_group] = event.ts
        self.clock = max(self.clock, event.ts)
        self._try_adeliver()

    # Early remote timestamps (TsEvent ordered before our OrderEvent).
    @property
    def _early_ts(self) -> dict:
        return self._early_ts_store

    def _send_ts(self, entry: _Pending) -> None:
        """Ship this group's timestamp to the other destination groups.

        Only the current leader sends (followers would duplicate); the
        periodic retransmitter covers leader crashes.
        """
        msg = entry.message
        early = self._early_ts.pop(msg.uid, None)
        if early:
            for from_group, ts in early.items():
                entry.ts_from[from_group] = ts
                self.clock = max(self.clock, ts)
        if self.is_leader and self._directory is not None:
            notice = RemoteTs(msg.uid, self.group, entry.ts_from[self.group])
            for dest_group in msg.dests:
                if dest_group != self.group:
                    for replica in self._directory.replicas_of(dest_group):
                        self.send(replica, notice)

    def _retransmit_stalled(self) -> None:
        """Leader re-ships state for messages still missing remote
        timestamps.

        Two failure modes are covered: the RemoteTs itself was lost
        (leader crash, message loss), and — worse — a destination group
        never received the OrderEvent at all, so it will never produce a
        timestamp and the min-pending gate wedges *every* group.  The
        leader therefore re-sends both its own RemoteTs and the original
        OrderEvent to the groups whose timestamps are missing (uid-dedup
        in their logs makes this idempotent).
        """
        if not self.is_leader or self._directory is None:
            return
        for entry in self.pending_msgs.values():
            msg = entry.message
            if msg.is_single_group or entry.final_ts is not None:
                continue
            if self.group not in entry.ts_from:
                continue
            notice = RemoteTs(msg.uid, self.group, entry.ts_from[self.group])
            order = Submit(OrderEvent(msg))
            for dest_group in msg.dests:
                if dest_group != self.group:
                    for replica in self._directory.replicas_of(dest_group):
                        self.send(replica, notice)
                        if dest_group not in entry.ts_from:
                            self.send(replica, order)

    def submit(self, value: Any) -> None:
        if isinstance(value, OrderEvent) and value.message.uid in self.adelivered_uids:
            # The Paxos layer would silently dedup this re-submitted
            # OrderEvent.  But a duplicate Order for a message we already
            # a-delivered is a probe: some peer group is still pending on
            # our timestamp (its copies of our RemoteTs were lost after we
            # dropped the pending entry).  Staying silent wedges that
            # peer's min-pending gate forever — answer from the retained
            # timestamp instead.
            self._reanswer_ts(value.message)
            return
        super().submit(value)

    def _reanswer_ts(self, msg: MulticastMessage) -> None:
        ts = self._adelivered_ts.get(msg.uid)
        if ts is None or not self.is_leader or self._directory is None:
            return
        notice = RemoteTs(msg.uid, self.group, ts)
        for dest_group in msg.dests:
            if dest_group != self.group:
                for replica in self._directory.replicas_of(dest_group):
                    self.send(replica, notice)

    # -- replica-to-replica timestamps -------------------------------------------

    def on_other_message(self, sender: str, message: Any) -> None:
        if isinstance(message, RemoteTs):
            # Route through our own log so every replica of this group
            # processes the timestamp at the same log position.
            event = TsEvent(message.msg_uid, message.from_group, message.ts)
            if event.uid not in self.delivered_uids:
                self.submit(event)
        else:
            self.on_app_message(sender, message)

    def on_app_message(self, sender: str, message: Any) -> None:
        """Hook for layers above the multicast (DynaStar servers)."""

    # -- a-delivery ------------------------------------------------------------------

    def _try_adeliver(self) -> None:
        while self.pending_msgs:
            head = min(
                self.pending_msgs.values(),
                key=lambda e: (e.effective_ts, e.message.uid),
            )
            if head.final_ts is None:
                return
            del self.pending_msgs[head.message.uid]
            self.adelivered_uids.add(head.message.uid)
            if not head.message.is_single_group:
                # Keep our timestamp: a peer group whose copy of our
                # RemoteTs was lost will probe with a duplicate
                # OrderEvent after we dropped the pending entry, and we
                # must still be able to answer (see :meth:`submit`).
                self._adelivered_ts[head.message.uid] = head.ts_from[self.group]
            self._fifo_gate(head.message)

    def _fifo_gate(self, msg: MulticastMessage) -> None:
        """Hold back messages whose FIFO predecessors from the same sender
        (among those addressed to this group) were not a-delivered yet."""
        seq = msg.fifo_seq_for(self.group)
        if not msg.fifo_key or seq is None:
            self._adeliver(msg)
            return
        key = msg.fifo_key
        expected = self._fifo_next.setdefault(key, 0)
        if seq > expected:
            self._fifo_blocked.setdefault(key, {})[seq] = msg
            return
        self._adeliver(msg)
        self._fifo_next[key] = seq + 1
        blocked = self._fifo_blocked.get(key, {})
        while self._fifo_next[key] in blocked:
            nxt = blocked.pop(self._fifo_next[key])
            self._adeliver(nxt)
            self._fifo_next[key] += 1

    def _adeliver(self, msg: MulticastMessage) -> None:
        self.adelivered_count += 1
        self.adeliver(msg)

    def adeliver(self, msg: MulticastMessage) -> None:
        """A-delivery point; subclasses or the callback consume messages."""
        if self.on_adeliver is not None:
            self.on_adeliver(msg)


class MulticastGroup(PaxosGroup):
    """A Paxos group whose replicas run the multicast state machine."""

    def __init__(
        self,
        name: str,
        network: Network,
        config: Optional[GroupConfig] = None,
        replica_factory=None,
        on_adeliver: Optional[Callable[[str, MulticastMessage], None]] = None,
        rng: Optional[random.Random] = None,
    ):
        def factory(**kwargs):
            callback = None
            if on_adeliver is not None:
                rep_name = kwargs["name"]
                callback = lambda m, rep_name=rep_name: on_adeliver(rep_name, m)
            cls = replica_factory or MulticastReplica
            kwargs.pop("on_deliver", None)
            return cls(on_adeliver=callback, **kwargs)

        super().__init__(name, network, config=config, replica_factory=factory, rng=rng)


class GroupDirectory:
    """Registry of multicast groups plus the sender-side a-mcast API."""

    def __init__(self, network: Network):
        self.network = network
        self.groups: dict[str, MulticastGroup] = {}
        self._seq = itertools.count()
        self._fifo_counters: dict[tuple[str, str], int] = {}
        #: Optional ingress hook (compartmentalized mode): called as
        #: ``submit_router(group_name, message)`` and returns the actor
        #: names that should receive the Submit instead of the group's
        #: replicas, or ``None`` for the default fan-out.  Installed by
        #: the system builder so this layer stays ignorant of the stage
        #: actors above it.
        self.submit_router = None

    def add(self, group: MulticastGroup) -> MulticastGroup:
        self.groups[group.name] = group
        for replica in group.replicas:
            replica.attach_directory(self)
        return group

    def create_group(
        self,
        name: str,
        config: Optional[GroupConfig] = None,
        replica_factory=None,
        on_adeliver=None,
        rng=None,
    ) -> MulticastGroup:
        group = MulticastGroup(
            name,
            self.network,
            config=config,
            replica_factory=replica_factory,
            on_adeliver=on_adeliver,
            rng=rng,
        )
        return self.add(group)

    def replicas_of(self, group_name: str) -> list[str]:
        return self.groups[group_name].replica_names

    def group_names(self) -> list[str]:
        return list(self.groups)

    def start(self) -> None:
        for group in self.groups.values():
            group.start()

    # -- sending -----------------------------------------------------------

    def make_message(
        self,
        dests,
        payload: Any,
        uid: Optional[str] = None,
        fifo_key: str = "",
    ) -> MulticastMessage:
        """Build a message; when ``fifo_key`` is set, per-(sender, group)
        sequence numbers are assigned so destinations enforce FIFO order."""
        if uid is None:
            uid = f"m{next(self._seq)}"
        dests = tuple(sorted(dests))
        fifo_seqs = ()
        if fifo_key:
            seqs = []
            for group in dests:
                counter_key = (fifo_key, group)
                seq = self._fifo_counters.get(counter_key, 0)
                self._fifo_counters[counter_key] = seq + 1
                seqs.append((group, seq))
            fifo_seqs = tuple(seqs)
        return MulticastMessage(
            uid=uid,
            dests=dests,
            payload=payload,
            fifo_key=fifo_key,
            fifo_seqs=fifo_seqs,
        )

    def amcast(self, sender, message: MulticastMessage) -> None:
        """Atomically multicast ``message`` from actor ``sender``: submit
        an OrderEvent to every replica of every destination group (or to
        the group's ingress stage when a submit router is installed)."""
        event = OrderEvent(message)
        for group_name in message.dests:
            if self.submit_router is not None:
                routed = self.submit_router(group_name, message)
                if routed is not None:
                    for dest in routed:
                        sender.send(dest, Submit(event))
                    continue
            for replica in self.replicas_of(group_name):
                sender.send(replica, Submit(event))

    def amcast_local(self, from_replica: MulticastReplica, message: MulticastMessage) -> None:
        """a-mcast issued by a replica itself (e.g. the oracle multicasting
        a partitioning plan): local group submits directly, remote groups
        get Submit messages."""
        event = OrderEvent(message)
        for group_name in message.dests:
            if group_name == from_replica.group:
                from_replica.submit(event)
            else:
                for replica in self.replicas_of(group_name):
                    from_replica.send(replica, Submit(event))
