"""Atomic multicast message and log-event types."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class MulticastMessage:
    """An application message multicast to a set of groups.

    ``uid`` must be globally unique; ``dests`` is a sorted tuple of group
    names.

    FIFO order is enforced per sender (``fifo_key``): ``fifo_seqs`` holds
    one ``(group, seq)`` pair per destination, where ``seq`` counts the
    sender's messages addressed to that group.  Sequencing per (sender,
    group) — rather than one global per-sender counter — means a group
    never waits for a predecessor that was not addressed to it, while
    still guaranteeing that any process delivering two messages from the
    same sender delivers them in send order.
    """

    uid: str
    dests: tuple
    payload: Any
    fifo_key: str = ""
    fifo_seqs: tuple = ()

    def __post_init__(self):
        if not self.dests:
            raise ValueError("multicast needs at least one destination group")
        if tuple(sorted(self.dests)) != self.dests:
            raise ValueError("dests must be a sorted tuple")
        if self.fifo_key and len(self.fifo_seqs) != len(self.dests):
            raise ValueError("fifo_seqs must have one (group, seq) per dest")

    @property
    def is_single_group(self) -> bool:
        return len(self.dests) == 1

    def fifo_seq_for(self, group: str):
        """This sender's per-``group`` sequence number, or ``None``."""
        for g, seq in self.fifo_seqs:
            if g == group:
                return seq
        return None


@dataclass(frozen=True, slots=True)
class OrderEvent:
    """Group-log event: locally order ``message`` and assign a timestamp."""

    message: MulticastMessage

    @property
    def uid(self) -> str:
        return f"ord:{self.message.uid}"


@dataclass(frozen=True, slots=True)
class TsEvent:
    """Group-log event: a remote group's timestamp for a pending message."""

    msg_uid: str
    from_group: str
    ts: int

    @property
    def uid(self) -> str:
        return f"ts:{self.msg_uid}:{self.from_group}"


@dataclass(frozen=True, slots=True)
class RemoteTs:
    """Replica-to-replica notification carrying a group timestamp.

    The receiving replica wraps it into a :class:`TsEvent` and submits it
    to its own group's log so all replicas bump their Skeen clock at the
    same log position.
    """

    msg_uid: str
    from_group: str
    ts: int
