"""Elastic partition count: online split and merge of partitions.

DynaStar's repartitioner rebalances over a *fixed* set of partitions;
this package lets the deployed partition count itself follow the load.
The oracle watches per-partition load (the same log-driven quantities
the health sampler reports), decides splits and merges via the pure
policy in :mod:`repro.elastic.policy`, and drives the two-phase
epoch-tagged reconfiguration protocol; the
:class:`~repro.elastic.controller.ElasticityController` is the
system-level arm that provisions new Paxos+multicast groups mid-run and
retires drained ones.
"""

from repro.elastic.controller import ElasticityController
from repro.elastic.policy import (
    ElasticConfig,
    ElasticDecision,
    apply_reconfig,
    decide_reconfig,
    split_assignment,
)

__all__ = [
    "ElasticConfig",
    "ElasticDecision",
    "ElasticityController",
    "apply_reconfig",
    "decide_reconfig",
    "split_assignment",
]
