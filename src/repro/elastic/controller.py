"""System-side arm of elastic reconfiguration: group lifecycle.

The oracle replicas decide *that* a partition splits or merges (through
their shared log); the :class:`ElasticityController` owns the parts of
the change that live outside any replicated log — registering a fresh
Paxos+multicast group on the simulated network, arming its timers, and
keeping the system-level ``partition_names`` view (health sampler,
consistency checks, chaos generation) in step.  Both oracle replicas
invoke the hooks when they a-deliver the reconfiguration plan, and a
recovering replica may invoke them again while replaying its log, so
every operation here is idempotent: the first call acts, the rest are
no-ops.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.monitor import Monitor


class ElasticityController:
    """Provision and retire partition groups on a live system."""

    def __init__(self, system):
        self.system = system
        self.provisioned: set[str] = set()
        self.retired: set[str] = set()

    @property
    def _monitor(self) -> Monitor:
        return self.system.monitor

    def _record_partition_count(self) -> None:
        count = len(self.system.partition_names)
        self._monitor.series("partition_count").record(self.system.sim.now, count)
        self._monitor.gauge("partition_count").set(count)
        self._monitor.counter("reconfig", event="topology_change").inc()

    # -- provisioning ------------------------------------------------------

    def provision(self, name: str) -> None:
        """Create, register and start a new partition group ``name``.

        Idempotent: a second call (the other oracle replica, or a log
        replay after recovery) finds the group registered and returns.
        The group's RNG is derived from the system seed by name, so a
        mid-run provision is as deterministic as a construction-time one.
        """
        system = self.system
        if name in system.directory.groups:
            if name not in system.partition_names and name not in self.retired:
                system.partition_names.append(name)
            return
        self.provisioned.add(name)
        group = system.directory.create_group(
            name,
            config=system.group_config,
            replica_factory=system.server_factory,
            rng=system.seeds.rng(f"group:{name}"),
        )
        system.partition_names.append(name)
        if system.started:
            group.start()
        self._record_partition_count()

    # -- retirement --------------------------------------------------------

    def retire(self, name: str) -> None:
        """Drop ``name`` from the active partition set.

        The group object stays registered and its replicas stay on the
        network — a retired server keeps acking stragglers and NACKing
        misdirected clients — but nothing system-level (health samples,
        store-consistency sweeps, chaos schedules) looks at it anymore.
        """
        system = self.system
        if name in self.retired:
            return
        self.retired.add(name)
        if name in system.partition_names:
            system.partition_names.remove(name)
        self._record_partition_count()

    # -- introspection -----------------------------------------------------

    def group(self, name: str) -> Optional[object]:
        return self.system.directory.groups.get(name)
