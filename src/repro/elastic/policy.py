"""Elasticity policy: when to split or merge, and what moves where.

Everything here is a pure function of log-driven oracle state (the
workload graph, the location map, windowed per-partition access weights)
— never of local clocks or per-replica observations — so both oracle
replicas evaluating at the same log position reach the identical
decision.  The same functions back the hypothesis property tests that
the directory map stays a total, non-overlapping assignment across any
sequence of split/merge plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.partitioning import WorkloadGraph, partition_graph


@dataclass(frozen=True)
class ElasticConfig:
    """Shape of the split/merge policy (all thresholds log-driven).

    Intervals and cooldowns are measured in *observed accesses* (the
    same unit as the repartition threshold), not virtual seconds: an
    idle system never reconfigures, and both oracle replicas count the
    identical accesses from the shared log.
    """

    #: A partition whose windowed access share exceeds ``split_factor``
    #: times the fair share (total / k) is split in two.
    split_factor: float = 1.6
    #: A partition whose windowed access share falls below
    #: ``merge_factor`` times the fair share is merged away into the
    #: next-lightest partition.  Keep well below ``split_factor`` /
    #: post-split shares or the topology oscillates.
    merge_factor: float = 0.25
    #: Evaluate the policy every this-many observed accesses.
    eval_interval: int = 400
    #: Observed accesses to wait after a reconfiguration before the next
    #: one may fire (lets the windowed weights re-form post-cutover).
    cooldown: int = 1200
    #: Topology bounds.
    max_partitions: int = 8
    min_partitions: int = 1
    #: Never split a partition holding fewer graph nodes than this.
    min_split_nodes: int = 4

    def __post_init__(self):
        if self.split_factor <= 1.0:
            raise ValueError("split_factor must exceed 1.0")
        if not 0.0 < self.merge_factor < 1.0:
            raise ValueError("merge_factor must be in (0, 1)")
        if self.merge_factor >= self.split_factor:
            raise ValueError("merge_factor must be below split_factor")
        if self.eval_interval < 1 or self.cooldown < 0:
            raise ValueError("eval_interval must be >= 1, cooldown >= 0")
        if self.min_partitions < 1 or self.max_partitions < self.min_partitions:
            raise ValueError("need 1 <= min_partitions <= max_partitions")
        if self.min_split_nodes < 2:
            raise ValueError("min_split_nodes must be >= 2")


@dataclass(frozen=True)
class ElasticDecision:
    """One policy verdict: split ``source`` or merge it into ``target``."""

    kind: str  # "split" | "merge"
    source: str
    target: Optional[str] = None  # merge only; splits name their target later


def decide_reconfig(
    window_weights: Mapping[str, float],
    node_counts: Mapping[str, int],
    partition_names: list[str],
    config: ElasticConfig,
) -> Optional[ElasticDecision]:
    """Evaluate the policy over one access window.

    ``window_weights`` are per-partition access weights accumulated
    since the last evaluation; ``node_counts`` the current number of
    graph nodes homed at each partition.  Ties everywhere break by
    partition name, so the verdict is deterministic.
    """
    k = len(partition_names)
    weights = {p: float(window_weights.get(p, 0.0)) for p in partition_names}
    total = sum(weights.values())
    if k == 0 or total <= 0.0:
        return None
    fair = total / k

    # Split the heaviest overloaded partition first: shedding a hotspot
    # matters more than tidying an idle one.
    if k < config.max_partitions:
        name, weight = max(
            weights.items(), key=lambda kv: (kv[1], kv[0])
        )
        if (
            weight > config.split_factor * fair
            and node_counts.get(name, 0) >= config.min_split_nodes
        ):
            return ElasticDecision("split", source=name)

    if k > config.min_partitions and k >= 2:
        ordered = sorted(weights.items(), key=lambda kv: (kv[1], kv[0]))
        (light, light_w), (absorber, _) = ordered[0], ordered[1]
        if light_w < config.merge_factor * fair:
            return ElasticDecision("merge", source=light, target=absorber)
    return None


def split_assignment(
    graph: WorkloadGraph,
    location: Mapping[Any, str],
    source: str,
    seed: int,
    imbalance: float = 0.20,
) -> tuple:
    """The nodes that leave ``source`` in a split: bisect the induced
    subgraph of ``source``'s nodes with the multilevel partitioner and
    move the lighter side (ties broken by smallest node repr, so the
    heavier — usually hotter — half keeps its home and nothing it owns
    relocates).  Returns a sorted node tuple; empty when no sensible
    bisection exists."""
    nodes = sorted((n for n, p in location.items() if p == source), key=repr)
    if len(nodes) < 2:
        return ()
    sub = WorkloadGraph()
    member = set(nodes)
    for node in nodes:
        sub.ensure_vertex(
            node, graph.vertex_weight(node) if node in graph else 1.0
        )
    for u, v, w in graph.edges():
        if u in member and v in member:
            sub.add_edge(u, v, w)
    result = partition_graph(sub, 2, imbalance=imbalance, seed=seed, restarts=3)
    sides: dict[int, list] = {0: [], 1: []}
    for node in nodes:
        sides.setdefault(result.assignment.get(node, 0), []).append(node)
    side_a, side_b = sides.get(0, []), sides.get(1, [])
    if not side_a or not side_b:
        # Degenerate bisection; move half the nodes by weight rank so the
        # split still relieves the hotspot.
        ranked = sorted(
            nodes,
            key=lambda n: (-(graph.vertex_weight(n) if n in graph else 0.0), repr(n)),
        )
        side_a, side_b = ranked[0::2], ranked[1::2]

    def side_key(side):
        weight = sum(
            graph.vertex_weight(n) if n in graph else 0.0 for n in side
        )
        return (weight, repr(sorted(side, key=repr)[0]))

    moving = min(side_a, side_b, key=side_key)
    return tuple(sorted(moving, key=repr))


def apply_reconfig(location: Mapping[Any, str], plan) -> dict:
    """The cutover assignment a :class:`~repro.core.messages.ReconfigPlan`
    produces over ``location``.  Pure so the oracle replicas and the
    property tests share one implementation:

    * split — the surviving subset of ``plan.moved`` still homed at
      ``plan.source`` moves to ``plan.target`` (deleted nodes are
      skipped, relocated ones are left with their current owner);
    * merge — every node currently homed at ``plan.source`` (including
      creates that landed after the plan was computed) moves to
      ``plan.target``, leaving the source empty.
    """
    assignment = dict(location)
    if plan.kind == "split":
        for node in plan.moved:
            if assignment.get(node) == plan.source:
                assignment[node] = plan.target
    else:
        for node, part in assignment.items():
            if part == plan.source:
                assignment[node] = plan.target
    return assignment
