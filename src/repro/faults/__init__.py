"""Deterministic chaos injection for DynaStar systems.

The package provides three pieces:

* :mod:`repro.faults.schedule` — :class:`FaultEvent` / :class:`FaultSchedule`,
  a validated, time-sorted script of faults (crashes *and recoveries*,
  link cuts/heals, one-way cuts, loss bursts, delay spikes).
* :mod:`repro.faults.injector` — :class:`ChaosInjector`, which arms a
  schedule against a running :class:`~repro.core.system.DynaStarSystem`
  and records every applied fault for replay/determinism checks.
* :mod:`repro.faults.random_chaos` — :class:`ChaosConfig` and
  :func:`generate`, a seeded generator of randomized-but-safe schedules
  (quorums are never lost, every crash is paired with a recovery).

Everything is driven by the simulation's virtual clock and seeded RNG
streams, so a failing run reproduces exactly from its seed.
"""

from repro.faults.schedule import FAULT_KINDS, FaultEvent, FaultSchedule
from repro.faults.injector import ChaosInjector
from repro.faults.random_chaos import ChaosConfig, generate, generate_for_system

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "ChaosInjector",
    "ChaosConfig",
    "generate",
    "generate_for_system",
]
