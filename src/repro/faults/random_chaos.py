"""Seeded random fault-schedule generation with safety constraints.

The generator produces schedules that are chaotic but *survivable*:

* per group, at most one replica is down at any time, and every crash
  is paired with a recovery (crash windows are serialized into slots);
* per group, at most one acceptor is down at any time — a quorum of the
  usual 3 acceptors always stays up;
* every link cut is healed before the horizon;
* loss bursts and delay spikes are bounded windows.

Given the same :class:`ChaosConfig` and seed, :func:`generate` returns
the identical schedule — reproduce a failing run by re-running its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.faults.schedule import FaultEvent, FaultSchedule


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of a randomized chaos run."""

    #: Faults are placed in the window [start_after, duration].
    duration: float = 20.0
    start_after: float = 1.0
    #: Crash/recover windows per group (replicas and acceptors).
    replica_crashes_per_group: int = 1
    acceptor_crashes_per_group: int = 1
    #: Probability that a replica crash targets the current leader.
    leader_crash_probability: float = 0.5
    #: Bidirectional link cut/heal windows across the whole run.
    link_cuts: int = 2
    #: One-way cut/heal windows across the whole run.
    oneway_cuts: int = 1
    loss_bursts: int = 1
    delay_spikes: int = 1
    #: Flash-crowd windows (0 keeps existing seeded schedules identical:
    #: the generator draws nothing for a zero count).
    overload_bursts: int = 0
    min_downtime: float = 0.5
    max_downtime: float = 2.0
    burst_probability: float = 0.2
    burst_duration: float = 1.0
    spike_extra: float = 0.01
    spike_duration: float = 1.0
    overload_factor: float = 10.0
    overload_duration: float = 2.0
    #: Elastic-reconfiguration fault windows (all default 0: zero counts
    #: draw nothing from the rng, keeping existing schedules identical).
    #: ``mid_split_crashes`` targets partition groups mid-handoff;
    #: ``oracle_reconfig_crashes`` kills an oracle replica inside the
    #: reconfig window; ``cutover_loss_bursts`` riddles the cutover with
    #: message loss.  All three resolve applicability at fire time.
    mid_split_crashes: int = 0
    oracle_reconfig_crashes: int = 0
    cutover_loss_bursts: int = 0
    cutover_loss_probability: float = 0.3
    cutover_loss_duration: float = 1.0
    #: Compartmentalized-stage fault windows (zero counts draw nothing,
    #: keeping existing seeded schedules identical).  ``proxy_crashes``
    #: kills an alive proxy leader (preferring one with buffered
    #: traffic); ``lease_expiries`` forces the current lease holder to
    #: abandon its lease mid-validity.  Both resolve at fire time and
    #: no-op against a non-compartmentalized system.
    proxy_crashes: int = 0
    lease_expiries: int = 0

    def __post_init__(self):
        if self.duration <= self.start_after:
            raise ValueError("duration must exceed start_after")
        if self.min_downtime > self.max_downtime:
            raise ValueError("min_downtime must be <= max_downtime")


def _windows(rng: random.Random, config: ChaosConfig, count: int):
    """``count`` non-overlapping (start, end) windows inside the fault
    span, one per equal slot, each long enough for a min_downtime."""
    span_start, span_end = config.start_after, config.duration
    slot = (span_end - span_start) / max(count, 1)
    out = []
    for i in range(count):
        lo = span_start + i * slot
        hi = lo + slot
        downtime = rng.uniform(
            config.min_downtime, min(config.max_downtime, max(slot * 0.8, config.min_downtime))
        )
        downtime = min(downtime, (hi - lo) * 0.9)
        start = rng.uniform(lo, max(lo, hi - downtime))
        out.append((start, start + downtime))
    return out


def generate(
    config: ChaosConfig,
    groups: Sequence[str],
    seed: int,
    replicas_per_group: int = 2,
    acceptors_per_group: int = 3,
    link_actors: Sequence[str] = (),
    oracle_group: str = "oracle",
) -> FaultSchedule:
    """Build a randomized, safe schedule.

    ``groups`` are the group names eligible for crashes (partitions and,
    if desired, the oracle).  ``link_actors`` are actor names eligible
    for link cuts; leave empty to disable cuts.
    """
    rng = random.Random(seed)
    schedule = FaultSchedule()

    for group in groups:
        # Replica crash windows (serialized per group, keeping a replica up).
        for start, end in _windows(rng, config, config.replica_crashes_per_group):
            if replicas_per_group > 1 and rng.random() < config.leader_crash_probability:
                schedule.at(start, "crash_leader", group)
                schedule.at(end, "recover_leader", group)
            else:
                index = rng.randrange(replicas_per_group)
                schedule.at(start, "crash_replica", group, index)
                schedule.at(end, "recover_replica", group, index)
        # Acceptor crash windows (one acceptor down at a time: quorum safe).
        for start, end in _windows(rng, config, config.acceptor_crashes_per_group):
            index = rng.randrange(acceptors_per_group)
            schedule.at(start, "crash_acceptor", group, index)
            schedule.at(end, "recover_acceptor", group, index)

    actors = list(link_actors)
    if len(actors) >= 2:
        for start, end in _windows(rng, config, config.link_cuts):
            a, b = rng.sample(actors, 2)
            schedule.at(start, "cut", a, b)
            schedule.at(end, "heal", a, b)
        for start, end in _windows(rng, config, config.oneway_cuts):
            a, b = rng.sample(actors, 2)
            schedule.at(start, "cut_oneway", a, b)
            schedule.at(end, "heal_oneway", a, b)

    for start, _end in _windows(rng, config, config.loss_bursts):
        schedule.at(start, "loss_burst", config.burst_duration, config.burst_probability)
    for start, _end in _windows(rng, config, config.delay_spikes):
        schedule.at(start, "delay_spike", config.spike_duration, config.spike_extra)
    # Guarded so a zero count (the default) draws nothing from the rng,
    # keeping pre-existing seeded schedules byte-identical.
    if config.overload_bursts > 0:
        for start, _end in _windows(rng, config, config.overload_bursts):
            schedule.at(
                start, "overload_burst",
                config.overload_duration, config.overload_factor,
            )
    # Elastic reconfiguration faults (same zero-count guard).  Crash
    # windows pair with recover_leader: the mid-split victim is recorded
    # in the injector's crashed-leader ledger.
    if config.mid_split_crashes > 0 and groups:
        for start, end in _windows(rng, config, config.mid_split_crashes):
            group = rng.choice(list(groups))
            schedule.at(start, "crash_mid_split", group)
            schedule.at(end, "recover_leader", group)
    if config.oracle_reconfig_crashes > 0:
        for start, end in _windows(rng, config, config.oracle_reconfig_crashes):
            schedule.at(start, "crash_oracle_during_reconfig")
            schedule.at(end, "recover_leader", oracle_group)
    if config.cutover_loss_bursts > 0:
        for start, _end in _windows(rng, config, config.cutover_loss_bursts):
            schedule.at(
                start, "lose_cutover_msgs",
                config.cutover_loss_duration, config.cutover_loss_probability,
            )
    # Compartmentalized-stage faults (same zero-count guard).  Proxy
    # crashes pair with recover_leader via the shared crash ledger.
    if config.proxy_crashes > 0 and groups:
        for start, end in _windows(rng, config, config.proxy_crashes):
            group = rng.choice(list(groups))
            schedule.at(start, "crash_proxy_leader", group)
            schedule.at(end, "recover_leader", group)
    if config.lease_expiries > 0 and groups:
        for start, _end in _windows(rng, config, config.lease_expiries):
            schedule.at(start, "expire_lease", rng.choice(list(groups)))

    return schedule


def generate_for_system(
    system,
    config: ChaosConfig,
    seed: int,
    include_oracle: bool = True,
    cut_links: bool = True,
) -> FaultSchedule:
    """Generate a schedule shaped to a :class:`DynaStarSystem`: its
    partition groups (plus the oracle), replica/acceptor counts, and —
    when ``cut_links`` — its replica actor names as link endpoints."""
    groups = list(system.partition_names)
    if include_oracle:
        groups.append(system.oracle_group)
    link_actors: list[str] = []
    if cut_links:
        for name in groups:
            link_actors.extend(system.directory.groups[name].replica_names)
    return generate(
        config,
        groups,
        seed,
        replicas_per_group=system.config.n_replicas,
        acceptors_per_group=system.config.n_acceptors,
        link_actors=link_actors,
        oracle_group=system.oracle_group,
    )
