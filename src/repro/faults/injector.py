"""The chaos injector: applies a :class:`FaultSchedule` to a live system.

The injector schedules every fault on the system's event heap at arm
time, so the faults interleave deterministically with protocol traffic
on the virtual clock.  Each applied fault is appended to
:attr:`ChaosInjector.applied`, counted under the labeled ``fault``
monitor counter (``kind=<kind>``), and — when the system traces —
recorded as a global tracer event so chaos runs are explainable.  The
applied log is the ground truth for replay determinism tests (same
seed, same schedule ⇒ identical logs).

``crash_leader`` is resolved at fire time (whichever replica leads the
group then); the matching ``recover_leader`` recovers exactly the
replicas its group's earlier ``crash_leader`` events took down.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.obs.trace import NULL_TRACER
from repro.sim.monitor import Monitor


class ChaosInjector:
    """Arms a fault schedule against a :class:`DynaStarSystem`.

    Works with any object exposing ``sim``, ``net``, ``monitor`` and
    ``directory.groups`` the way :class:`~repro.core.system.DynaStarSystem`
    does.
    """

    def __init__(self, system, schedule: FaultSchedule, monitor: Optional[Monitor] = None):
        self.system = system
        self.schedule = schedule
        self.monitor = monitor or getattr(system, "monitor", None) or Monitor()
        self.tracer = getattr(system, "tracer", None) or NULL_TRACER
        #: (virtual_time, kind, args) triples in application order.
        self.applied: list[tuple] = []
        self._crashed_leaders: dict[str, list] = {}
        self._armed = False

    def arm(self) -> "ChaosInjector":
        """Schedule every fault on the system's event heap (idempotent
        guard: arming twice would double-apply every fault)."""
        if self._armed:
            raise RuntimeError("chaos injector is already armed")
        self._armed = True
        for event in self.schedule:
            self.system.sim.schedule_at(event.at, self._make_apply(event))
        return self

    def _make_apply(self, event: FaultEvent):
        def apply() -> None:
            handler = getattr(self, f"_do_{event.kind}")
            handler(*event.args)
            self.applied.append((self.system.sim.now, event.kind, event.args))
            self.monitor.counter("fault", kind=event.kind).inc()
            self.tracer.record(
                "fault", self.system.sim.now,
                kind=event.kind, args=list(event.args),
            )

        return apply

    # -- group helpers ------------------------------------------------------

    def _group(self, name: str):
        try:
            return self.system.directory.groups[name]
        except KeyError:
            known = ", ".join(sorted(self.system.directory.groups))
            raise KeyError(
                f"unknown group {name!r} in fault schedule (groups: {known})"
            ) from None

    # -- crash / recover ----------------------------------------------------

    def _do_crash_replica(self, group: str, index: int) -> None:
        self._group(group).replicas[index].crash()

    def _do_recover_replica(self, group: str, index: int) -> None:
        self._group(group).replicas[index].recover()

    def _do_crash_acceptor(self, group: str, index: int) -> None:
        self._group(group).acceptors[index].crash()

    def _do_recover_acceptor(self, group: str, index: int) -> None:
        self._group(group).acceptors[index].recover()

    def _do_crash_leader(self, group: str) -> None:
        g = self._group(group)
        victim = g.leader
        if victim is None:
            # No settled leader right now; hit the first live replica so
            # the schedule still injects a fault.
            alive = g.alive_replicas
            victim = alive[0] if alive else None
        if victim is not None:
            victim.crash()
            self._crashed_leaders.setdefault(group, []).append(victim)

    def _do_recover_leader(self, group: str) -> None:
        for replica in self._crashed_leaders.pop(group, []):
            replica.recover()

    # -- snapshot-transfer fault points --------------------------------------

    def _do_crash_mid_transfer(self, group: str) -> None:
        """Crash the replica of ``group`` currently downloading a
        snapshot — the requester-dies-mid-transfer fault point.  No-op
        (still logged) when no transfer is in flight at fire time."""
        for replica in self._group(group).replicas:
            if not replica.crashed and replica._fetching is not None:
                replica.crash()
                return

    def _do_crash_snapshot_provider(self, group: str) -> None:
        """Crash the replica of ``group`` currently *serving* a snapshot
        download (resolved via the requester's fetch state).  Falls back
        to any live replica holding a checkpoint, so a schedule that
        fires a beat early still kills the would-be provider."""
        g = self._group(group)
        by_name = {replica.name: replica for replica in g.replicas}
        for replica in g.replicas:
            fetch = replica._fetching
            if fetch is None or fetch.provider is None:
                continue
            provider = by_name.get(fetch.provider)
            if provider is not None and not provider.crashed:
                provider.crash()
                return
        for replica in g.replicas:
            if not replica.crashed and replica.last_checkpoint is not None:
                replica.crash()
                return

    # -- elastic reconfiguration fault points ---------------------------------

    def _reconfig_in_flight(self) -> bool:
        """Whether any oracle replica has a reconfiguration pending,
        decided, or awaiting drain at fire time."""
        oracle_group = getattr(self.system, "oracle_group", "oracle")
        group = self.system.directory.groups.get(oracle_group)
        if group is None:
            return False
        return any(
            getattr(r, "reconfig_inflight", False)
            or getattr(r, "_pending_reconfig", None) is not None
            for r in group.replicas
        )

    def _do_crash_mid_split(self, group: str) -> None:
        """Crash a replica of ``group`` while it holds reconfiguration
        handoff state — nodes still in transit, an unacked handoff
        outbox, or an unfinished drain.  Resolved at fire time; no-op
        (still logged) when the group is quiescent.  The victim joins the
        ``crash_leader`` ledger so a paired ``recover_leader`` event
        brings it back."""
        for replica in self._group(group).replicas:
            if replica.crashed:
                continue
            mid_handoff = (
                getattr(replica, "in_transit", None)
                or getattr(replica, "_outbox", None)
                or (
                    getattr(replica, "draining", False)
                    and not getattr(replica, "retired", False)
                )
            )
            if mid_handoff:
                replica.crash()
                self._crashed_leaders.setdefault(group, []).append(replica)
                return

    def _do_crash_oracle_during_reconfig(self) -> None:
        """Crash one live oracle replica iff a reconfiguration is in
        flight (pending plan, cutover, or drain wait) — the oracle-side
        crash window of the protocol.  No-op when quiescent."""
        if not self._reconfig_in_flight():
            return
        oracle_group = getattr(self.system, "oracle_group", "oracle")
        group = self._group(oracle_group)
        for replica in group.replicas:
            if not replica.crashed:
                replica.crash()
                self._crashed_leaders.setdefault(oracle_group, []).append(
                    replica
                )
                return

    def _do_lose_cutover_msgs(self, duration: float, probability: float) -> None:
        """Loss burst aimed at the reconfiguration window: fires only when
        a reconfiguration is actually in flight, so a schedule can riddle
        cutover multicasts and drain announcements with loss without
        degrading the rest of the run."""
        if not self._reconfig_in_flight():
            return
        self.system.net.schedule_loss_burst(
            self.system.sim.now, duration, probability
        )

    # -- compartmentalized-stage fault points ---------------------------------

    def _do_crash_proxy_leader(self, group: str) -> None:
        """Crash an alive proxy leader of ``group``, preferring one with
        buffered (not yet forwarded) submissions so the fault lands on
        in-flight traffic when possible.  The victim joins the
        ``crash_leader`` ledger so a paired ``recover_leader`` brings it
        back.  No-op (still logged) when the group has no alive proxies."""
        proxies = [
            p for p in getattr(self._group(group), "proxies", ()) if not p.crashed
        ]
        if not proxies:
            return
        victim = max(proxies, key=lambda p: p.buffered)
        victim.crash()
        self._crashed_leaders.setdefault(group, []).append(victim)

    def _do_expire_lease(self, group: str) -> None:
        """Forcibly abandon ``group``'s leader lease at its current
        holder, as if the lease had expired: the holder stops answering
        read probes until it re-acquires a lease through the log, so
        in-flight local reads bounce to the ordered path.  No-op (still
        logged) when no replica holds a currently-valid lease."""
        from repro.compartment.lease import held_by

        for replica in self._group(group).replicas:
            if replica.crashed:
                continue
            lease = getattr(replica, "_lease", None)
            if lease is not None and held_by(lease, replica.name, replica.now):
                replica._abandon_lease()
                return

    # -- links --------------------------------------------------------------

    def _do_cut(self, a: str, b: str) -> None:
        self.system.net.cut(a, b)

    def _do_heal(self, a: str, b: str) -> None:
        self.system.net.heal(a, b)

    def _do_cut_oneway(self, src: str, dst: str) -> None:
        self.system.net.cut_oneway(src, dst)

    def _do_heal_oneway(self, src: str, dst: str) -> None:
        self.system.net.heal_oneway(src, dst)

    def _do_partition_groups(self, side_a, side_b) -> None:
        self.system.net.partition_groups(list(side_a), list(side_b))

    def _do_heal_groups(self, side_a, side_b) -> None:
        self.system.net.heal_groups(list(side_a), list(side_b))

    def _do_heal_all(self) -> None:
        self.system.net.heal_all()

    # -- traffic windows ----------------------------------------------------

    def _do_loss_burst(self, duration: float, probability: float) -> None:
        self.system.net.schedule_loss_burst(
            self.system.sim.now, duration, probability
        )

    def _do_delay_spike(self, duration: float, extra: float) -> None:
        self.system.net.schedule_delay_spike(
            self.system.sim.now, duration, extra
        )

    def _do_overload_burst(self, duration: float, factor: float) -> None:
        """Flash crowd: multiply every client's arrival rate for a
        window, then restore.  Multiplicative (not assignment) so
        overlapping bursts compose and unwind cleanly; only clients with
        a think time react — back-to-back closed-loop clients are already
        issuing as fast as replies allow."""
        clients = list(getattr(self.system, "clients", ()))
        for client in clients:
            client.load_factor *= factor

        def restore() -> None:
            for client in clients:
                client.load_factor /= factor

        self.system.sim.schedule(duration, restore)
