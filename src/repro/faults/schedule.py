"""Fault schedules: validated, time-sorted scripts of fault events.

A schedule is a list of :class:`FaultEvent` entries.  Each event has a
virtual-time ``at``, a ``kind`` from :data:`FAULT_KINDS`, and positional
``args`` whose shape depends on the kind:

==================  =============================================
kind                args
==================  =============================================
crash_replica       (group, index)
recover_replica     (group, index)
crash_acceptor      (group, index)
recover_acceptor    (group, index)
crash_leader        (group,)            — whoever leads at fire time
recover_leader      (group,)            — recovers what crash_leader hit
cut                 (actor_a, actor_b)
heal                (actor_a, actor_b)
cut_oneway          (src_actor, dst_actor)
heal_oneway         (src_actor, dst_actor)
partition_groups    (side_a, side_b)    — tuples of actor names
heal_groups         (side_a, side_b)
heal_all            ()
loss_burst          (duration, probability)
delay_spike         (duration, extra_latency)
overload_burst      (duration, factor)  — flash crowd: every client's
                                arrival rate is multiplied by ``factor``
                                for ``duration``, then restored
crash_mid_transfer  (group,)  — crash the replica currently downloading
                                a snapshot (no-op if none is)
crash_snapshot_provider (group,) — crash the replica currently serving a
                                snapshot download (falls back to a live
                                replica holding a checkpoint)
crash_mid_split     (group,)  — crash a partition replica while the
                                group has reconfiguration handoff state
                                in flight (in-transit nodes or a drain
                                in progress; no-op otherwise)
crash_oracle_during_reconfig () — crash an oracle replica while a
                                reconfiguration is pending or in flight
                                (no-op when the oracle is quiescent)
lose_cutover_msgs   (duration, probability) — loss burst that fires only
                                if a reconfiguration is in flight at
                                fire time (targets the cutover window)
crash_proxy_leader  (group,)  — crash an alive proxy leader of the group,
                                preferring one with buffered submissions
                                (no-op if the group has no alive proxies)
expire_lease        (group,)  — forcibly abandon the group's current
                                leader lease at the holder, as if it had
                                expired (no-op if no valid lease is held)
==================  =============================================

Schedules are plain data: they can be written by hand in tests, emitted
by :mod:`repro.faults.random_chaos`, or logged and replayed — the
injector applies them deterministically against the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: Number of positional args each fault kind expects.
_KIND_ARITY = {
    "crash_replica": 2,
    "recover_replica": 2,
    "crash_acceptor": 2,
    "recover_acceptor": 2,
    "crash_leader": 1,
    "recover_leader": 1,
    "cut": 2,
    "heal": 2,
    "cut_oneway": 2,
    "heal_oneway": 2,
    "partition_groups": 2,
    "heal_groups": 2,
    "heal_all": 0,
    "loss_burst": 2,
    "delay_spike": 2,
    "overload_burst": 2,
    "crash_mid_transfer": 1,
    "crash_snapshot_provider": 1,
    "crash_mid_split": 1,
    "crash_oracle_during_reconfig": 0,
    "lose_cutover_msgs": 2,
    "crash_proxy_leader": 1,
    "expire_lease": 1,
}

FAULT_KINDS = frozenset(_KIND_ARITY)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: apply ``kind(*args)`` at virtual time ``at``."""

    at: float
    kind: str
    args: tuple = ()

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if len(self.args) != _KIND_ARITY[self.kind]:
            raise ValueError(
                f"{self.kind} takes {_KIND_ARITY[self.kind]} args, "
                f"got {len(self.args)}: {self.args!r}"
            )
        # Validate traffic-fault arg domains here rather than letting a
        # bad value surface as a mid-run exception at fire time.
        if self.kind in (
            "loss_burst", "delay_spike", "overload_burst", "lose_cutover_msgs"
        ):
            duration, amount = self.args
            if not isinstance(duration, (int, float)) or not isinstance(
                amount, (int, float)
            ):
                raise ValueError(
                    f"{self.kind} args must be numeric, got {self.args!r}"
                )
            if duration <= 0:
                raise ValueError(
                    f"{self.kind} duration must be positive, got {duration}"
                )
            # Same domain as Network.loss_probability / schedule_loss_burst:
            # [0, 1).  Probability 1.0 is rejected here too, or a schedule
            # that validates at build time would raise mid-run at fire time.
            if self.kind in ("loss_burst", "lose_cutover_msgs") and not (
                0.0 <= amount < 1.0
            ):
                raise ValueError(
                    f"{self.kind} probability must be in [0, 1), got {amount}"
                )
            if self.kind == "delay_spike" and amount < 0:
                raise ValueError(
                    f"delay_spike extra latency must be non-negative, got {amount}"
                )
            if self.kind == "overload_burst" and amount <= 0:
                raise ValueError(
                    f"overload_burst factor must be positive, got {amount}"
                )

    def describe(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"t={self.at:.3f} {self.kind}({args})"


class FaultSchedule:
    """An ordered collection of fault events.

    Events are kept sorted by time (stable for equal times, preserving
    insertion order), so iteration yields the execution order.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self._events: list[FaultEvent] = []
        for event in events:
            self.add(event)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        if not isinstance(event, FaultEvent):
            raise TypeError(f"expected FaultEvent, got {type(event).__name__}")
        self._events.append(event)
        return self

    def at(self, time: float, kind: str, *args) -> "FaultSchedule":
        """Convenience builder: ``schedule.at(2.0, "crash_leader", "p0")``."""
        return self.add(FaultEvent(time, kind, tuple(args)))

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(sorted(self._events, key=lambda e: e.at))

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[FaultEvent]:
        return list(self)

    @property
    def horizon(self) -> float:
        """Time of the last event (0 for an empty schedule)."""
        return max((e.at for e in self._events), default=0.0)

    def describe(self) -> str:
        return "\n".join(event.describe() for event in self)

    def __repr__(self) -> str:
        return f"<FaultSchedule {len(self._events)} events, horizon {self.horizon:.3f}>"
