"""Coarsening phase: heavy-edge matching (HEM).

Vertices are visited in random order; each unmatched vertex is matched
with its unmatched neighbor of maximum edge weight.  Matched pairs
collapse into one coarse vertex whose weight is the sum of the pair's
weights, and parallel coarse edges accumulate.  HEM is the matching
scheme METIS uses; it shrinks the graph by ~40-50 % per level while
hiding heavy edges inside coarse vertices so they can never be cut.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class IntGraph:
    """Internal int-indexed graph: ``adj[u]`` maps neighbor -> weight."""

    adj: list
    vwgt: list

    @property
    def n(self) -> int:
        return len(self.adj)

    @property
    def total_vwgt(self) -> float:
        return sum(self.vwgt)

    def edge_cut(self, assignment: list[int]) -> float:
        cut = 0.0
        for u in range(self.n):
            pu = assignment[u]
            for v, w in self.adj[u].items():
                if u < v and pu != assignment[v]:
                    cut += w
        return cut


def coarsen(graph: IntGraph, rng: random.Random) -> tuple[IntGraph, list[int]]:
    """One level of heavy-edge-matching coarsening.

    Returns ``(coarse_graph, fine_to_coarse)`` where ``fine_to_coarse[u]``
    is the coarse vertex containing fine vertex ``u``.
    """
    n = graph.n
    match = [-1] * n
    order = list(range(n))
    rng.shuffle(order)

    for u in order:
        if match[u] != -1:
            continue
        best, best_w = -1, -1.0
        for v, w in graph.adj[u].items():
            if match[v] == -1 and w > best_w:
                best, best_w = v, w
        if best != -1:
            match[u] = best
            match[best] = u
        else:
            match[u] = u  # stays a singleton

    fine_to_coarse = [-1] * n
    next_id = 0
    for u in order:
        if fine_to_coarse[u] != -1:
            continue
        fine_to_coarse[u] = next_id
        partner = match[u]
        if partner != u and fine_to_coarse[partner] == -1:
            fine_to_coarse[partner] = next_id
        next_id += 1

    coarse_adj: list[dict[int, float]] = [dict() for _ in range(next_id)]
    coarse_vwgt = [0.0] * next_id
    for u in range(n):
        cu = fine_to_coarse[u]
        coarse_vwgt[cu] += graph.vwgt[u]
        row = coarse_adj[cu]
        for v, w in graph.adj[u].items():
            cv = fine_to_coarse[v]
            if cv != cu:
                row[cv] = row.get(cv, 0.0) + w
    return IntGraph(coarse_adj, coarse_vwgt), fine_to_coarse


def coarsen_to_size(
    graph: IntGraph, target: int, rng: random.Random, min_shrink: float = 0.9
) -> tuple[list[IntGraph], list[list[int]]]:
    """Repeatedly coarsen until ``target`` vertices or diminishing returns.

    Returns the graph hierarchy (finest first) and the per-level
    fine-to-coarse maps (``maps[i]`` projects level ``i`` onto ``i+1``).
    """
    levels = [graph]
    maps: list[list[int]] = []
    current = graph
    while current.n > target:
        coarse, mapping = coarsen(current, rng)
        if coarse.n >= current.n * min_shrink:
            break  # matching stalled (e.g. star graphs); stop coarsening
        levels.append(coarse)
        maps.append(mapping)
        current = coarse
    return levels, maps
