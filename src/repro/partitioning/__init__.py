"""Multilevel k-way graph partitioning (METIS substitute).

The paper's oracle shells out to METIS to partition the workload graph,
configured with a 20 % imbalance tolerance.  This package implements the
same multilevel scheme METIS uses — heavy-edge-matching coarsening, a
greedy region-growing initial partition, and boundary (FM-style)
refinement during uncoarsening — entirely in Python, with the identical
objective: minimize edge-cut subject to a vertex-weight balance
constraint.

Entry point: :func:`~repro.partitioning.metis.partition_graph`.
"""

from repro.partitioning.graph import WorkloadGraph, Partitioning
from repro.partitioning.metis import partition_graph, PartitionerStats
from repro.partitioning.quality import edge_cut, imbalance, part_weights

__all__ = [
    "WorkloadGraph",
    "Partitioning",
    "partition_graph",
    "PartitionerStats",
    "edge_cut",
    "imbalance",
    "part_weights",
]
