"""Workload graph and partitioning data structures.

The oracle builds a :class:`WorkloadGraph` on-the-fly from execution
hints: vertices are state variables (or districts/users, depending on
the application's granularity), vertex weights count accesses, and edge
weights count commands that touched both endpoints (§4.1).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional


class WorkloadGraph:
    """Undirected weighted graph with hashable vertex ids.

    Self-loops are ignored (a command touching one variable adds no
    dependency).  Adding an existing edge accumulates its weight, which is
    exactly how repeated co-accesses strengthen an affinity.
    """

    def __init__(self) -> None:
        self._adj: dict[Hashable, dict[Hashable, float]] = {}
        self._vertex_weight: dict[Hashable, float] = {}
        self._total_edge_weight = 0.0

    # -- construction -------------------------------------------------------

    def add_vertex(self, v: Hashable, weight: float = 1.0) -> None:
        """Add ``v`` or *increase* its weight if already present."""
        if v in self._adj:
            self._vertex_weight[v] += weight
        else:
            self._adj[v] = {}
            self._vertex_weight[v] = weight

    def ensure_vertex(self, v: Hashable, weight: float = 1.0) -> None:
        """Add ``v`` only if absent (does not touch existing weight)."""
        if v not in self._adj:
            self._adj[v] = {}
            self._vertex_weight[v] = weight

    def add_edge(self, u: Hashable, v: Hashable, weight: float = 1.0) -> None:
        """Add or strengthen the edge ``{u, v}``; creates missing vertices."""
        if u == v:
            return
        self.ensure_vertex(u)
        self.ensure_vertex(v)
        if v in self._adj[u]:
            self._adj[u][v] += weight
            self._adj[v][u] += weight
        else:
            self._adj[u][v] = weight
            self._adj[v][u] = weight
        self._total_edge_weight += weight

    def remove_vertex(self, v: Hashable) -> None:
        if v not in self._adj:
            raise KeyError(v)
        for neighbor, weight in self._adj[v].items():
            del self._adj[neighbor][v]
            self._total_edge_weight -= weight
        del self._adj[v]
        del self._vertex_weight[v]

    @classmethod
    def from_edges(cls, edges: Iterable[tuple]) -> "WorkloadGraph":
        """Build from (u, v) or (u, v, weight) tuples."""
        graph = cls()
        for edge in edges:
            if len(edge) == 2:
                graph.add_edge(edge[0], edge[1])
            else:
                graph.add_edge(edge[0], edge[1], edge[2])
        return graph

    # -- queries ----------------------------------------------------------------

    def __contains__(self, v: Hashable) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    @property
    def total_vertex_weight(self) -> float:
        return sum(self._vertex_weight.values())

    @property
    def total_edge_weight(self) -> float:
        return self._total_edge_weight

    def vertices(self) -> Iterator[Hashable]:
        return iter(self._adj)

    def neighbors(self, v: Hashable) -> dict[Hashable, float]:
        """Neighbor -> edge weight mapping (do not mutate)."""
        return self._adj[v]

    def vertex_weight(self, v: Hashable) -> float:
        return self._vertex_weight[v]

    def edge_weight(self, u: Hashable, v: Hashable) -> float:
        return self._adj.get(u, {}).get(v, 0.0)

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return v in self._adj.get(u, {})

    def degree(self, v: Hashable) -> int:
        return len(self._adj[v])

    def weighted_degree(self, v: Hashable) -> float:
        return sum(self._adj[v].values())

    def edges(self) -> Iterator[tuple[Hashable, Hashable, float]]:
        """Each undirected edge exactly once (by insertion-order tie)."""
        seen = set()
        for u in self._adj:
            for v, w in self._adj[u].items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    def scale_weights(self, factor: float, min_weight: float = 1e-6) -> None:
        """Multiply every vertex and edge weight by ``factor`` in place.

        The oracle uses this to *decay* the workload graph between
        repartitionings so that recent access patterns dominate the next
        plan — a graph that only ever accumulates would take ever longer
        to notice a workload shift (e.g. the Fig 6 celebrity event).
        Edges whose weight falls below ``min_weight`` are dropped.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        for v in self._vertex_weight:
            self._vertex_weight[v] = max(
                min_weight, self._vertex_weight[v] * factor
            )
        dead: list[tuple] = []
        self._total_edge_weight = 0.0
        for u in self._adj:
            for v in self._adj[u]:
                w = self._adj[u][v] * factor
                if w < min_weight:
                    dead.append((u, v))
                else:
                    self._adj[u][v] = w
                    self._total_edge_weight += w
        self._total_edge_weight /= 2.0
        seen = set()
        for u, v in dead:
            if (v, u) in seen:
                continue
            seen.add((u, v))
            self._adj[u].pop(v, None)
            self._adj[v].pop(u, None)

    def copy(self) -> "WorkloadGraph":
        clone = WorkloadGraph()
        for v, weight in self._vertex_weight.items():
            clone.ensure_vertex(v, weight)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone


class Partitioning:
    """An assignment of graph vertices to ``k`` parts plus its quality."""

    def __init__(self, assignment: dict, k: int, version: int = 0):
        self.assignment = dict(assignment)
        self.k = k
        self.version = version

    def part_of(self, v: Hashable) -> Optional[int]:
        return self.assignment.get(v)

    def members(self, part: int) -> list:
        return [v for v, p in self.assignment.items() if p == part]

    def __len__(self) -> int:
        return len(self.assignment)

    def edge_cut(self, graph: WorkloadGraph) -> float:
        """Total weight of edges crossing parts."""
        cut = 0.0
        for u, v, w in graph.edges():
            pu, pv = self.assignment.get(u), self.assignment.get(v)
            if pu is not None and pv is not None and pu != pv:
                cut += w
        return cut

    def part_weights(self, graph: WorkloadGraph) -> list[float]:
        weights = [0.0] * self.k
        for v, part in self.assignment.items():
            if v in graph:
                weights[part] += graph.vertex_weight(v)
        return weights

    def imbalance(self, graph: WorkloadGraph) -> float:
        """max part weight / ideal part weight - 1 (0 == perfectly balanced)."""
        weights = self.part_weights(graph)
        total = sum(weights)
        if total == 0:
            return 0.0
        ideal = total / self.k
        return max(weights) / ideal - 1.0
