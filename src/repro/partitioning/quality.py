"""Partition-quality metrics: edge-cut, part weights, imbalance.

Two families of helpers coexist here:

* The original index-keyed ones (:func:`part_weights`,
  :func:`imbalance`) take assignments mapping vertices to integer part
  indices — the partitioner's native output.
* The ``*_by_label`` variants accept assignments with *arbitrary
  hashable* part labels (the oracle's location map uses partition
  names), which is what the partition-health sampler consumes.
"""

from __future__ import annotations

from typing import Mapping

from repro.partitioning.graph import WorkloadGraph


def edge_cut(graph: WorkloadGraph, assignment: Mapping) -> float:
    """Total weight of edges whose endpoints are in different parts."""
    cut = 0.0
    for u, v, w in graph.edges():
        pu, pv = assignment.get(u), assignment.get(v)
        if pu is not None and pv is not None and pu != pv:
            cut += w
    return cut


def part_weights(graph: WorkloadGraph, assignment: Mapping, k: int) -> list[float]:
    """Per-part total vertex weight."""
    weights = [0.0] * k
    for v in graph.vertices():
        part = assignment.get(v)
        if part is not None:
            weights[part] += graph.vertex_weight(v)
    return weights


def imbalance(graph: WorkloadGraph, assignment: Mapping, k: int) -> float:
    """max part weight / ideal - 1; 0 means perfectly balanced."""
    weights = part_weights(graph, assignment, k)
    total = sum(weights)
    if total == 0:
        return 0.0
    return max(weights) / (total / k) - 1.0


def cut_fraction(graph: WorkloadGraph, assignment: Mapping) -> float:
    """Edge-cut as a fraction of the total edge weight (0..1)."""
    total = graph.total_edge_weight
    if total == 0:
        return 0.0
    return edge_cut(graph, assignment) / total


def part_weights_by_label(graph: WorkloadGraph, assignment: Mapping) -> dict:
    """Per-part total vertex weight for arbitrary part labels.

    Unlike :func:`part_weights`, parts are whatever hashable labels the
    assignment uses (partition *names* in the oracle's location map).
    Vertices absent from the assignment are ignored; labels present in
    the assignment but without any graph vertex do not appear — pass
    ``k`` to :func:`imbalance_by_label` to account for empty parts.
    """
    weights: dict = {}
    for v in graph.vertices():
        part = assignment.get(v)
        if part is not None:
            weights[part] = weights.get(part, 0.0) + graph.vertex_weight(v)
    return weights


def imbalance_by_label(graph: WorkloadGraph, assignment: Mapping, k: int) -> float:
    """max part weight / ideal - 1 over label-keyed parts; 0 = balanced.

    ``k`` is the number of parts the ideal is computed against (empty
    parts count: a 4-partition system with all weight on one partition
    is imbalanced by 3.0, not 0.0).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    weights = part_weights_by_label(graph, assignment)
    total = sum(weights.values())
    if total == 0:
        return 0.0
    return max(weights.values()) / (total / k) - 1.0


def weighted_hot_vertices(graph: WorkloadGraph, n: int) -> list[tuple]:
    """The ``n`` heaviest vertices as (vertex, weight) pairs.

    Sorted by descending vertex weight, ties broken deterministically by
    ``repr(vertex)`` so seeded runs always report the same hot set.  The
    partition-health sampler uses this for its hot-key top-N; it is also
    handy standalone ("which users are currently hot?").
    """
    if n <= 0:
        return []
    ranked = sorted(
        ((v, graph.vertex_weight(v)) for v in graph.vertices()),
        key=lambda pair: (-pair[1], repr(pair[0])),
    )
    return ranked[:n]
