"""Partition-quality metrics: edge-cut, part weights, imbalance."""

from __future__ import annotations

from typing import Mapping

from repro.partitioning.graph import WorkloadGraph


def edge_cut(graph: WorkloadGraph, assignment: Mapping) -> float:
    """Total weight of edges whose endpoints are in different parts."""
    cut = 0.0
    for u, v, w in graph.edges():
        pu, pv = assignment.get(u), assignment.get(v)
        if pu is not None and pv is not None and pu != pv:
            cut += w
    return cut


def part_weights(graph: WorkloadGraph, assignment: Mapping, k: int) -> list[float]:
    """Per-part total vertex weight."""
    weights = [0.0] * k
    for v in graph.vertices():
        part = assignment.get(v)
        if part is not None:
            weights[part] += graph.vertex_weight(v)
    return weights


def imbalance(graph: WorkloadGraph, assignment: Mapping, k: int) -> float:
    """max part weight / ideal - 1; 0 means perfectly balanced."""
    weights = part_weights(graph, assignment, k)
    total = sum(weights)
    if total == 0:
        return 0.0
    return max(weights) / (total / k) - 1.0


def cut_fraction(graph: WorkloadGraph, assignment: Mapping) -> float:
    """Edge-cut as a fraction of the total edge weight (0..1)."""
    total = graph.total_edge_weight
    if total == 0:
        return 0.0
    return edge_cut(graph, assignment) / total
