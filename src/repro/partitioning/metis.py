"""Multilevel k-way partitioner driver (the METIS equivalent).

``partition_graph(graph, k)`` runs the full multilevel pipeline:

1. map vertex ids to dense ints,
2. coarsen with heavy-edge matching until ~max(20·k, 120) vertices,
3. greedy-graph-growing initial k-way partition of the coarsest graph,
4. project back level by level, refining the boundary at each level,
5. final rebalance pass enforcing the imbalance ceiling (default 20 %,
   the METIS configuration the paper uses).

Deterministic given ``seed``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.partitioning.coarsen import IntGraph, coarsen_to_size
from repro.partitioning.graph import Partitioning, WorkloadGraph
from repro.partitioning.initial import greedy_growing
from repro.partitioning.refine import rebalance, refine


@dataclass
class PartitionerStats:
    """Diagnostics from one partitioner run (feeds the Fig 7 benchmark)."""

    n_vertices: int = 0
    n_edges: int = 0
    levels: int = 0
    coarsest_size: int = 0
    initial_cut: float = 0.0
    final_cut: float = 0.0
    elapsed_seconds: float = 0.0
    peak_coarse_vertices: int = 0


def partition_graph(
    graph: WorkloadGraph,
    k: int,
    imbalance: float = 0.20,
    seed: int = 0,
    refine_passes: int = 8,
    restarts: int = 1,
    stats: Optional[PartitionerStats] = None,
) -> Partitioning:
    """Partition ``graph`` into ``k`` parts minimizing edge-cut subject to
    a ``(1 + imbalance)`` vertex-weight ceiling per part.

    ``restarts`` runs the multilevel pipeline that many times with
    different seeds and keeps the best feasible cut (METIS's ``ncuts``) —
    important on small graphs where a single greedy-grown start can land
    in a poor local optimum.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if restarts < 1:
        raise ValueError("restarts must be >= 1")
    started = time.perf_counter()
    ids = list(graph.vertices())
    if not ids:
        return Partitioning({}, k)
    if k == 1:
        return Partitioning({v: 0 for v in ids}, 1)

    index = {v: i for i, v in enumerate(ids)}
    adj: list[dict[int, float]] = [dict() for _ in ids]
    for u, v, w in graph.edges():
        iu, iv = index[u], index[v]
        adj[iu][iv] = w
        adj[iv][iu] = w
    vwgt = [graph.vertex_weight(v) for v in ids]
    int_graph = IntGraph(adj, vwgt)

    best: Optional[list[int]] = None
    best_key: Optional[tuple] = None
    ideal = int_graph.total_vwgt / k
    for attempt in range(restarts):
        assignment, run_stats = _multilevel_once(
            int_graph, k, imbalance, seed + attempt, refine_passes
        )
        cut = int_graph.edge_cut(assignment)
        weights = [0.0] * k
        for u in range(int_graph.n):
            weights[assignment[u]] += int_graph.vwgt[u]
        over = max(weights) / ideal - 1.0 if ideal else 0.0
        feasible = over <= imbalance + 1e-9
        key = (not feasible, cut)
        if best_key is None or key < best_key:
            best, best_key = assignment, key
            if stats is not None:
                stats.levels = run_stats["levels"]
                stats.coarsest_size = run_stats["coarsest_size"]
                stats.initial_cut = run_stats["initial_cut"]
                stats.peak_coarse_vertices = run_stats["peak"]

    if stats is not None:
        stats.n_vertices = len(ids)
        stats.n_edges = graph.num_edges
        stats.final_cut = int_graph.edge_cut(best)
        stats.elapsed_seconds = time.perf_counter() - started

    return Partitioning({ids[i]: best[i] for i in range(len(ids))}, k)


def _multilevel_once(
    int_graph: IntGraph, k: int, imbalance: float, seed: int, refine_passes: int
) -> tuple[list[int], dict]:
    """One multilevel V-cycle: coarsen, initial partition, uncoarsen+refine."""
    rng = random.Random(seed)
    target = max(20 * k, 120)
    levels, maps = coarsen_to_size(int_graph, target, rng)
    coarsest = levels[-1]

    assignment = greedy_growing(coarsest, k, rng)
    initial_cut = coarsest.edge_cut(assignment)
    assignment = refine(coarsest, assignment, k, imbalance, refine_passes)
    assignment = rebalance(coarsest, assignment, k, imbalance)

    for level_index in range(len(maps) - 1, -1, -1):
        fine = levels[level_index]
        mapping = maps[level_index]
        fine_assignment = [assignment[mapping[u]] for u in range(fine.n)]
        assignment = refine(fine, fine_assignment, k, imbalance, refine_passes)
    assignment = rebalance(int_graph, assignment, k, imbalance)
    run_stats = {
        "levels": len(levels),
        "coarsest_size": coarsest.n,
        "initial_cut": initial_cut,
        "peak": sum(level.n for level in levels),
    }
    return assignment, run_stats


def random_partition(
    graph: WorkloadGraph, k: int, seed: int = 0
) -> Partitioning:
    """Uniform random placement — the paper's starting condition for
    DynaStar and the weakest baseline in the ablations."""
    rng = random.Random(seed)
    return Partitioning({v: rng.randrange(k) for v in graph.vertices()}, k)


def hash_partition(graph: WorkloadGraph, k: int) -> Partitioning:
    """Deterministic hash placement (consistent-hashing-style baseline)."""
    return Partitioning({v: hash(v) % k for v in graph.vertices()}, k)
