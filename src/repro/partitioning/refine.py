"""Refinement phase: greedy k-way boundary refinement (FM-style).

Each pass scans the boundary vertices and greedily applies the move with
positive cut gain (or zero gain that improves balance) that keeps every
part under its weight ceiling ``ideal * (1 + imbalance)``.  Passes repeat
until no move applies or ``max_passes`` is hit.  Refinement never
increases the edge-cut — a property the test suite checks — because only
non-negative-gain moves are applied, and zero-gain moves are capped per
pass to guarantee termination.
"""

from __future__ import annotations

from repro.partitioning.coarsen import IntGraph


def refine(
    graph: IntGraph,
    assignment: list[int],
    k: int,
    imbalance: float = 0.2,
    max_passes: int = 8,
) -> list[int]:
    """Improve ``assignment`` in place (also returned).

    Boundary-tracked: only vertices on the cut boundary (plus neighbors of
    freshly moved vertices) are examined each pass, which keeps refinement
    near-linear in the boundary size rather than the graph size.
    """
    n = graph.n
    if k <= 1 or n == 0:
        return assignment
    total = graph.total_vwgt
    ideal = total / k
    ceiling = ideal * (1.0 + imbalance)

    part_weight = [0.0] * k
    for u in range(n):
        part_weight[assignment[u]] += graph.vwgt[u]

    adj = graph.adj
    vwgt = graph.vwgt
    candidates = set()
    for u in range(n):
        pu = assignment[u]
        for v in adj[u]:
            if assignment[v] != pu:
                candidates.add(u)
                break

    for _ in range(max_passes):
        if not candidates:
            break
        moved = 0
        zero_gain_budget = n // 10 + 1
        next_candidates: set[int] = set()
        for u in sorted(candidates):  # sorted for determinism
            home = assignment[u]
            # Connectivity of u to each adjacent part.
            conn: dict[int, float] = {}
            for v, w in adj[u].items():
                pv = assignment[v]
                conn[pv] = conn.get(pv, 0.0) + w
            internal = conn.get(home, 0.0)
            best_part, best_gain = home, 0.0
            for part, weight in conn.items():
                if part == home:
                    continue
                gain = weight - internal
                if gain > best_gain:
                    best_part, best_gain = part, gain
            if best_part == home:
                # Consider a zero-gain balance-improving move.
                if zero_gain_budget > 0 and part_weight[home] > ceiling:
                    lightest = min(range(k), key=lambda p: part_weight[p])
                    if (
                        lightest != home
                        and conn.get(lightest, 0.0) >= internal
                        and part_weight[lightest] + vwgt[u] < part_weight[home]
                    ):
                        best_part = lightest
                        zero_gain_budget -= 1
                    else:
                        continue
                else:
                    continue
            w_u = vwgt[u]
            if part_weight[best_part] + w_u > ceiling and part_weight[
                best_part
            ] + w_u >= part_weight[home]:
                continue  # move would (further) unbalance
            assignment[u] = best_part
            part_weight[home] -= w_u
            part_weight[best_part] += w_u
            moved += 1
            next_candidates.add(u)
            next_candidates.update(adj[u])
        if moved == 0:
            break
        candidates = next_candidates
    return assignment


def rebalance(
    graph: IntGraph, assignment: list[int], k: int, imbalance: float = 0.2
) -> list[int]:
    """Force every part under its ceiling by evicting the cheapest-to-move
    vertices from overweight parts.  Used when greedy growing overshoots
    on coarse graphs with huge vertex weights."""
    n = graph.n
    total = graph.total_vwgt
    ideal = total / k
    ceiling = ideal * (1.0 + imbalance)
    part_weight = [0.0] * k
    members: list[list[int]] = [[] for _ in range(k)]
    for u in range(n):
        part_weight[assignment[u]] += graph.vwgt[u]
        members[assignment[u]].append(u)

    for part in range(k):
        if part_weight[part] <= ceiling:
            continue
        # Evict lowest weighted-degree (least connected) vertices first.
        order = sorted(members[part], key=lambda u: sum(graph.adj[u].values()))
        for u in order:
            if part_weight[part] <= ceiling:
                break
            lightest = min(range(k), key=lambda p: part_weight[p])
            if lightest == part:
                break
            w_u = graph.vwgt[u]
            if part_weight[lightest] + w_u > ceiling and k > 1:
                # Even the lightest part cannot take it under the ceiling;
                # move anyway only if it strictly improves the maximum.
                if part_weight[lightest] + w_u >= part_weight[part]:
                    continue
            assignment[u] = lightest
            part_weight[part] -= w_u
            part_weight[lightest] += w_u
    return assignment
