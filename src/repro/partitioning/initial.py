"""Initial partitioning of the coarsest graph: greedy graph growing.

Parts 0..k-2 are grown one at a time from a random unassigned seed,
always absorbing the unassigned vertex with the strongest connection to
the growing region, until the region reaches its weight target; the
remaining vertices form the last part.  This is the GGGP scheme of
METIS, run directly k-way (the coarsest graph is small, so quality is
recovered by refinement during uncoarsening).
"""

from __future__ import annotations

import heapq
import random

from repro.partitioning.coarsen import IntGraph


def greedy_growing(graph: IntGraph, k: int, rng: random.Random) -> list[int]:
    """Return ``assignment[u] in 0..k-1`` for every vertex of ``graph``."""
    n = graph.n
    if k <= 1:
        return [0] * n
    if k >= n:
        # One vertex per part, heaviest vertices spread first.
        order = sorted(range(n), key=lambda u: -graph.vwgt[u])
        assignment = [0] * n
        for i, u in enumerate(order):
            assignment[u] = i % k
        return assignment

    total = graph.total_vwgt
    target = total / k
    assignment = [-1] * n
    unassigned = n

    for part in range(k - 1):
        # Seed: random unassigned vertex.
        seed = _pick_unassigned(assignment, rng, n)
        if seed is None:
            break
        region_weight = 0.0
        # Max-heap of (-connectivity, tiebreak, vertex).
        heap: list[tuple[float, int, int]] = [(0.0, seed, seed)]
        gains: dict[int, float] = {seed: 0.0}
        while heap and region_weight < target:
            neg_gain, _, u = heapq.heappop(heap)
            if assignment[u] != -1 or gains.get(u, None) != -neg_gain:
                continue
            assignment[u] = part
            unassigned -= 1
            region_weight += graph.vwgt[u]
            gains.pop(u, None)
            for v, w in graph.adj[u].items():
                if assignment[v] == -1:
                    new_gain = gains.get(v, 0.0) + w
                    gains[v] = new_gain
                    heapq.heappush(heap, (-new_gain, v, v))
            if not heap and region_weight < target:
                # Region exhausted a component; jump to a fresh seed.
                seed2 = _pick_unassigned(assignment, rng, n)
                if seed2 is None:
                    break
                gains[seed2] = 0.0
                heapq.heappush(heap, (0.0, seed2, seed2))

    last = k - 1
    for u in range(n):
        if assignment[u] == -1:
            assignment[u] = last
    return assignment


def _pick_unassigned(assignment: list[int], rng: random.Random, n: int):
    """A uniformly random unassigned vertex, or ``None``."""
    candidates = [u for u in range(n) if assignment[u] == -1]
    if not candidates:
        return None
    return candidates[rng.randrange(len(candidates))]
