"""Checkpoint records and their canonical wire representation.

A checkpoint is the full application state of one replica at a log
*watermark* W: the deterministic state reached after delivering exactly
instances ``[0, W)``.  Each layer of the replica stack (Paxos learner,
multicast Skeen machine, partition server / oracle) contributes named
*sections* — plain dicts — via its ``capture_app_state`` override, and
reinstalls them via ``install_app_state``.

For chunked transfer a record is flattened into a canonical, sorted
list of ``(section, key, value)`` items.  The ordering is by
``(section, repr(key))`` — never by hash iteration order — so two
processes (or two replicas) flatten the same state into byte-identical
item sequences, which keeps seeded runs deterministic and lets a
requester resume a transfer at any item offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class CheckpointRecord:
    """One replica's state at log watermark ``watermark``.

    ``sections`` maps a section name (e.g. ``"server.store"``) to a dict
    of that section's entries.  Values are owned by the record: capture
    methods deep-copy anything mutable before handing it over.
    """

    watermark: int
    sections: dict

    def __hash__(self):  # pragma: no cover - only identity needed
        return id(self)

    @property
    def total_items(self) -> int:
        return sum(len(entries) for entries in self.sections.values())


def flatten_sections(sections: dict) -> list[tuple]:
    """Canonical ``[(section, key, value), ...]`` item list.

    Sections sort by name, entries within a section by ``repr(key)``;
    the result is the unit sequence chunked over the network.
    """
    items: list[tuple] = []
    for name in sorted(sections):
        entries = sections[name]
        for key in sorted(entries, key=repr):
            items.append((name, key, entries[key]))
    return items


def assemble_sections(items) -> dict:
    """Rebuild the ``sections`` dict from flattened items (any order)."""
    sections: dict = {}
    for name, key, value in items:
        sections.setdefault(name, {})[key] = value
    return sections
