"""Snapshot-transfer helpers: adaptive chunk sizing and fetch state.

Chunk sizing follows the idea of Chiba et al. ("A State Transfer Method
That Adapts to Network Bandwidth Variations in Geographic SMR"): rather
than a fixed chunk size, the requester measures the round-trip delay of
every chunk and steers the next chunk's size toward a target per-chunk
delay — fast links carry large chunks (few round trips), slow or
congested links fall back to small chunks (fast retransmission, little
wasted work per loss).  The adjustment is multiplicative with a
smoothing clamp (at most doubling or halving per step) so one outlier
RTT cannot whipsaw the transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class AdaptiveChunker:
    """Chooses how many snapshot items to request per chunk.

    ``observe(rtt)`` feeds back the measured request->chunk delay; the
    next :attr:`count` is scaled by ``target_rtt / rtt``, clamped to
    [0.5x, 2x] per observation and to [min_count, max_count] overall.
    Deterministic: the same RTT sequence always yields the same sizes.
    """

    def __init__(
        self,
        initial: int = 8,
        min_count: int = 1,
        max_count: int = 128,
        target_rtt: float = 0.05,
    ):
        if not min_count <= initial <= max_count:
            raise ValueError("initial chunk size outside [min, max]")
        if target_rtt <= 0:
            raise ValueError("target_rtt must be positive")
        self.count = initial
        self.min_count = min_count
        self.max_count = max_count
        self.target_rtt = target_rtt

    def observe(self, rtt: float) -> int:
        """Record one chunk's RTT; returns the next chunk size."""
        if rtt <= 0:
            factor = 2.0
        else:
            factor = min(2.0, max(0.5, self.target_rtt / rtt))
        scaled = int(self.count * factor)
        self.count = max(self.min_count, min(self.max_count, max(1, scaled)))
        return self.count

    def shrink(self) -> int:
        """Halve the chunk size (after a timeout/retransmission)."""
        self.count = max(self.min_count, self.count // 2)
        return self.count


@dataclass
class SnapshotFetch:
    """Volatile state of one in-progress snapshot download.

    Lives on the recovering replica from the first ``SnapshotRequest``
    broadcast until the snapshot is installed (or the fetch is abandoned
    and restarted against another provider under a new epoch).
    """

    epoch: int
    chunker: AdaptiveChunker
    provider: Optional[str] = None
    snapshot_id: str = ""
    watermark: int = -1
    total_items: int = 0
    offset: int = 0
    items: list = field(default_factory=list)
    requested_at: float = 0.0
    timeouts: int = 0
    chunks: int = 0

    @property
    def discovering(self) -> bool:
        """True while no provider has answered with a SnapshotMeta yet."""
        return self.provider is None

    @property
    def complete(self) -> bool:
        return self.provider is not None and self.offset >= self.total_items
