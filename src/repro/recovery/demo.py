"""Seeded chaos run that must end in a snapshot-based recovery.

CI runs this as a smoke check of the whole checkpoint → truncate →
snapshot-transfer pipeline on a live system::

    PYTHONPATH=src python -m repro.recovery.demo --seed 3

A partition replica crashes at t=0.05 while a write burst keeps the
group busy; with checkpoints every 4 instances the group compacts its
log far past the crash point, so the scripted recovery at t=4 can only
succeed through a peer snapshot.  The process exits nonzero unless at
least one snapshot recovery completed, replicas converged, and the
client-observed history is linearizable.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import ScriptedWorkload
from repro.faults import ChaosInjector, FaultSchedule
from repro.sim import ConstantLatency
from repro.smr import Command, History, KeyValueApp, check_linearizable


def run(seed: int, writes: int = 40, interval: int = 4) -> int:
    app = KeyValueApp({f"k{i}": i for i in range(8)})
    system = DynaStarSystem(
        app,
        SystemConfig(
            n_partitions=2,
            seed=seed,
            latency=ConstantLatency(0.001),
            repartition_enabled=False,
            checkpoint_interval=interval,
            tracing=True,
        ),
    )
    part = system.initial_assignment["k0"]
    schedule = (
        FaultSchedule()
        .at(0.05, "crash_replica", part, 1)
        .at(4.0, "recover_replica", part, 1)
    )
    ChaosInjector(system, schedule).arm()

    history = History()
    cmds = [Command(f"c:{i}", "write", ("k0", i)) for i in range(writes)]
    client = system.add_client(ScriptedWorkload(cmds), history=history)
    system.run(until=60.0)

    recoveries = system.monitor.labeled_counters("snapshot_recoveries").get(part, 0)
    checkpoints = system.monitor.labeled_counters("checkpoint").get(part, 0)
    truncations = system.monitor.labeled_counters("log_truncated").get(part, 0)
    replicas = system.servers(part)
    converged = dict(replicas[0].store.items()) == dict(replicas[1].store.items())
    linearizable = check_linearizable(history, system.app)

    print(
        f"seed={seed} completed={client.completed}/{writes} "
        f"checkpoints={checkpoints} truncations={truncations} "
        f"snapshot_recoveries={recoveries} converged={converged} "
        f"linearizable={linearizable}"
    )
    failures = []
    if client.completed != writes:
        failures.append("client did not complete every command")
    if recoveries < 1:
        failures.append("no snapshot-based recovery happened")
    if truncations < 1:
        failures.append("the log was never truncated")
    if not converged:
        failures.append("replica stores diverged")
    if not linearizable:
        failures.append("history is not linearizable")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--writes", type=int, default=40)
    parser.add_argument("--interval", type=int, default=4)
    args = parser.parse_args(argv)
    return run(args.seed, args.writes, args.interval)


if __name__ == "__main__":
    sys.exit(main())
