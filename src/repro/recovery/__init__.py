"""Checkpointing, log compaction, and snapshot-based state transfer.

The memory half of the crash-recovery story (the fault-injection half
lives in :mod:`repro.faults`): replicas periodically checkpoint their
application state at decided-instance watermarks, gossip the watermarks
inside the group, truncate the Paxos log (replicas *and* acceptors)
below the group-wide minimum, and serve chunked, resumable snapshot
transfers to replicas that restart behind the truncation point.
"""

from repro.recovery.checkpoint import (
    CheckpointRecord,
    assemble_sections,
    flatten_sections,
)
from repro.recovery.transfer import AdaptiveChunker, SnapshotFetch

__all__ = [
    "CheckpointRecord",
    "assemble_sections",
    "flatten_sections",
    "AdaptiveChunker",
    "SnapshotFetch",
]
