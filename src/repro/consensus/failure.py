"""Failure-injection helpers for consensus and end-to-end tests."""

from __future__ import annotations

from typing import Iterable

from repro.sim.events import Simulator
from repro.consensus.group import PaxosGroup


def crash_leader_at(sim: Simulator, group: PaxosGroup, time: float) -> None:
    """Crash whichever replica leads ``group`` at virtual time ``time``."""

    def do_crash() -> None:
        leader = group.leader
        if leader is not None:
            leader.crash()

    sim.schedule_at(time, do_crash)


def crash_replica_at(
    sim: Simulator, group: PaxosGroup, index: int, time: float
) -> None:
    """Crash replica ``index`` of ``group`` at virtual time ``time``."""
    sim.schedule_at(time, group.replicas[index].crash)


def crash_acceptor_at(
    sim: Simulator, group: PaxosGroup, index: int, time: float
) -> None:
    """Crash acceptor ``index`` of ``group`` at virtual time ``time``."""
    sim.schedule_at(time, group.acceptors[index].crash)


def crash_minority_acceptors_at(
    sim: Simulator, group: PaxosGroup, time: float
) -> None:
    """Crash as many acceptors as possible while keeping a quorum alive."""
    minority = (len(group.acceptors) - 1) // 2
    for index in range(minority):
        crash_acceptor_at(sim, group, index, time)


def recover_replica_at(
    sim: Simulator, group: PaxosGroup, index: int, time: float
) -> None:
    """Recover replica ``index`` of ``group`` at virtual time ``time``."""
    sim.schedule_at(time, group.replicas[index].recover)


def recover_acceptor_at(
    sim: Simulator, group: PaxosGroup, index: int, time: float
) -> None:
    """Recover acceptor ``index`` of ``group`` at virtual time ``time``."""
    sim.schedule_at(time, group.acceptors[index].recover)


def crash_leader_then_recover(
    sim: Simulator, group: PaxosGroup, at: float, recover_at: float
) -> None:
    """Crash the current leader at ``at`` and recover that same replica at
    ``recover_at`` (whichever replica happens to lead when the crash fires)."""
    if recover_at <= at:
        raise ValueError("recover_at must be after the crash time")
    crashed: list = []

    def do_crash() -> None:
        leader = group.leader
        if leader is not None:
            leader.crash()
            crashed.append(leader)

    def do_recover() -> None:
        for replica in crashed:
            replica.recover()

    sim.schedule_at(at, do_crash)
    sim.schedule_at(recover_at, do_recover)


def schedule_crashes(sim: Simulator, crashes: Iterable[tuple[float, object]]) -> None:
    """Schedule ``actor.crash()`` for each (time, actor) pair."""
    for time, actor in crashes:
        sim.schedule_at(time, actor.crash)
