"""Failure-injection helpers for consensus and end-to-end tests."""

from __future__ import annotations

from typing import Iterable

from repro.sim.events import Simulator
from repro.consensus.group import PaxosGroup


def crash_leader_at(sim: Simulator, group: PaxosGroup, time: float) -> None:
    """Crash whichever replica leads ``group`` at virtual time ``time``."""

    def do_crash() -> None:
        leader = group.leader
        if leader is not None:
            leader.crash()

    sim.schedule_at(time, do_crash)


def crash_replica_at(
    sim: Simulator, group: PaxosGroup, index: int, time: float
) -> None:
    """Crash replica ``index`` of ``group`` at virtual time ``time``."""
    sim.schedule_at(time, group.replicas[index].crash)


def crash_acceptor_at(
    sim: Simulator, group: PaxosGroup, index: int, time: float
) -> None:
    """Crash acceptor ``index`` of ``group`` at virtual time ``time``."""
    sim.schedule_at(time, group.acceptors[index].crash)


def crash_minority_acceptors_at(
    sim: Simulator, group: PaxosGroup, time: float
) -> None:
    """Crash as many acceptors as possible while keeping a quorum alive."""
    minority = (len(group.acceptors) - 1) // 2
    for index in range(minority):
        crash_acceptor_at(sim, group, index, time)


def schedule_crashes(sim: Simulator, crashes: Iterable[tuple[float, object]]) -> None:
    """Schedule ``actor.crash()`` for each (time, actor) pair."""
    for time, actor in crashes:
        sim.schedule_at(time, actor.crash)
