"""Multi-Paxos message types.

Ballots are plain integers; the leader for ballot ``b`` is replica
``b % n_replicas`` (round-robin), which gives deterministic, livelock-free
leader succession under partial synchrony.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True, slots=True)
class Submit:
    """Ask a group to order ``value``.  ``value.uid`` must be unique."""

    value: Any


@dataclass(frozen=True, slots=True)
class NoOp:
    """Filler value used by a new leader to close gap instances."""

    uid: str = "noop"


@dataclass(frozen=True, slots=True)
class Prepare:
    """Phase 1a: new leader claims ``ballot`` for all instances >= low."""

    ballot: int
    low: int


@dataclass(frozen=True, slots=True)
class Promise:
    """Phase 1b: acceptor's promise plus previously accepted values.

    ``accepted`` maps instance -> (vballot, value) for every instance >= low
    the acceptor has accepted a value in.
    """

    ballot: int
    accepted: dict

    def __hash__(self):  # pragma: no cover - only identity needed
        return id(self)


@dataclass(frozen=True, slots=True)
class Accept:
    """Phase 2a: leader asks acceptors to accept ``value`` in ``instance``."""

    ballot: int
    instance: int
    value: Any


@dataclass(frozen=True, slots=True)
class Accepted:
    """Phase 2b: acceptor accepted (ballot, instance, value)."""

    ballot: int
    instance: int


@dataclass(frozen=True, slots=True)
class Decision:
    """Learner notification: ``value`` was chosen in ``instance``."""

    instance: int
    value: Any


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Leader liveness beacon carrying the highest decided instance."""

    ballot: int
    max_decided: int


@dataclass(frozen=True, slots=True)
class LearnRequest:
    """Ask a peer replica to resend decisions for instances in [low, high]."""

    low: int
    high: int


@dataclass(frozen=True, slots=True)
class Nack:
    """Acceptor rejection telling the proposer about a higher ballot."""

    ballot: int
    instance: Optional[int] = None


@dataclass(frozen=True, slots=True)
class RecoverQuery:
    """Recovering replica asks acceptors for their accepted state.

    ``epoch`` distinguishes recovery rounds so stale replies are ignored;
    ``low`` is the first instance the replica is missing.
    """

    epoch: int
    low: int


@dataclass(frozen=True, slots=True)
class RecoverInfo:
    """Acceptor reply to :class:`RecoverQuery`.

    ``accepted`` maps instance -> (vballot, value) for every instance
    >= the query's ``low`` the acceptor has accepted a value in.
    ``truncated_below`` is the acceptor's log-compaction floor: accepted
    state below it was discarded, so a replica whose ``low`` falls under
    it cannot re-sync from acceptors and must fetch a snapshot instead.
    """

    epoch: int
    accepted: dict
    truncated_below: int = 0

    def __hash__(self):  # pragma: no cover - only identity needed
        return id(self)


# -- checkpointing / log compaction / snapshot transfer ---------------------


@dataclass(frozen=True, slots=True)
class WatermarkNotice:
    """Replica -> group peers: "I hold a checkpoint at ``watermark``".

    The group truncation point is the minimum over the *fresh* watermarks
    (peers silent longer than the TTL are presumed crashed and excluded,
    or one dead replica would pin the whole group's memory forever).
    """

    watermark: int


@dataclass(frozen=True, slots=True)
class TruncateLog:
    """Replica -> acceptor: discard accepted state below ``watermark``."""

    watermark: int


@dataclass(frozen=True, slots=True)
class LogTruncated:
    """Peer reply to a LearnRequest for instances below its log floor:
    the suffix the requester wants no longer exists; it must fetch a
    snapshot at (or above) ``watermark`` instead."""

    watermark: int


@dataclass(frozen=True, slots=True)
class SnapshotRequest:
    """Recovering replica -> group peers: offer me a snapshot.

    ``epoch`` tags one discovery round; stale SnapshotMeta replies from
    an earlier round (or an abandoned provider) are ignored.
    """

    epoch: int


@dataclass(frozen=True, slots=True)
class SnapshotMeta:
    """Provider reply: snapshot ``snapshot_id`` at ``watermark`` with
    ``total_items`` flattened state items is available for download."""

    epoch: int
    snapshot_id: str
    watermark: int
    total_items: int


@dataclass(frozen=True, slots=True)
class SnapshotChunkRequest:
    """Requester -> provider: send ``count`` items starting at ``offset``.

    Retransmitted verbatim on timeout, which makes the transfer
    resumable: the provider serves from the immutable flattened item
    list, so any (offset, count) window can be re-requested.
    """

    snapshot_id: str
    offset: int
    count: int


@dataclass(frozen=True, slots=True)
class SnapshotChunk:
    """One window of flattened checkpoint items."""

    snapshot_id: str
    watermark: int
    offset: int
    items: tuple
    total_items: int

    def __hash__(self):  # pragma: no cover - only identity needed
        return id(self)
