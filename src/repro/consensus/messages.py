"""Multi-Paxos message types.

Ballots are plain integers; the leader for ballot ``b`` is replica
``b % n_replicas`` (round-robin), which gives deterministic, livelock-free
leader succession under partial synchrony.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class Submit:
    """Ask a group to order ``value``.  ``value.uid`` must be unique."""

    value: Any


@dataclass(frozen=True)
class NoOp:
    """Filler value used by a new leader to close gap instances."""

    uid: str = "noop"


@dataclass(frozen=True)
class Prepare:
    """Phase 1a: new leader claims ``ballot`` for all instances >= low."""

    ballot: int
    low: int


@dataclass(frozen=True)
class Promise:
    """Phase 1b: acceptor's promise plus previously accepted values.

    ``accepted`` maps instance -> (vballot, value) for every instance >= low
    the acceptor has accepted a value in.
    """

    ballot: int
    accepted: dict

    def __hash__(self):  # pragma: no cover - only identity needed
        return id(self)


@dataclass(frozen=True)
class Accept:
    """Phase 2a: leader asks acceptors to accept ``value`` in ``instance``."""

    ballot: int
    instance: int
    value: Any


@dataclass(frozen=True)
class Accepted:
    """Phase 2b: acceptor accepted (ballot, instance, value)."""

    ballot: int
    instance: int


@dataclass(frozen=True)
class Decision:
    """Learner notification: ``value`` was chosen in ``instance``."""

    instance: int
    value: Any


@dataclass(frozen=True)
class Heartbeat:
    """Leader liveness beacon carrying the highest decided instance."""

    ballot: int
    max_decided: int


@dataclass(frozen=True)
class LearnRequest:
    """Ask a peer replica to resend decisions for instances in [low, high]."""

    low: int
    high: int


@dataclass(frozen=True)
class Nack:
    """Acceptor rejection telling the proposer about a higher ballot."""

    ballot: int
    instance: Optional[int] = None


@dataclass(frozen=True)
class RecoverQuery:
    """Recovering replica asks acceptors for their accepted state.

    ``epoch`` distinguishes recovery rounds so stale replies are ignored;
    ``low`` is the first instance the replica is missing.
    """

    epoch: int
    low: int


@dataclass(frozen=True)
class RecoverInfo:
    """Acceptor reply to :class:`RecoverQuery`.

    ``accepted`` maps instance -> (vballot, value) for every instance
    >= the query's ``low`` the acceptor has accepted a value in.
    """

    epoch: int
    accepted: dict

    def __hash__(self):  # pragma: no cover - only identity needed
        return id(self)
