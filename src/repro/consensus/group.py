"""Replica-group construction helpers.

A :class:`PaxosGroup` wires together the acceptors and replicas of one
group (one partition, or the oracle) on a network, mirroring the paper's
deployment of 2 replicas + 3 acceptors per partition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.network import Network
from repro.consensus.messages import Submit
from repro.consensus.paxos import Acceptor, PaxosReplica, ReplicaConfig


@dataclass
class GroupConfig:
    """Shape and tuning of a replica group."""

    n_replicas: int = 2
    n_acceptors: int = 3
    replica: ReplicaConfig = field(default_factory=ReplicaConfig)


ReplicaFactory = Callable[..., PaxosReplica]


class PaxosGroup:
    """One replicated group: its acceptors, replicas, and submission API.

    ``replica_factory`` lets higher layers (the atomic multicast, DynaStar
    servers) substitute a :class:`PaxosReplica` subclass; it receives the
    same keyword arguments as the base constructor.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        config: Optional[GroupConfig] = None,
        replica_factory: Optional[ReplicaFactory] = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
        rng: Optional[random.Random] = None,
    ):
        self.name = name
        self.network = network
        self.config = config or GroupConfig()
        rng = rng or random.Random(hash(name) & 0xFFFF)

        self.acceptor_names = [
            f"{name}/acc{i}" for i in range(self.config.n_acceptors)
        ]
        self.replica_names = [
            f"{name}/rep{i}" for i in range(self.config.n_replicas)
        ]

        self.acceptors = [
            network.register(Acceptor(acc_name)) for acc_name in self.acceptor_names
        ]

        factory = replica_factory or PaxosReplica
        self.replicas = []
        for i, rep_name in enumerate(self.replica_names):
            replica = factory(
                name=rep_name,
                group=name,
                index=i,
                replicas=self.replica_names,
                acceptors=self.acceptor_names,
                config=self.config.replica,
                on_deliver=on_deliver,
                rng=random.Random(rng.getrandbits(64)),
            )
            network.register(replica)
            self.replicas.append(replica)

        # Optional compartmentalized stages (attached by the system
        # builder): ingress proxy leaders and read-only learners.  Empty
        # in the default, non-compartmentalized deployment.
        self.proxies: list = []
        self.learners: list = []

    def attach_stages(self, proxies, learners) -> None:
        """Attach the group's compartmentalized stage actors (already
        registered with the network); :meth:`start` arms their timers."""
        self.proxies = list(proxies)
        self.learners = list(learners)

    @property
    def proxy_names(self) -> list[str]:
        return [proxy.name for proxy in self.proxies]

    @property
    def learner_names(self) -> list[str]:
        return [learner.name for learner in self.learners]

    def start(self) -> None:
        """Arm all replica timers; call once the simulation is wired up."""
        for replica in self.replicas:
            replica.start()
        for stage in (*self.proxies, *self.learners):
            stage.start()

    def submit(self, value: Any) -> None:
        """Inject ``value`` for ordering (test convenience; production code
        paths send :class:`Submit` messages through the network instead)."""
        alive = self.alive_replicas
        if alive:
            alive[0].submit(value)

    def submit_via(self, sender, value: Any) -> None:
        """Have actor ``sender`` submit ``value`` by messaging every replica
        (uid-deduplication makes this safe and leader-crash tolerant)."""
        sender.send_all(self.replica_names, Submit(value))

    # -- introspection ----------------------------------------------------

    @property
    def alive_replicas(self) -> list[PaxosReplica]:
        """Replicas that are currently not crashed."""
        return [replica for replica in self.replicas if not replica.crashed]

    @property
    def leader(self) -> Optional[PaxosReplica]:
        for replica in self.replicas:
            if replica.is_leader and not replica.crashed:
                return replica
        return None

    def delivered_log(self, replica_index: int = 0) -> list:
        """Ordered values a replica has delivered so far (test helper).

        Starts at the replica's ``log_floor``: instances below it were
        delivered but compacted away with the last checkpoint.
        """
        replica = self.replicas[replica_index]
        out = []
        from repro.consensus.paxos import Batch
        from repro.consensus.messages import NoOp

        seen = set()
        for instance in range(replica.log_floor, replica.next_deliver):
            batch = replica.decided[instance]
            values = batch.values if isinstance(batch, Batch) else (batch,)
            for value in values:
                if isinstance(value, NoOp):
                    continue
                uid = getattr(value, "uid", None)
                if uid is not None:
                    if uid in seen:
                        continue
                    seen.add(uid)
                out.append(value)
        return out
