"""Multi-Paxos acceptors and replicas.

Topology per group (matching the paper's libpaxos3 deployment): ``n``
replica actors that act as proposer/learner and host the application
state machine, plus ``k`` acceptor actors.  The leader for ballot ``b``
is replica ``b % n``; ballot 0 needs no phase 1 because acceptors start
with an implicit promise at ballot 0 and only replica 0 leads ballot 0.

Values are proposed in *batches* (libpaxos-style) to amortize quorum
round-trips under load; batches are unpacked in instance order at
delivery, with per-value ``uid`` deduplication so re-proposals after a
leader change deliver exactly once.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs.trace import NULL_TRACER, Tracer
from repro.recovery.checkpoint import (
    CheckpointRecord,
    assemble_sections,
    flatten_sections,
)
from repro.recovery.transfer import AdaptiveChunker, SnapshotFetch
from repro.sim.actors import Actor
from repro.consensus.messages import (
    Accept,
    Accepted,
    Decision,
    Heartbeat,
    LearnRequest,
    LogTruncated,
    Nack,
    NoOp,
    Prepare,
    Promise,
    RecoverInfo,
    RecoverQuery,
    SnapshotChunk,
    SnapshotChunkRequest,
    SnapshotMeta,
    SnapshotRequest,
    Submit,
    TruncateLog,
    WatermarkNotice,
)


@dataclass(frozen=True)
class Batch:
    """An ordered batch of application values, the unit of consensus."""

    values: tuple


@dataclass
class ReplicaConfig:
    """Tuning knobs for a Paxos replica."""

    heartbeat_period: float = 0.1
    leader_timeout: float = 0.5
    batch_delay: float = 0.0005
    max_batch: int = 64
    window: int = 32
    catchup_period: float = 0.2
    recovery_retry: float = 0.3
    #: Upper bound on the exponentially backed-off recovery retry delay.
    recovery_retry_cap: float = 5.0
    #: Checkpoint every N delivered instances (0 disables checkpointing,
    #: log compaction, and snapshot transfer entirely).
    checkpoint_interval: int = 0
    #: A peer watermark older than this is presumed crashed and excluded
    #: from the group truncation minimum.
    watermark_ttl: float = 2.0
    #: Snapshot transfer: per-request retransmission timeout, consecutive
    #: timeouts before the provider is presumed dead, and chunk sizing.
    snapshot_retry: float = 0.3
    snapshot_giveup: int = 4
    snapshot_chunk_init: int = 8
    snapshot_chunk_max: int = 128
    snapshot_target_rtt: float = 0.05

    def __post_init__(self) -> None:
        # The pipelining/batching knobs are load-bearing for liveness: a
        # zero or negative window/batch silently wedges `_flush_pending`
        # instead of failing loudly at configuration time.
        if not isinstance(self.window, int) or isinstance(self.window, bool) or self.window < 1:
            raise ValueError(f"window must be a positive int, got {self.window!r}")
        if (
            not isinstance(self.max_batch, int)
            or isinstance(self.max_batch, bool)
            or self.max_batch < 1
        ):
            raise ValueError(
                f"max_batch must be a positive int, got {self.max_batch!r}"
            )
        if (
            isinstance(self.batch_delay, bool)
            or not isinstance(self.batch_delay, (int, float))
            or self.batch_delay <= 0
        ):
            raise ValueError(
                f"batch_delay must be positive, got {self.batch_delay!r}"
            )


class Acceptor(Actor):
    """A Paxos acceptor: one promise ballot for all instances, per-instance
    accepted (ballot, value) pairs."""

    def __init__(self, name: str):
        super().__init__(name)
        self.promised = 0
        self.accepted: dict[int, tuple[int, Any]] = {}
        #: Log-compaction floor: accepted state below it was discarded.
        self.truncated_below = 0

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, Prepare):
            self._on_prepare(sender, message)
        elif isinstance(message, Accept):
            self._on_accept(sender, message)
        elif isinstance(message, RecoverQuery):
            self._on_recover_query(sender, message)
        elif isinstance(message, TruncateLog):
            self._on_truncate(message)

    def _on_prepare(self, sender: str, msg: Prepare) -> None:
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            accepted = {i: va for i, va in self.accepted.items() if i >= msg.low}
            self.send(sender, Promise(msg.ballot, accepted))
        else:
            self.send(sender, Nack(self.promised))

    def _on_accept(self, sender: str, msg: Accept) -> None:
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            self.accepted[msg.instance] = (msg.ballot, msg.value)
            self.send(sender, Accepted(msg.ballot, msg.instance))
        else:
            self.send(sender, Nack(self.promised, msg.instance))

    def _on_recover_query(self, sender: str, msg: RecoverQuery) -> None:
        """Read-only reply for replica recovery: report accepted values
        without promising anything (unlike Prepare, this does not disturb
        the current leader)."""
        accepted = {i: va for i, va in self.accepted.items() if i >= msg.low}
        self.send(sender, RecoverInfo(msg.epoch, accepted, self.truncated_below))

    def _on_truncate(self, msg: TruncateLog) -> None:
        """Log compaction: the replicas checkpointed through ``watermark``,
        so accepted state below it can never be needed again."""
        if msg.watermark <= self.truncated_below:
            return
        self.truncated_below = msg.watermark
        self.accepted = {
            i: va for i, va in self.accepted.items() if i >= msg.watermark
        }


class PaxosReplica(Actor):
    """Proposer + learner + application host.

    Subclasses (or callers via ``on_deliver``) receive every decided value
    exactly once, in log order, by overriding :meth:`deliver_value`.
    """

    def __init__(
        self,
        name: str,
        group: str,
        index: int,
        replicas: list[str],
        acceptors: list[str],
        config: Optional[ReplicaConfig] = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
        rng: Optional[random.Random] = None,
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(name)
        self.group = group
        self.index = index
        self.replicas = list(replicas)
        self.acceptors = list(acceptors)
        self.config = config or ReplicaConfig()
        self.on_deliver = on_deliver
        self.rng = rng or random.Random(index)
        self.tracer = tracer or NULL_TRACER

        # Ballot / leadership
        self.ballot = 0
        self.phase1_done = index == 0  # ballot 0 leader skips phase 1
        self._promises: dict[str, Promise] = {}

        # Proposer state
        self.next_instance = 0
        self.proposals: dict[int, tuple[int, Any]] = {}
        self._proposal_time: dict[int, float] = {}
        self._accept_votes: dict[int, set[str]] = {}
        self.pending: deque = deque()
        self._pending_uids: set = set()
        self._pending_seen: set = set()
        self.proposed_uids: set = set()
        self._batch_timer = None

        # Learner state
        self.decided: dict[int, Any] = {}
        self.next_deliver = 0
        self.delivered_uids: set = set()
        self._peer_max_decided = -1

        # Failure detection
        self._last_leader_contact = 0.0
        self._started = False

        # Crash recovery (volatile; rebuilt by on_recover)
        self._recovery_epoch = 0
        self._recovery_replies: dict[str, RecoverInfo] = {}
        self._recovering = False
        self._recovery_attempts = 0

        # Checkpointing / log compaction (stable across crashes).
        #: First instance still present in ``decided``.
        self.log_floor = 0
        #: Watermark of the newest local checkpoint (0 = none yet).
        self.checkpoint_watermark = 0
        self.last_checkpoint: Optional[CheckpointRecord] = None
        #: snapshot_id -> (watermark, flattened items); the last two
        #: checkpoints stay servable so a transfer survives one turnover.
        self._served_snapshots: dict[str, tuple[int, list]] = {}
        self._checkpoint_id = ""
        #: peer replica -> (watermark, virtual time last heard).
        self._peer_watermarks: dict[str, tuple[int, float]] = {}

        # Snapshot download (volatile; reset by on_recover).
        self._snapshot_epoch = 0
        self._fetching: Optional[SnapshotFetch] = None

        #: Optional metrics sink; subclasses (servers, oracle) install a
        #: real Monitor after construction.
        self.monitor = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Arm heartbeat / failure-detection timers.  Call after the actor
        is registered with the network."""
        if self._started:
            return
        self._started = True
        self._last_leader_contact = self.now
        self.set_periodic_timer(self.config.heartbeat_period, self._heartbeat_tick)
        jitter = self.rng.uniform(0, 0.1 * self.config.leader_timeout)
        self.set_periodic_timer(
            self.config.leader_timeout + jitter, self._leader_check_tick
        )
        self.set_periodic_timer(self.config.catchup_period, self._catchup_tick)

    def crash(self) -> None:
        super().crash()
        self._batch_timer = None

    def on_recover(self) -> None:
        """Rebuild volatile state after a crash (crash-recovery, §2.1).

        The Paxos *log* (``decided``, ``delivered_uids``, ``next_deliver``)
        and the promise-relevant ``ballot`` are treated as stable storage;
        leadership and in-flight proposer bookkeeping are volatile and
        reset.  The replica then re-syncs decided instances from the
        acceptors before relying on peer catch-up for the rest.
        """
        self.phase1_done = False
        self._promises.clear()
        self.proposals.clear()
        self._proposal_time.clear()
        self._accept_votes.clear()
        self._batch_timer = None
        self._started = False
        self._recovery_attempts = 0
        self._fetching = None
        self.tracer.record(
            "replica-recovered", self.now, group=self.group, replica=self.name
        )
        self.start()
        self._request_recovery()

    # -- leadership helpers ---------------------------------------------------

    def leader_of(self, ballot: int) -> str:
        return self.replicas[ballot % len(self.replicas)]

    @property
    def is_leader(self) -> bool:
        return self.leader_of(self.ballot) == self.name and self.phase1_done

    def _quorum(self) -> int:
        return len(self.acceptors) // 2 + 1

    @property
    def max_decided(self) -> int:
        # After truncation ``decided`` may be empty even though instances
        # were delivered; the delivery frontier keeps heartbeats truthful.
        return max(self.decided) if self.decided else self.next_deliver - 1

    def _count(self, name: str, amount: int = 1, **labels) -> None:
        """Labeled counter increment, tolerating replicas without a
        metrics sink (bare PaxosReplica instances in unit tests)."""
        if self.monitor is not None:
            self.monitor.counter(name, **labels).inc(amount)

    # -- message dispatch -----------------------------------------------------

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, Submit):
            self.submit(message.value)
        elif isinstance(message, Promise):
            self._on_promise(sender, message)
        elif isinstance(message, Accepted):
            self._on_accepted(sender, message)
        elif isinstance(message, Decision):
            self._on_decision(message.instance, message.value)
        elif isinstance(message, Nack):
            self._on_nack(message)
        elif isinstance(message, Heartbeat):
            self._on_heartbeat(sender, message)
        elif isinstance(message, LearnRequest):
            self._on_learn_request(sender, message)
        elif isinstance(message, RecoverInfo):
            self._on_recover_info(sender, message)
        elif isinstance(message, WatermarkNotice):
            self._on_watermark_notice(sender, message)
        elif isinstance(message, LogTruncated):
            self._on_log_truncated(sender, message)
        elif isinstance(message, SnapshotRequest):
            self._on_snapshot_request(sender, message)
        elif isinstance(message, SnapshotMeta):
            self._on_snapshot_meta(sender, message)
        elif isinstance(message, SnapshotChunkRequest):
            self._on_snapshot_chunk_request(sender, message)
        elif isinstance(message, SnapshotChunk):
            self._on_snapshot_chunk(sender, message)
        else:
            self.on_other_message(sender, message)

    def on_other_message(self, sender: str, message: Any) -> None:
        """Hook for subclasses layering protocols on top of the replica."""

    # -- submission / proposing -------------------------------------------------

    def submit(self, value: Any) -> None:
        """Enqueue ``value`` for ordering.  Any replica accepts submissions;
        only the leader proposes, others buffer in case they take over."""
        uid = getattr(value, "uid", None)
        if uid is not None and (
            uid in self.delivered_uids
            or uid in self._pending_uids
            or (self.is_leader and uid in self.proposed_uids)
        ):
            return
        self.pending.append(value)
        if uid is not None:
            self._pending_uids.add(uid)
        if self.is_leader:
            self._schedule_flush()

    def _schedule_flush(self) -> None:
        if len(self.pending) >= self.config.max_batch:
            self._flush_pending()
        elif self._batch_timer is None or not self._batch_timer.active:
            self._batch_timer = self.set_timer(
                self.config.batch_delay, self._flush_pending
            )

    def _flush_pending(self) -> None:
        if not self.is_leader:
            return
        while self.pending and len(self.proposals) < self.config.window:
            batch_values = []
            while self.pending and len(batch_values) < self.config.max_batch:
                value = self.pending.popleft()
                uid = getattr(value, "uid", None)
                if uid is not None:
                    self._pending_uids.discard(uid)
                    if uid in self.proposed_uids or uid in self.delivered_uids:
                        continue
                    self.proposed_uids.add(uid)
                batch_values.append(value)
            if not batch_values:
                continue
            self._propose(self.next_instance, Batch(tuple(batch_values)))
            self.next_instance += 1

    def _propose(self, instance: int, value: Any) -> None:
        self.proposals[instance] = (self.ballot, value)
        self._proposal_time[instance] = self.now
        self._accept_votes[instance] = set()
        for acceptor in self.acceptors:
            self.send(acceptor, Accept(self.ballot, instance, value))

    def _on_accepted(self, sender: str, msg: Accepted) -> None:
        if msg.ballot != self.ballot:
            return
        proposal = self.proposals.get(msg.instance)
        if proposal is None or proposal[0] != msg.ballot:
            return
        votes = self._accept_votes.setdefault(msg.instance, set())
        votes.add(sender)
        if len(votes) >= self._quorum():
            value = proposal[1]
            del self.proposals[msg.instance]
            self._proposal_time.pop(msg.instance, None)
            del self._accept_votes[msg.instance]
            for replica in self.replicas:
                if replica != self.name:
                    self.send(replica, Decision(msg.instance, value))
            self._on_decision(msg.instance, value)
            self._flush_pending()

    # -- learning / delivery ------------------------------------------------------

    def _on_decision(self, instance: int, value: Any) -> None:
        if instance < self.log_floor or instance in self.decided:
            # Below the floor: already delivered *and* truncated — a
            # re-proposal from a behind leader must not resurrect it.
            return
        self.decided[instance] = value
        while self.next_deliver in self.decided:
            batch = self.decided[self.next_deliver]
            self.next_deliver += 1
            values = batch.values if isinstance(batch, Batch) else (batch,)
            for v in values:
                self._deliver_once(v)
            self._maybe_checkpoint()

    def _deliver_once(self, value: Any) -> None:
        if isinstance(value, NoOp):
            return
        uid = getattr(value, "uid", None)
        if uid is not None:
            if uid in self.delivered_uids:
                return
            self.delivered_uids.add(uid)
            self._pending_uids.discard(uid)
        self.deliver_value(value)

    def deliver_value(self, value: Any) -> None:
        """Exactly-once, in-order delivery point.  Subclasses override."""
        if self.on_deliver is not None:
            self.on_deliver(value)

    # -- heartbeats & failure detection ----------------------------------------------

    def _heartbeat_tick(self) -> None:
        if not self.is_leader:
            return
        for replica in self.replicas:
            if replica != self.name:
                self.send(replica, Heartbeat(self.ballot, self.max_decided))
        # Retransmit stalled proposals (Accepts lost to partitions/drops).
        stale_cutoff = self.now - self.config.leader_timeout / 2
        for instance, (ballot, value) in self.proposals.items():
            if self._proposal_time.get(instance, self.now) <= stale_cutoff:
                self._proposal_time[instance] = self.now
                for acceptor in self.acceptors:
                    self.send(acceptor, Accept(ballot, instance, value))

    def _on_heartbeat(self, sender: str, msg: Heartbeat) -> None:
        if msg.ballot >= self.ballot:
            if msg.ballot > self.ballot:
                self._adopt_ballot(msg.ballot)
            self._last_leader_contact = self.now
            self._peer_max_decided = max(self._peer_max_decided, msg.max_decided)

    def _leader_check_tick(self) -> None:
        if self.is_leader:
            return
        if self.now - self._last_leader_contact < self.config.leader_timeout:
            return
        # Leader silent: claim the next ballot this replica leads.
        ballot = self.ballot + 1
        while self.leader_of(ballot) != self.name:
            ballot += 1
        self._start_phase1(ballot)

    def _adopt_ballot(self, ballot: int) -> None:
        """Step down to follower state under a higher ballot."""
        self.ballot = ballot
        self.phase1_done = False
        self._promises.clear()
        # In-flight proposals from the old ballot may or may not be chosen;
        # the values stay in proposed_uids so we do not double-propose, and
        # a future leader recovers them from the acceptors.
        self.proposals.clear()
        self._proposal_time.clear()
        self._accept_votes.clear()

    def _on_nack(self, msg: Nack) -> None:
        if msg.ballot > self.ballot:
            self._adopt_ballot(msg.ballot)
            self._last_leader_contact = self.now

    # -- phase 1 (leader takeover) -------------------------------------------------------

    def _start_phase1(self, ballot: int) -> None:
        self.ballot = ballot
        self.phase1_done = False
        self._promises.clear()
        self.proposals.clear()
        self._proposal_time.clear()
        self._accept_votes.clear()
        self._last_leader_contact = self.now
        for acceptor in self.acceptors:
            self.send(acceptor, Prepare(ballot, self.next_deliver))

    def _on_promise(self, sender: str, msg: Promise) -> None:
        if msg.ballot != self.ballot or self.phase1_done:
            return
        if self.leader_of(self.ballot) != self.name:
            return
        self._promises[sender] = msg
        if len(self._promises) < self._quorum():
            return
        self.phase1_done = True
        self.tracer.record(
            "leader-elected", self.now,
            group=self.group, leader=self.name, ballot=self.ballot,
        )
        self._recover_instances()
        # Values buffered while following are now this leader's duty.
        self._flush_pending()

    def _recover_instances(self) -> None:
        """Re-propose the highest-ballot accepted value for every in-flight
        instance reported by a quorum of acceptors; close gaps with no-ops."""
        merged: dict[int, tuple[int, Any]] = {}
        for promise in self._promises.values():
            for instance, (vballot, value) in promise.accepted.items():
                current = merged.get(instance)
                if current is None or vballot > current[0]:
                    merged[instance] = (vballot, value)
        if merged:
            top = max(merged)
            for instance in range(self.next_deliver, top + 1):
                if instance in self.decided:
                    continue
                if instance in merged:
                    self._propose(instance, merged[instance][1])
                else:
                    self._propose(instance, Batch((NoOp(),)))
            self.next_instance = max(self.next_instance, top + 1)
        self.next_instance = max(self.next_instance, self.next_deliver)

    # -- crash recovery ---------------------------------------------------------------

    def _request_recovery(self) -> None:
        """Ask all acceptors for their accepted state from ``next_deliver``
        on; retries (with exponential backoff, capped) until a quorum
        replies for the current epoch."""
        self._recovery_epoch += 1
        self._recovering = True
        self._recovery_replies.clear()
        query = RecoverQuery(self._recovery_epoch, self.next_deliver)
        for acceptor in self.acceptors:
            self.send(acceptor, query)
        delay = min(
            self.config.recovery_retry * 2 ** self._recovery_attempts,
            self.config.recovery_retry_cap,
        )
        self.set_timer(delay, self._recovery_retry_tick)

    def _recovery_retry_tick(self) -> None:
        if self._recovering:
            self._recovery_attempts += 1
            self._request_recovery()

    def _on_recover_info(self, sender: str, msg: RecoverInfo) -> None:
        if not self._recovering or msg.epoch != self._recovery_epoch:
            return
        self._recovery_replies[sender] = msg
        if len(self._recovery_replies) < self._quorum():
            return
        self._recovering = False
        self._recovery_attempts = 0
        # Behind the acceptors' compaction floor: the missing prefix no
        # longer exists anywhere in the log — switch to snapshot transfer.
        floor = max(r.truncated_below for r in self._recovery_replies.values())
        if floor > self.next_deliver:
            if self._fetching is None:
                self._begin_snapshot_fetch(floor)
            return
        # A value accepted at the same (instance, ballot) by a quorum is
        # chosen — the Paxos invariant that at most one value can gain a
        # quorum per ballot makes value comparison unnecessary.
        votes: dict[tuple[int, int], int] = {}
        values: dict[tuple[int, int], Any] = {}
        for reply in self._recovery_replies.values():
            for instance, (vballot, value) in reply.accepted.items():
                key = (instance, vballot)
                votes[key] = votes.get(key, 0) + 1
                values[key] = value
        for (instance, _vballot), count in sorted(votes.items()):
            if count >= self._quorum() and instance not in self.decided:
                self._on_decision(instance, values[(instance, _vballot)])
        # Anything accepted by fewer acceptors (still in flight, or already
        # chosen but not quorum-visible here) is recovered by the normal
        # peer catch-up / leader-takeover paths.

    # -- catch-up --------------------------------------------------------------------

    def _catchup_tick(self) -> None:
        behind = max(self._peer_max_decided, self.max_decided)
        if (
            self._fetching is None
            and behind >= self.next_deliver
            and self.next_deliver not in self.decided
        ):
            for replica in self.replicas:
                if replica != self.name:
                    self.send(replica, LearnRequest(self.next_deliver, behind))
        self._forward_pending()
        # Re-gossip the checkpoint watermark (covers lost notices and
        # peers that recovered since) and re-evaluate truncation.
        if self.checkpoint_watermark > 0:
            notice = WatermarkNotice(self.checkpoint_watermark)
            for replica in self.replicas:
                if replica != self.name:
                    self.send(replica, notice)
            self._maybe_truncate()

    def _forward_pending(self) -> None:
        """Follower liveness: re-route buffered submissions to the current
        leader (covers Submits lost with a crashed leader or dropped on a
        lossy link).  Uid deduplication at the leader makes this safe."""
        while self.pending:
            uid = getattr(self.pending[0], "uid", None)
            if uid is not None and uid in self.delivered_uids:
                self._pending_uids.discard(uid)
                self.pending.popleft()
            else:
                break
        if not self.pending:
            self._pending_seen.clear()
            return
        if self.is_leader:
            self._schedule_flush()
            return
        leader = self.leader_of(self.ballot)
        if leader != self.name:
            # Only values that survived a full catch-up period are
            # forwarded — fresh submissions are normally already in
            # flight at the leader.
            for value in self.pending:
                uid = getattr(value, "uid", None)
                if uid is not None and uid in self._pending_seen:
                    self.send(leader, Submit(value))
        self._pending_seen = set(self._pending_uids)

    def _on_learn_request(self, sender: str, msg: LearnRequest) -> None:
        if msg.low < self.log_floor:
            # The requested prefix was compacted away; point the peer at
            # snapshot transfer instead of leaving it to retry forever.
            self.send(sender, LogTruncated(self.log_floor))
        for instance in range(max(msg.low, self.log_floor), msg.high + 1):
            if instance in self.decided:
                self.send(sender, Decision(instance, self.decided[instance]))

    # -- checkpointing ---------------------------------------------------------------

    def capture_app_state(self) -> dict:
        """Named state sections for a checkpoint (see
        :mod:`repro.recovery.checkpoint`).  Every entry must be the
        deterministic product of delivering the log prefix — captured in
        canonical (sorted) form and deep-copied where mutable.  Subclass
        overrides extend the dict with their own sections."""
        return {
            "paxos.state": {
                "delivered_uids": sorted(self.delivered_uids, key=repr),
            },
        }

    def install_app_state(self, sections: dict) -> None:
        """Inverse of :meth:`capture_app_state`."""
        state = sections.get("paxos.state", {})
        self.delivered_uids = set(state.get("delivered_uids", ()))

    def on_checkpoint(self, watermark: int) -> None:
        """Hook run just before state capture (subclasses prune
        checkpoint-aware retention buffers here)."""

    def _maybe_checkpoint(self) -> None:
        interval = self.config.checkpoint_interval
        if (
            interval <= 0
            or self.next_deliver % interval != 0
            or self.next_deliver <= self.checkpoint_watermark
        ):
            return
        self._take_checkpoint()

    def _take_checkpoint(self) -> None:
        """Checkpoint the application state at the current delivery
        frontier.  The watermark is a deterministic function of the log
        (a multiple of the interval), so every replica checkpoints at
        identical log positions regardless of message timing."""
        watermark = self.next_deliver
        self.on_checkpoint(watermark)
        record = CheckpointRecord(watermark, self.capture_app_state())
        self._register_checkpoint(record)
        self.tracer.record(
            "checkpoint", self.now,
            group=self.group, replica=self.name,
            watermark=watermark, items=record.total_items,
        )
        self._count("checkpoint", group=self.group)
        self._peer_watermarks[self.name] = (watermark, self.now)
        notice = WatermarkNotice(watermark)
        for replica in self.replicas:
            if replica != self.name:
                self.send(replica, notice)
        self._maybe_truncate()

    def _register_checkpoint(self, record: CheckpointRecord) -> None:
        """Make ``record`` the newest servable snapshot (keeping one
        predecessor, so an in-flight transfer survives the turnover)."""
        self.last_checkpoint = record
        self.checkpoint_watermark = record.watermark
        self._checkpoint_id = f"{self.name}@{record.watermark}"
        self._served_snapshots[self._checkpoint_id] = (
            record.watermark,
            flatten_sections(record.sections),
        )
        while len(self._served_snapshots) > 2:
            oldest = min(
                self._served_snapshots, key=lambda k: self._served_snapshots[k][0]
            )
            del self._served_snapshots[oldest]

    # -- log compaction --------------------------------------------------------------

    def _on_watermark_notice(self, sender: str, msg: WatermarkNotice) -> None:
        self._peer_watermarks[sender] = (msg.watermark, self.now)
        self._maybe_truncate()

    def _group_truncation_point(self) -> int:
        """Minimum over the fresh checkpoint watermarks.  Peers silent
        longer than the TTL (crashed, partitioned) are excluded — they
        re-enter via snapshot transfer — but a peer that has never
        checkpointed while we are freshly started holds truncation back
        until the TTL decides its fate."""
        if self.checkpoint_watermark <= 0:
            return 0
        horizon = self.now - self.config.watermark_ttl
        floor = self.checkpoint_watermark
        for peer in self.replicas:
            if peer == self.name:
                continue
            entry = self._peer_watermarks.get(peer)
            if entry is None:
                if self.now <= self.config.watermark_ttl:
                    return 0
                continue
            watermark, heard_at = entry
            if heard_at < horizon:
                continue
            floor = min(floor, watermark)
        return floor

    def _maybe_truncate(self) -> None:
        floor = min(self._group_truncation_point(), self.next_deliver)
        if floor <= self.log_floor:
            return
        dropped = 0
        for instance in range(self.log_floor, floor):
            if self.decided.pop(instance, None) is not None:
                dropped += 1
        self.log_floor = floor
        self.tracer.record(
            "log-truncated", self.now,
            group=self.group, replica=self.name,
            floor=floor, dropped=dropped,
        )
        self._count("log_truncated", group=self.group)
        self._count("log_instances_dropped", dropped, group=self.group)
        truncate = TruncateLog(floor)
        for acceptor in self.acceptors:
            self.send(acceptor, truncate)

    # -- snapshot transfer (provider side) --------------------------------------------

    def _on_snapshot_request(self, sender: str, msg: SnapshotRequest) -> None:
        if self.last_checkpoint is None or self._fetching is not None:
            return  # nothing to offer, or recovering ourselves
        record = self.last_checkpoint
        self.send(
            sender,
            SnapshotMeta(
                msg.epoch,
                self._checkpoint_id,
                record.watermark,
                record.total_items,
            ),
        )

    def _on_snapshot_chunk_request(self, sender: str, msg: SnapshotChunkRequest) -> None:
        served = self._served_snapshots.get(msg.snapshot_id)
        if served is None:
            # Superseded snapshot: stay silent; the requester times out
            # and re-discovers, landing on the current checkpoint.
            return
        watermark, items = served
        window = tuple(items[msg.offset : msg.offset + msg.count])
        self._count("snapshot_chunks_served", group=self.group)
        self.send(
            sender,
            SnapshotChunk(
                msg.snapshot_id, watermark, msg.offset, window, len(items)
            ),
        )

    # -- snapshot transfer (requester side) -------------------------------------------

    @property
    def snapshot_trace_id(self) -> str:
        return f"snapshot:{self.name}:{self._snapshot_epoch}"

    def _begin_snapshot_fetch(self, min_watermark: int) -> None:
        """Start (or restart, under a fresh epoch) snapshot discovery:
        ask every peer replica for an offer and poll until one answers
        with a usable watermark."""
        self._snapshot_epoch += 1
        self._fetching = SnapshotFetch(
            epoch=self._snapshot_epoch,
            chunker=AdaptiveChunker(
                initial=self.config.snapshot_chunk_init,
                max_count=self.config.snapshot_chunk_max,
                target_rtt=self.config.snapshot_target_rtt,
            ),
        )
        self.tracer.begin(
            self.snapshot_trace_id, "snapshot-transfer", self.now,
            group=self.group, replica=self.name, behind=min_watermark,
        )
        self._count("snapshot_fetches", group=self.group)
        request = SnapshotRequest(self._snapshot_epoch)
        for replica in self.replicas:
            if replica != self.name:
                self.send(replica, request)
        self._arm_snapshot_timer(self._fetching)

    def _arm_snapshot_timer(self, fetch: SnapshotFetch) -> None:
        fetch.requested_at = self.now
        epoch = fetch.epoch
        offset = fetch.offset
        self.set_timer(
            self.config.snapshot_retry,
            lambda: self._snapshot_retry_tick(epoch, offset),
        )

    def _snapshot_retry_tick(self, epoch: int, offset: int) -> None:
        fetch = self._fetching
        if fetch is None or fetch.epoch != epoch:
            return
        if fetch.provider is not None and fetch.offset != offset:
            return  # progress was made; a newer timer covers the transfer
        fetch.timeouts += 1
        if fetch.discovering:
            # No offer yet: re-broadcast the request under the same epoch.
            request = SnapshotRequest(epoch)
            for replica in self.replicas:
                if replica != self.name:
                    self.send(replica, request)
            self._arm_snapshot_timer(fetch)
            return
        if fetch.timeouts >= self.config.snapshot_giveup:
            # Provider presumed crashed mid-transfer: abandon the download
            # and re-discover from scratch under a new epoch.
            self.tracer.event_on(
                self.snapshot_trace_id, "snapshot-transfer", None,
                "provider-lost", self.now,
                provider=fetch.provider, offset=fetch.offset,
            )
            self.tracer.finish(
                self.snapshot_trace_id, "snapshot-transfer", self.now,
                status="restarted",
            )
            self._count("snapshot_restarts", group=self.group)
            self._begin_snapshot_fetch(fetch.watermark)
            return
        # Lost request or lost chunk: retransmit, with a smaller window.
        fetch.chunker.shrink()
        self._count("snapshot_chunk_retries", group=self.group)
        self._request_chunk(fetch)

    def _on_snapshot_meta(self, sender: str, msg: SnapshotMeta) -> None:
        fetch = self._fetching
        if (
            fetch is None
            or msg.epoch != fetch.epoch
            or not fetch.discovering
            or msg.watermark <= self.next_deliver
        ):
            return  # stale offer, or one that would not move us forward
        fetch.provider = sender
        fetch.snapshot_id = msg.snapshot_id
        fetch.watermark = msg.watermark
        fetch.total_items = msg.total_items
        fetch.timeouts = 0
        self.tracer.event_on(
            self.snapshot_trace_id, "snapshot-transfer", None,
            "offer-accepted", self.now,
            provider=sender, watermark=msg.watermark, items=msg.total_items,
        )
        if msg.total_items == 0:
            self._install_snapshot(fetch)
            return
        self._request_chunk(fetch)

    def _request_chunk(self, fetch: SnapshotFetch) -> None:
        self.send(
            fetch.provider,
            SnapshotChunkRequest(
                fetch.snapshot_id, fetch.offset, fetch.chunker.count
            ),
        )
        self._arm_snapshot_timer(fetch)

    def _on_snapshot_chunk(self, sender: str, msg: SnapshotChunk) -> None:
        fetch = self._fetching
        if (
            fetch is None
            or msg.snapshot_id != fetch.snapshot_id
            or msg.offset != fetch.offset
        ):
            return  # duplicate or superseded chunk
        rtt = self.now - fetch.requested_at
        fetch.chunker.observe(rtt)
        fetch.items.extend(msg.items)
        fetch.offset += len(msg.items)
        fetch.timeouts = 0
        fetch.chunks += 1
        self._count("snapshot_chunks", group=self.group)
        self.tracer.event_on(
            self.snapshot_trace_id, "snapshot-transfer", None,
            "chunk", self.now,
            offset=msg.offset, count=len(msg.items), rtt=rtt,
            next_count=fetch.chunker.count,
        )
        if fetch.complete:
            self._install_snapshot(fetch)
        elif msg.items:
            self._request_chunk(fetch)
        else:  # defensive: empty window short of the total — re-poll
            self._arm_snapshot_timer(fetch)

    def _install_snapshot(self, fetch: SnapshotFetch) -> None:
        """Adopt the downloaded checkpoint: jump the delivery frontier to
        its watermark, install the state sections, then re-run normal
        recovery for the log suffix."""
        watermark = fetch.watermark
        record = CheckpointRecord(watermark, assemble_sections(fetch.items))
        self._fetching = None
        for instance in range(self.log_floor, watermark):
            self.decided.pop(instance, None)
        self.next_deliver = watermark
        self.log_floor = watermark
        self.next_instance = max(self.next_instance, watermark)
        self.install_app_state(record.sections)
        # The installed state doubles as this replica's own checkpoint:
        # it can serve snapshots and gossip the watermark immediately.
        self._register_checkpoint(record)
        self._peer_watermarks[self.name] = (watermark, self.now)
        self.tracer.finish(
            self.snapshot_trace_id, "snapshot-transfer", self.now,
            status="installed", watermark=watermark,
            chunks=fetch.chunks, items=len(fetch.items),
        )
        self._count("snapshot_recoveries", group=self.group)
        self.tracer.record(
            "snapshot-installed", self.now,
            group=self.group, replica=self.name,
            watermark=watermark, provider=fetch.provider,
        )
        # Decisions above the watermark may already be buffered; drain.
        while self.next_deliver in self.decided:
            batch = self.decided[self.next_deliver]
            self.next_deliver += 1
            values = batch.values if isinstance(batch, Batch) else (batch,)
            for v in values:
                self._deliver_once(v)
            self._maybe_checkpoint()
        # Re-sync whatever suffix the acceptors still hold.
        self._request_recovery()

    def _on_log_truncated(self, sender: str, msg: LogTruncated) -> None:
        """A peer compacted past our delivery frontier: normal catch-up
        can never close the gap, so switch to snapshot transfer (unless a
        download is already running)."""
        if msg.watermark <= self.next_deliver or self._fetching is not None:
            return
        self._recovering = False
        self._begin_snapshot_fetch(msg.watermark)
