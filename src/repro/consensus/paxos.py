"""Multi-Paxos acceptors and replicas.

Topology per group (matching the paper's libpaxos3 deployment): ``n``
replica actors that act as proposer/learner and host the application
state machine, plus ``k`` acceptor actors.  The leader for ballot ``b``
is replica ``b % n``; ballot 0 needs no phase 1 because acceptors start
with an implicit promise at ballot 0 and only replica 0 leads ballot 0.

Values are proposed in *batches* (libpaxos-style) to amortize quorum
round-trips under load; batches are unpacked in instance order at
delivery, with per-value ``uid`` deduplication so re-proposals after a
leader change deliver exactly once.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.actors import Actor
from repro.consensus.messages import (
    Accept,
    Accepted,
    Decision,
    Heartbeat,
    LearnRequest,
    Nack,
    NoOp,
    Prepare,
    Promise,
    RecoverInfo,
    RecoverQuery,
    Submit,
)


@dataclass(frozen=True)
class Batch:
    """An ordered batch of application values, the unit of consensus."""

    values: tuple


@dataclass
class ReplicaConfig:
    """Tuning knobs for a Paxos replica."""

    heartbeat_period: float = 0.1
    leader_timeout: float = 0.5
    batch_delay: float = 0.0005
    max_batch: int = 64
    window: int = 32
    catchup_period: float = 0.2
    recovery_retry: float = 0.3


class Acceptor(Actor):
    """A Paxos acceptor: one promise ballot for all instances, per-instance
    accepted (ballot, value) pairs."""

    def __init__(self, name: str):
        super().__init__(name)
        self.promised = 0
        self.accepted: dict[int, tuple[int, Any]] = {}

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, Prepare):
            self._on_prepare(sender, message)
        elif isinstance(message, Accept):
            self._on_accept(sender, message)
        elif isinstance(message, RecoverQuery):
            self._on_recover_query(sender, message)

    def _on_prepare(self, sender: str, msg: Prepare) -> None:
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            accepted = {i: va for i, va in self.accepted.items() if i >= msg.low}
            self.send(sender, Promise(msg.ballot, accepted))
        else:
            self.send(sender, Nack(self.promised))

    def _on_accept(self, sender: str, msg: Accept) -> None:
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            self.accepted[msg.instance] = (msg.ballot, msg.value)
            self.send(sender, Accepted(msg.ballot, msg.instance))
        else:
            self.send(sender, Nack(self.promised, msg.instance))

    def _on_recover_query(self, sender: str, msg: RecoverQuery) -> None:
        """Read-only reply for replica recovery: report accepted values
        without promising anything (unlike Prepare, this does not disturb
        the current leader)."""
        accepted = {i: va for i, va in self.accepted.items() if i >= msg.low}
        self.send(sender, RecoverInfo(msg.epoch, accepted))


class PaxosReplica(Actor):
    """Proposer + learner + application host.

    Subclasses (or callers via ``on_deliver``) receive every decided value
    exactly once, in log order, by overriding :meth:`deliver_value`.
    """

    def __init__(
        self,
        name: str,
        group: str,
        index: int,
        replicas: list[str],
        acceptors: list[str],
        config: Optional[ReplicaConfig] = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
        rng: Optional[random.Random] = None,
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(name)
        self.group = group
        self.index = index
        self.replicas = list(replicas)
        self.acceptors = list(acceptors)
        self.config = config or ReplicaConfig()
        self.on_deliver = on_deliver
        self.rng = rng or random.Random(index)
        self.tracer = tracer or NULL_TRACER

        # Ballot / leadership
        self.ballot = 0
        self.phase1_done = index == 0  # ballot 0 leader skips phase 1
        self._promises: dict[str, Promise] = {}

        # Proposer state
        self.next_instance = 0
        self.proposals: dict[int, tuple[int, Any]] = {}
        self._proposal_time: dict[int, float] = {}
        self._accept_votes: dict[int, set[str]] = {}
        self.pending: deque = deque()
        self._pending_uids: set = set()
        self._pending_seen: set = set()
        self.proposed_uids: set = set()
        self._batch_timer = None

        # Learner state
        self.decided: dict[int, Any] = {}
        self.next_deliver = 0
        self.delivered_uids: set = set()
        self._peer_max_decided = -1

        # Failure detection
        self._last_leader_contact = 0.0
        self._started = False

        # Crash recovery (volatile; rebuilt by on_recover)
        self._recovery_epoch = 0
        self._recovery_replies: dict[str, RecoverInfo] = {}
        self._recovering = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Arm heartbeat / failure-detection timers.  Call after the actor
        is registered with the network."""
        if self._started:
            return
        self._started = True
        self._last_leader_contact = self.now
        self.set_periodic_timer(self.config.heartbeat_period, self._heartbeat_tick)
        jitter = self.rng.uniform(0, 0.1 * self.config.leader_timeout)
        self.set_periodic_timer(
            self.config.leader_timeout + jitter, self._leader_check_tick
        )
        self.set_periodic_timer(self.config.catchup_period, self._catchup_tick)

    def crash(self) -> None:
        super().crash()
        self._batch_timer = None

    def on_recover(self) -> None:
        """Rebuild volatile state after a crash (crash-recovery, §2.1).

        The Paxos *log* (``decided``, ``delivered_uids``, ``next_deliver``)
        and the promise-relevant ``ballot`` are treated as stable storage;
        leadership and in-flight proposer bookkeeping are volatile and
        reset.  The replica then re-syncs decided instances from the
        acceptors before relying on peer catch-up for the rest.
        """
        self.phase1_done = False
        self._promises.clear()
        self.proposals.clear()
        self._proposal_time.clear()
        self._accept_votes.clear()
        self._batch_timer = None
        self._started = False
        self.tracer.record(
            "replica-recovered", self.now, group=self.group, replica=self.name
        )
        self.start()
        self._request_recovery()

    # -- leadership helpers ---------------------------------------------------

    def leader_of(self, ballot: int) -> str:
        return self.replicas[ballot % len(self.replicas)]

    @property
    def is_leader(self) -> bool:
        return self.leader_of(self.ballot) == self.name and self.phase1_done

    def _quorum(self) -> int:
        return len(self.acceptors) // 2 + 1

    @property
    def max_decided(self) -> int:
        return max(self.decided) if self.decided else -1

    # -- message dispatch -----------------------------------------------------

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, Submit):
            self.submit(message.value)
        elif isinstance(message, Promise):
            self._on_promise(sender, message)
        elif isinstance(message, Accepted):
            self._on_accepted(sender, message)
        elif isinstance(message, Decision):
            self._on_decision(message.instance, message.value)
        elif isinstance(message, Nack):
            self._on_nack(message)
        elif isinstance(message, Heartbeat):
            self._on_heartbeat(sender, message)
        elif isinstance(message, LearnRequest):
            self._on_learn_request(sender, message)
        elif isinstance(message, RecoverInfo):
            self._on_recover_info(sender, message)
        else:
            self.on_other_message(sender, message)

    def on_other_message(self, sender: str, message: Any) -> None:
        """Hook for subclasses layering protocols on top of the replica."""

    # -- submission / proposing -------------------------------------------------

    def submit(self, value: Any) -> None:
        """Enqueue ``value`` for ordering.  Any replica accepts submissions;
        only the leader proposes, others buffer in case they take over."""
        uid = getattr(value, "uid", None)
        if uid is not None and (
            uid in self.delivered_uids
            or uid in self._pending_uids
            or (self.is_leader and uid in self.proposed_uids)
        ):
            return
        self.pending.append(value)
        if uid is not None:
            self._pending_uids.add(uid)
        if self.is_leader:
            self._schedule_flush()

    def _schedule_flush(self) -> None:
        if len(self.pending) >= self.config.max_batch:
            self._flush_pending()
        elif self._batch_timer is None or not self._batch_timer.active:
            self._batch_timer = self.set_timer(
                self.config.batch_delay, self._flush_pending
            )

    def _flush_pending(self) -> None:
        if not self.is_leader:
            return
        while self.pending and len(self.proposals) < self.config.window:
            batch_values = []
            while self.pending and len(batch_values) < self.config.max_batch:
                value = self.pending.popleft()
                uid = getattr(value, "uid", None)
                if uid is not None:
                    self._pending_uids.discard(uid)
                    if uid in self.proposed_uids or uid in self.delivered_uids:
                        continue
                    self.proposed_uids.add(uid)
                batch_values.append(value)
            if not batch_values:
                continue
            self._propose(self.next_instance, Batch(tuple(batch_values)))
            self.next_instance += 1

    def _propose(self, instance: int, value: Any) -> None:
        self.proposals[instance] = (self.ballot, value)
        self._proposal_time[instance] = self.now
        self._accept_votes[instance] = set()
        for acceptor in self.acceptors:
            self.send(acceptor, Accept(self.ballot, instance, value))

    def _on_accepted(self, sender: str, msg: Accepted) -> None:
        if msg.ballot != self.ballot:
            return
        proposal = self.proposals.get(msg.instance)
        if proposal is None or proposal[0] != msg.ballot:
            return
        votes = self._accept_votes.setdefault(msg.instance, set())
        votes.add(sender)
        if len(votes) >= self._quorum():
            value = proposal[1]
            del self.proposals[msg.instance]
            self._proposal_time.pop(msg.instance, None)
            del self._accept_votes[msg.instance]
            for replica in self.replicas:
                if replica != self.name:
                    self.send(replica, Decision(msg.instance, value))
            self._on_decision(msg.instance, value)
            self._flush_pending()

    # -- learning / delivery ------------------------------------------------------

    def _on_decision(self, instance: int, value: Any) -> None:
        if instance in self.decided:
            return
        self.decided[instance] = value
        while self.next_deliver in self.decided:
            batch = self.decided[self.next_deliver]
            self.next_deliver += 1
            values = batch.values if isinstance(batch, Batch) else (batch,)
            for v in values:
                self._deliver_once(v)

    def _deliver_once(self, value: Any) -> None:
        if isinstance(value, NoOp):
            return
        uid = getattr(value, "uid", None)
        if uid is not None:
            if uid in self.delivered_uids:
                return
            self.delivered_uids.add(uid)
            self._pending_uids.discard(uid)
        self.deliver_value(value)

    def deliver_value(self, value: Any) -> None:
        """Exactly-once, in-order delivery point.  Subclasses override."""
        if self.on_deliver is not None:
            self.on_deliver(value)

    # -- heartbeats & failure detection ----------------------------------------------

    def _heartbeat_tick(self) -> None:
        if not self.is_leader:
            return
        for replica in self.replicas:
            if replica != self.name:
                self.send(replica, Heartbeat(self.ballot, self.max_decided))
        # Retransmit stalled proposals (Accepts lost to partitions/drops).
        stale_cutoff = self.now - self.config.leader_timeout / 2
        for instance, (ballot, value) in self.proposals.items():
            if self._proposal_time.get(instance, self.now) <= stale_cutoff:
                self._proposal_time[instance] = self.now
                for acceptor in self.acceptors:
                    self.send(acceptor, Accept(ballot, instance, value))

    def _on_heartbeat(self, sender: str, msg: Heartbeat) -> None:
        if msg.ballot >= self.ballot:
            if msg.ballot > self.ballot:
                self._adopt_ballot(msg.ballot)
            self._last_leader_contact = self.now
            self._peer_max_decided = max(self._peer_max_decided, msg.max_decided)

    def _leader_check_tick(self) -> None:
        if self.is_leader:
            return
        if self.now - self._last_leader_contact < self.config.leader_timeout:
            return
        # Leader silent: claim the next ballot this replica leads.
        ballot = self.ballot + 1
        while self.leader_of(ballot) != self.name:
            ballot += 1
        self._start_phase1(ballot)

    def _adopt_ballot(self, ballot: int) -> None:
        """Step down to follower state under a higher ballot."""
        self.ballot = ballot
        self.phase1_done = False
        self._promises.clear()
        # In-flight proposals from the old ballot may or may not be chosen;
        # the values stay in proposed_uids so we do not double-propose, and
        # a future leader recovers them from the acceptors.
        self.proposals.clear()
        self._proposal_time.clear()
        self._accept_votes.clear()

    def _on_nack(self, msg: Nack) -> None:
        if msg.ballot > self.ballot:
            self._adopt_ballot(msg.ballot)
            self._last_leader_contact = self.now

    # -- phase 1 (leader takeover) -------------------------------------------------------

    def _start_phase1(self, ballot: int) -> None:
        self.ballot = ballot
        self.phase1_done = False
        self._promises.clear()
        self.proposals.clear()
        self._proposal_time.clear()
        self._accept_votes.clear()
        self._last_leader_contact = self.now
        for acceptor in self.acceptors:
            self.send(acceptor, Prepare(ballot, self.next_deliver))

    def _on_promise(self, sender: str, msg: Promise) -> None:
        if msg.ballot != self.ballot or self.phase1_done:
            return
        if self.leader_of(self.ballot) != self.name:
            return
        self._promises[sender] = msg
        if len(self._promises) < self._quorum():
            return
        self.phase1_done = True
        self.tracer.record(
            "leader-elected", self.now,
            group=self.group, leader=self.name, ballot=self.ballot,
        )
        self._recover_instances()
        # Values buffered while following are now this leader's duty.
        self._flush_pending()

    def _recover_instances(self) -> None:
        """Re-propose the highest-ballot accepted value for every in-flight
        instance reported by a quorum of acceptors; close gaps with no-ops."""
        merged: dict[int, tuple[int, Any]] = {}
        for promise in self._promises.values():
            for instance, (vballot, value) in promise.accepted.items():
                current = merged.get(instance)
                if current is None or vballot > current[0]:
                    merged[instance] = (vballot, value)
        if merged:
            top = max(merged)
            for instance in range(self.next_deliver, top + 1):
                if instance in self.decided:
                    continue
                if instance in merged:
                    self._propose(instance, merged[instance][1])
                else:
                    self._propose(instance, Batch((NoOp(),)))
            self.next_instance = max(self.next_instance, top + 1)
        self.next_instance = max(self.next_instance, self.next_deliver)

    # -- crash recovery ---------------------------------------------------------------

    def _request_recovery(self) -> None:
        """Ask all acceptors for their accepted state from ``next_deliver``
        on; retries until a quorum replies for the current epoch."""
        self._recovery_epoch += 1
        self._recovering = True
        self._recovery_replies.clear()
        query = RecoverQuery(self._recovery_epoch, self.next_deliver)
        for acceptor in self.acceptors:
            self.send(acceptor, query)
        self.set_timer(self.config.recovery_retry, self._recovery_retry_tick)

    def _recovery_retry_tick(self) -> None:
        if self._recovering:
            self._request_recovery()

    def _on_recover_info(self, sender: str, msg: RecoverInfo) -> None:
        if not self._recovering or msg.epoch != self._recovery_epoch:
            return
        self._recovery_replies[sender] = msg
        if len(self._recovery_replies) < self._quorum():
            return
        self._recovering = False
        # A value accepted at the same (instance, ballot) by a quorum is
        # chosen — the Paxos invariant that at most one value can gain a
        # quorum per ballot makes value comparison unnecessary.
        votes: dict[tuple[int, int], int] = {}
        values: dict[tuple[int, int], Any] = {}
        for reply in self._recovery_replies.values():
            for instance, (vballot, value) in reply.accepted.items():
                key = (instance, vballot)
                votes[key] = votes.get(key, 0) + 1
                values[key] = value
        for (instance, _vballot), count in sorted(votes.items()):
            if count >= self._quorum() and instance not in self.decided:
                self._on_decision(instance, values[(instance, _vballot)])
        # Anything accepted by fewer acceptors (still in flight, or already
        # chosen but not quorum-visible here) is recovered by the normal
        # peer catch-up / leader-takeover paths.

    # -- catch-up --------------------------------------------------------------------

    def _catchup_tick(self) -> None:
        behind = max(self._peer_max_decided, self.max_decided)
        if behind >= self.next_deliver and self.next_deliver not in self.decided:
            for replica in self.replicas:
                if replica != self.name:
                    self.send(replica, LearnRequest(self.next_deliver, behind))
        self._forward_pending()

    def _forward_pending(self) -> None:
        """Follower liveness: re-route buffered submissions to the current
        leader (covers Submits lost with a crashed leader or dropped on a
        lossy link).  Uid deduplication at the leader makes this safe."""
        while self.pending:
            uid = getattr(self.pending[0], "uid", None)
            if uid is not None and uid in self.delivered_uids:
                self._pending_uids.discard(uid)
                self.pending.popleft()
            else:
                break
        if not self.pending:
            self._pending_seen.clear()
            return
        if self.is_leader:
            self._schedule_flush()
            return
        leader = self.leader_of(self.ballot)
        if leader != self.name:
            # Only values that survived a full catch-up period are
            # forwarded — fresh submissions are normally already in
            # flight at the leader.
            for value in self.pending:
                uid = getattr(value, "uid", None)
                if uid is not None and uid in self._pending_seen:
                    self.send(leader, Submit(value))
        self._pending_seen = set(self._pending_uids)

    def _on_learn_request(self, sender: str, msg: LearnRequest) -> None:
        for instance in range(msg.low, msg.high + 1):
            if instance in self.decided:
                self.send(sender, Decision(instance, self.decided[instance]))
