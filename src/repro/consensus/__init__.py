"""Multi-Paxos consensus substrate.

Each partition (and the oracle) in the replicated system is a *group*:
a set of replica actors (proposers + learners) and a set of acceptor
actors running Multi-Paxos.  The paper's prototype uses libpaxos3 with
2 replicas and 3 acceptors per group; :class:`~repro.consensus.group.PaxosGroup`
builds the same topology on the simulated network.

The log is delivered to the application in instance order with
uid-based exactly-once semantics, so higher layers (atomic multicast,
DynaStar servers) can treat the group as a single sequential state
machine that survives leader crashes.
"""

from repro.consensus.messages import (
    Accept,
    Accepted,
    Decision,
    Heartbeat,
    LearnRequest,
    NoOp,
    Prepare,
    Promise,
    RecoverInfo,
    RecoverQuery,
    Submit,
)
from repro.consensus.paxos import Acceptor, PaxosReplica
from repro.consensus.group import PaxosGroup, GroupConfig

__all__ = [
    "Accept",
    "Accepted",
    "Decision",
    "Heartbeat",
    "LearnRequest",
    "NoOp",
    "Prepare",
    "Promise",
    "RecoverInfo",
    "RecoverQuery",
    "Submit",
    "Acceptor",
    "PaxosReplica",
    "PaxosGroup",
    "GroupConfig",
]
