"""Leader-lease state machine (pure functions, hypothesis-testable).

A lease is granted *through the consensus log*: every replica applies
:class:`~repro.compartment.messages.LeaseGrant` entries in the same
order, and acceptance depends only on (current lease state, grant), so
the replicated lease state never diverges.

Safety invariant (the hypothesis property in
``tests/compartment/test_lease_property.py``): for any sequence of
applied grants, no two *different* holders are ever simultaneously
valid.  It follows from the acceptance rule — a grant naming a new
holder is accepted only if its ``granted_at`` is at or after the
current lease's expiry ("conservatively not reissued until the old
expiry passes"); a grant by the incumbent holder is a renewal and only
ever extends the incumbent's own interval.

All actors share one virtual clock, so validity checks
(``granted_at <= now < expires_at``) are globally consistent; a real
deployment would shrink the usable window by a clock-drift bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.compartment.messages import LeaseGrant


@dataclass(frozen=True, slots=True)
class Lease:
    """The currently applied lease of one partition group."""

    holder: str
    granted_at: float
    expires_at: float


def apply_grant(
    current: Optional[Lease], grant: LeaseGrant
) -> tuple[Optional[Lease], bool]:
    """Apply one log-ordered grant; returns ``(new_state, accepted)``.

    Deterministic: depends only on the arguments, never on local time,
    so replicas applying the same log prefix hold the same lease state.
    """
    if grant.expires_at <= grant.granted_at:
        return current, False
    if current is None:
        return Lease(grant.holder, grant.granted_at, grant.expires_at), True
    if grant.holder == current.holder:
        # Renewal: the incumbent only ever extends its own interval.
        if grant.expires_at <= current.expires_at:
            return current, False
        return (
            Lease(current.holder, current.granted_at, grant.expires_at),
            True,
        )
    if grant.granted_at >= current.expires_at:
        # Hand-over: only after the old lease has provably expired.
        return Lease(grant.holder, grant.granted_at, grant.expires_at), True
    return current, False


def holder_at(lease: Optional[Lease], now: float) -> Optional[str]:
    """Who holds a valid lease at virtual time ``now`` (or ``None``)."""
    if lease is None:
        return None
    if lease.granted_at <= now < lease.expires_at:
        return lease.holder
    return None


def held_by(lease: Optional[Lease], name: str, now: float) -> bool:
    """True iff ``name`` holds a valid lease at ``now``."""
    return holder_at(lease, now) == name
