"""Read-only learners: the scale-out read stage of a partition group.

A learner holds a *mirror* of the partition's variable store, fed by
per-key-versioned deltas from every core replica
(:class:`~repro.compartment.messages.ApplyUpdate`).  The version of a
variable is its logical mutation index — identical across replicas for
the same executed prefix — so the learner applies whatever arrives
first and drops stale duplicates, which makes the feed robust to any
single feeder crashing.

Local reads are linearizable via leader leases:

1. the client sends :class:`LocalRead` to one learner (seeded spread);
2. the learner probes the core replicas; only the current valid
   *leaseholder* answers, with the per-variable feed versions the read
   must observe (the leaseholder defers the answer while any queued or
   pending command could still touch those variables — see
   ``PartitionServer._on_seq_probe``);
3. the learner waits until its mirror has applied those versions, then
   executes the command locally and replies — no quorum round-trip.

Every fallback is RETRY/timeout-shaped: a rejected probe, a missed
deadline, or a crashed learner bounces the client to the ordered path
it would have taken anyway, so lease reads can only improve latency,
never correctness.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.compartment.config import CompartmentConfig
from repro.compartment.messages import (
    ApplyUpdate,
    FeedRequest,
    FeedSnapshot,
    LocalRead,
    ProbeReject,
    REMOVED,
    SeqAck,
    SeqProbe,
)
from repro.obs.trace import NULL_TRACER
from repro.sim.actors import Actor
from repro.smr.command import Reply, ReplyStatus
from repro.smr.statemachine import VariableStore


class _PendingRead:
    __slots__ = ("command", "client", "attempt", "needed", "deadline", "timer")

    def __init__(self, command, client, attempt, deadline):
        self.command = command
        self.client = client
        self.attempt = attempt
        self.needed: Optional[dict] = None
        self.deadline = deadline
        self.timer = None


class ReadLearner(Actor):
    """One read-only learner of a partition group."""

    def __init__(
        self,
        name: str,
        group: str,
        replicas: tuple,
        app,
        config: CompartmentConfig,
        monitor=None,
        tracer=NULL_TRACER,
        service_time: float = 0.0,
    ):
        super().__init__(name)
        self.group = group
        self.replicas = tuple(replicas)
        self.app = app
        self.config = config
        self.monitor = monitor
        self.tracer = tracer
        self.service_time = service_time

        self.store = VariableStore()
        self.versions: dict = {}
        self._pending: dict[str, _PendingRead] = {}
        self._ready: deque = deque()
        self._next_free = 0.0
        self._service_timer = None
        self._sync_timer = None
        self._feed_rr = 0
        self.reads_served = 0

    # -- plumbing ---------------------------------------------------------

    def _count(self, name: str, **labels) -> None:
        if self.monitor is not None:
            self.monitor.counter(name, **labels).inc()

    def start(self) -> None:
        self._arm_sync()

    def on_recover(self) -> None:
        # Pending reads died with the crash (their clients will time out
        # onto the ordered path); the mirror itself is only ever stale,
        # never wrong, so keep it and pull a fresh snapshot on top.
        self._pending.clear()
        self._ready.clear()
        self._service_timer = None
        self._next_free = 0.0
        self._arm_sync()
        self._request_feed()

    def _arm_sync(self) -> None:
        self._sync_timer = self.set_periodic_timer(
            self.config.sync_period, self._sync_tick
        )

    def _sync_tick(self) -> None:
        self._request_feed()

    def _request_feed(self) -> None:
        replica = self.replicas[self._feed_rr % len(self.replicas)]
        self._feed_rr += 1
        self.send(replica, FeedRequest(self.name))

    # -- message handling -------------------------------------------------

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, ApplyUpdate):
            self._apply_entries(message.updates)
        elif isinstance(message, FeedSnapshot):
            self._apply_entries(message.entries)
        elif isinstance(message, LocalRead):
            self._on_local_read(message)
        elif isinstance(message, SeqAck):
            self._on_seq_ack(message)
        elif isinstance(message, ProbeReject):
            self._on_probe_reject(message)

    def _apply_entries(self, entries: tuple) -> None:
        advanced = False
        for var, version, value in entries:
            if version <= self.versions.get(var, 0):
                continue
            self.versions[var] = version
            if value is REMOVED:
                self.store.discard(var)
            else:
                self.store.insert_copy(var, value)
            advanced = True
        if advanced and self._pending:
            for uid in list(self._pending):
                self._try_ready(uid)

    # -- local reads ------------------------------------------------------

    def _on_local_read(self, msg: LocalRead) -> None:
        uid = msg.command.uid
        if uid in self._pending:
            return
        if not self.app.is_readonly(msg.command):
            # A mutating command must never execute against the mirror:
            # it would "succeed" locally without ever being ordered.
            # Bounce it to the ordered path (clients only send read-only
            # commands here, so this guards against bugs, not workloads).
            self._count("reads", event="local_reject")
            self.send(
                msg.client,
                Reply(uid, ReplyStatus.RETRY, None, msg.attempt, self.group),
            )
            return
        self._count("reads", event="local_attempt")
        self.tracer.begin(
            uid, "local-read", self.now, disc=msg.attempt, learner=self.name
        )
        pending = _PendingRead(
            msg.command, msg.client, msg.attempt, self.now + self.config.read_deadline
        )
        self._pending[uid] = pending
        self._probe(uid)
        pending.timer = self.set_timer(
            self.config.probe_retry, lambda: self._reprobe(uid)
        )

    def _probe(self, uid: str) -> None:
        pending = self._pending.get(uid)
        if pending is None:
            return
        self.send_all(
            self.replicas, SeqProbe(uid, pending.command, self.name)
        )

    def _reprobe(self, uid: str) -> None:
        pending = self._pending.get(uid)
        if pending is None:
            return
        if self.now >= pending.deadline:
            self._count("reads", event="local_deadline")
            self._bounce(uid, pending)
            return
        if pending.needed is None:
            # No leaseholder answer yet (no valid lease, deferred probe,
            # or a lost message): ask again.
            self._probe(uid)
        else:
            # Answered but the mirror lags: pull a snapshot to cover
            # lost feed deltas.
            self._request_feed()
        pending.timer = self.set_timer(
            self.config.probe_retry, lambda: self._reprobe(uid)
        )

    def _on_seq_ack(self, msg: SeqAck) -> None:
        pending = self._pending.get(msg.uid)
        if pending is None or pending.needed is not None:
            return
        pending.needed = dict(msg.versions)
        self._try_ready(msg.uid)

    def _on_probe_reject(self, msg: ProbeReject) -> None:
        pending = self._pending.get(msg.uid)
        if pending is None:
            return
        self._count("reads", event="local_reject")
        self._bounce(msg.uid, pending)

    def _bounce(self, uid: str, pending: _PendingRead) -> None:
        """RETRY: the client refreshes its cache and goes ordered."""
        self._drop(uid, pending)
        self.tracer.finish(uid, "local-read", self.now, disc=pending.attempt,
                           status="retry")
        self._reply(pending, ReplyStatus.RETRY, None)

    def _drop(self, uid: str, pending: _PendingRead) -> None:
        self._pending.pop(uid, None)
        if pending.timer is not None:
            pending.timer.cancel()

    def _try_ready(self, uid: str) -> None:
        pending = self._pending.get(uid)
        if pending is None or pending.needed is None:
            return
        for var, version in pending.needed.items():
            if self.versions.get(var, 0) < version:
                return
        self._drop(uid, pending)
        self._ready.append(pending)
        self._pump_reads()

    def _pump_reads(self) -> None:
        while self._ready:
            if self.service_time > 0 and self.now < self._next_free:
                if self._service_timer is None or not self._service_timer.active:
                    self._service_timer = self.set_timer(
                        self._next_free - self.now, self._pump_reads
                    )
                return
            pending = self._ready.popleft()
            if self.service_time > 0:
                self._next_free = max(self._next_free, self.now) + self.service_time
            self._serve(pending)

    def _serve(self, pending: _PendingRead) -> None:
        uid = pending.command.uid
        try:
            result = self.app.execute(pending.command, self.store)
            status = ReplyStatus.OK
        except (KeyError, ValueError) as exc:
            result = repr(exc)
            status = ReplyStatus.NOK
        self.reads_served += 1
        self._count("reads", event=f"local_{status.value}")
        self._count("learner_reads", learner=self.name)
        self.tracer.finish(uid, "local-read", self.now, disc=pending.attempt,
                           status=status.value)
        self._reply(pending, status, result)

    def _reply(self, pending: _PendingRead, status, result) -> None:
        uid = pending.command.uid
        self.tracer.begin(uid, "reply", self.now, disc=pending.attempt,
                          status=status.value, partition=self.group)
        self.send(
            pending.client,
            Reply(uid, status, result, pending.attempt, self.group),
        )
