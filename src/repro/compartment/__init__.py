"""Compartmentalized replication stages (Whittaker et al.).

The consensus pipeline of one partition group is decomposed into
independently scalable stages in front of and behind the replicated
core:

* :class:`~repro.compartment.proxy.ProxyLeader` — accepts, dedups and
  batches client submissions before they reach the Paxos leader, so
  ingress fan-in is no longer bounded by one leader actor.
* :class:`~repro.compartment.learner.ReadLearner` — a read-only learner
  holding a mirrored variable store fed by per-key-versioned deltas
  from the core replicas; a group can run any number of them, and each
  read executes on exactly *one* learner (unlike the replicated core,
  where every replica executes every command), which is what makes
  read throughput scale with learner count.
* leader leases (:mod:`repro.compartment.lease`) — granted through the
  consensus log on the virtual clock, renewed before expiry and
  conservatively never reissued to a new holder until the old expiry
  passes — let learners serve linearizable local reads without a
  quorum round-trip.

Everything here is opt-in via :class:`CompartmentConfig`; with
``enabled=False`` no stage actors, timers, messages or RNG draws exist,
so seeded runs stay byte-identical to a build without this package.
"""

from repro.compartment.config import CompartmentConfig
from repro.compartment.lease import Lease, apply_grant, holder_at
from repro.compartment.messages import (
    ApplyUpdate,
    FeedRequest,
    FeedSnapshot,
    LeaseGrant,
    LocalRead,
    ProbeReject,
    ProxyBatch,
    REMOVED,
    SeqAck,
    SeqProbe,
)
from repro.compartment.learner import ReadLearner
from repro.compartment.proxy import ProxyLeader

__all__ = [
    "ApplyUpdate",
    "CompartmentConfig",
    "FeedRequest",
    "FeedSnapshot",
    "Lease",
    "LeaseGrant",
    "LocalRead",
    "ProbeReject",
    "ProxyBatch",
    "ProxyLeader",
    "REMOVED",
    "ReadLearner",
    "SeqAck",
    "SeqProbe",
    "apply_grant",
    "holder_at",
]
