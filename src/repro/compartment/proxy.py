"""Proxy leaders: the scale-out ingress stage of a partition group.

Clients (and the oracle redirect path) multicast ordering submissions;
with compartmentalization on, the group directory routes each
submission to *one* proxy leader instead of fanning it out to every
core replica.  The proxy dedups by message uid, batches, and forwards
:class:`~repro.compartment.messages.ProxyBatch` to the core replicas —
so per-command ingress fan-in lands on a horizontally scalable stage
and the Paxos leader receives pre-batched work.

Proxies are stateless from the protocol's point of view: their buffer
and dedup window are volatile (dropped on crash), because the Paxos
layer dedups by uid anyway and clients re-submit on timeout under a
fresh attempt uid, which re-rolls the proxy choice.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from repro.consensus.messages import Submit
from repro.multicast.basecast import OrderEvent
from repro.compartment.messages import ProxyBatch
from repro.sim.actors import Actor

#: Bounded dedup window: uids of recently forwarded submissions.
_DEDUP_WINDOW = 8192


class ProxyLeader(Actor):
    """One ingress proxy of a partition group."""

    def __init__(
        self,
        name: str,
        group: str,
        replicas: tuple,
        batch_delay: float,
        max_batch: int,
        monitor=None,
    ):
        super().__init__(name)
        self.group = group
        self.replicas = tuple(replicas)
        self.batch_delay = batch_delay
        self.max_batch = max_batch
        self.monitor = monitor
        self._buffer: list = []
        self._seen: OrderedDict = OrderedDict()
        self._batch_timer: Optional[Any] = None

    def _count(self, name: str, **labels) -> None:
        if self.monitor is not None:
            self.monitor.counter(name, **labels).inc()

    def start(self) -> None:
        """No standing timers; the batch timer is armed on demand."""

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, Submit) or not isinstance(
            message.value, OrderEvent
        ):
            return
        event = message.value
        uid = event.message.uid
        if uid in self._seen:
            self._count("proxy", event="dup")
            return
        self._seen[uid] = None
        while len(self._seen) > _DEDUP_WINDOW:
            self._seen.popitem(last=False)
        self._count("proxy", event="submit")
        self._buffer.append(event)
        if len(self._buffer) >= self.max_batch:
            self._flush()
        elif self._batch_timer is None or not self._batch_timer.active:
            self._batch_timer = self.set_timer(self.batch_delay, self._flush)

    def _flush(self) -> None:
        if not self._buffer:
            return
        batch = ProxyBatch(tuple(self._buffer))
        self._buffer.clear()
        self._count("proxy", event="batch")
        self.send_all(self.replicas, batch)

    def crash(self) -> None:
        super().crash()
        # Volatile stage memory: buffered submissions die with the proxy;
        # clients time out and retry under a fresh attempt uid.
        self._buffer.clear()
        self._seen.clear()
        self._batch_timer = None
