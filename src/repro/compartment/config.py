"""Configuration for the compartmentalized pipeline stages."""

from __future__ import annotations

from dataclasses import dataclass


def _positive_int(name: str, value) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(f"{name} must be a positive int, got {value!r}")


def _positive(name: str, value) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


@dataclass
class CompartmentConfig:
    """Knobs for proxy leaders, read learners and leader leases.

    ``enabled=False`` (the default) is a hard off switch: the system
    builder creates no stage actors and the core protocol is untouched,
    so seeded traces are byte-identical to a non-compartmentalized
    build.
    """

    enabled: bool = False

    #: Proxy-leader stage: how many ingress proxies per partition group,
    #: and how long/large they batch before forwarding to the core.
    n_proxy_leaders: int = 2
    proxy_batch_delay: float = 0.0005
    proxy_max_batch: int = 64

    #: Read-learner stage: how many read-only learners per partition
    #: group.  Each local read executes on exactly one learner, so read
    #: throughput scales with this count.
    n_learners: int = 2

    #: Leader leases.  ``lease_enabled=False`` keeps the stage actors
    #: (proxies still batch writes) but routes every read through the
    #: ordered path — the ablation arm of the read experiments.
    lease_enabled: bool = True
    lease_duration: float = 1.0
    lease_renew_margin: float = 0.3

    #: Learner read protocol: re-probe cadence while the leaseholder
    #: defers, and the deadline after which the learner gives up and
    #: bounces the client to the ordered path with RETRY.
    probe_retry: float = 0.02
    read_deadline: float = 0.5

    #: Slow background full-store resync (learner pulls a snapshot from
    #: a core replica), bounding staleness after lost feed deltas.
    sync_period: float = 1.0

    def __post_init__(self) -> None:
        _positive_int("n_proxy_leaders", self.n_proxy_leaders)
        _positive_int("n_learners", self.n_learners)
        _positive_int("proxy_max_batch", self.proxy_max_batch)
        _positive("proxy_batch_delay", self.proxy_batch_delay)
        _positive("lease_duration", self.lease_duration)
        _positive("lease_renew_margin", self.lease_renew_margin)
        _positive("probe_retry", self.probe_retry)
        _positive("read_deadline", self.read_deadline)
        _positive("sync_period", self.sync_period)
        if self.lease_renew_margin >= self.lease_duration:
            raise ValueError(
                "lease_renew_margin must be smaller than lease_duration, got "
                f"{self.lease_renew_margin!r} >= {self.lease_duration!r}"
            )
