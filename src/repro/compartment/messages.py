"""Messages exchanged by the compartmentalized pipeline stages."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.smr.command import Command


class _Removed:
    """Sentinel marking a deleted variable in a feed delta/snapshot."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<removed>"


#: Value slot of a feed entry whose variable was removed.
REMOVED = _Removed()


@dataclass(frozen=True, slots=True)
class ProxyBatch:
    """Proxy leader -> core replicas: a deduplicated batch of ordering
    submissions (:class:`~repro.multicast.basecast.OrderEvent`)."""

    events: tuple


@dataclass(frozen=True, slots=True)
class LocalRead:
    """Client -> read learner: serve this read-only command locally
    (lease-checked), or bounce it to the ordered path with RETRY."""

    command: Command
    client: str
    attempt: int


@dataclass(frozen=True, slots=True)
class SeqProbe:
    """Learner -> core replicas: which feed versions must I reach before
    ``command`` reads linearizably?  Only the group's current valid
    leaseholder answers (with :class:`SeqAck` or :class:`ProbeReject`);
    everyone else stays silent and the learner re-probes."""

    uid: str
    command: Command
    learner: str


@dataclass(frozen=True, slots=True)
class SeqAck:
    """Leaseholder -> learner: per-variable feed versions the learner
    must have applied before executing the probed read."""

    uid: str
    versions: tuple  # ((var, version), ...)
    holder: str


@dataclass(frozen=True, slots=True)
class ProbeReject:
    """Leaseholder -> learner: this partition cannot serve the read
    (not the owner / retiring); the learner replies RETRY so the client
    refreshes its cache and takes the ordered path."""

    uid: str
    reason: str


@dataclass(frozen=True, slots=True)
class ApplyUpdate:
    """Core replica -> learners: per-key-versioned store deltas.

    Every core replica feeds every learner; entries carry the logical
    per-variable mutation index (identical across replicas for the same
    executed prefix), so learners apply them monotonically per key and
    duplicate/out-of-order deliveries are no-ops."""

    updates: tuple  # ((var, version, value-or-REMOVED), ...)


@dataclass(frozen=True, slots=True)
class FeedRequest:
    """Learner -> one core replica: send me a full store snapshot (used
    when a pending read stalls on missing deltas, and by the slow
    periodic resync tick)."""

    learner: str


@dataclass(frozen=True, slots=True)
class FeedSnapshot:
    """Core replica -> learner: full versioned store contents."""

    entries: tuple  # ((var, version, value-or-REMOVED), ...)


@dataclass(frozen=True, slots=True)
class LeaseGrant:
    """A leader-lease grant/renewal, submitted as a plain consensus log
    value so every replica applies it at the same log position.

    Validity is decided deterministically at apply time against the
    replica's current lease state (see :mod:`repro.compartment.lease`);
    an entry that loses the race is simply ignored by everyone."""

    uid: str
    holder: str
    granted_at: float
    expires_at: float
