"""DynaStar partition servers.

A :class:`PartitionServer` is a multicast replica hosting the application
state machine for one partition.  A-delivered payloads enter an execution
queue processed strictly in delivery order (the SMR contract).  The head
of the queue may block while

* borrowed variables for a multi-partition command are in flight
  (target side),
* lent variables are on their way back (source side, Algorithm 3
  line 17), or
* a node this partition now owns is still in transit under a
  repartitioning plan.

Everything behind the head waits — multi-partition commands really are
expensive here, which is precisely the cost DynaStar's repartitioning
optimizes away.  Plan-driven relocation itself does **not** block the
queue: only commands touching a still-in-transit node wait.

Staleness: if a command's believed locations disagree with the current
plan, the server answers ``RETRY`` and aborts the gather (notifying the
other involved partitions), and the client refreshes its cache at the
oracle — the retry mechanism of §4.3.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Optional

from repro.compartment.config import CompartmentConfig
from repro.compartment.lease import Lease, apply_grant, held_by
from repro.compartment.messages import (
    ApplyUpdate,
    FeedRequest,
    FeedSnapshot,
    LeaseGrant,
    ProbeReject,
    ProxyBatch,
    REMOVED,
    SeqAck,
    SeqProbe,
)
from repro.consensus.messages import Submit
from repro.core.admission import ADMIT, AdmissionController
from repro.core.messages import (
    CreateVar,
    DeleteVar,
    DrainComplete,
    ExecCommand,
    ExecutionHint,
    GlobalCommand,
    PartitionPlan,
    PlanTransfer,
    ReliableAck,
    ReliableMsg,
    ServerBusy,
    TransferFailed,
    VarReturn,
    VarTransfer,
)
from repro.multicast.basecast import MulticastReplica
from repro.multicast.messages import MulticastMessage, OrderEvent
from repro.obs import audit as audit_mod
from repro.obs.audit import NULL_AUDIT, AuditLog
from repro.sim.monitor import Monitor
from repro.smr.command import Reply, ReplyStatus
from repro.smr.fastcopy import copy_value
from repro.smr.statemachine import (
    AppStateMachine,
    VariableStore,
    footprint_of,
    footprints_conflict,
)

#: Commands touching more nodes than this record a star instead of a
#: clique in the workload-graph hint (keeps hint sizes linear for e.g.
#: celebrity posts that touch hundreds of users).
CLIQUE_HINT_LIMIT = 12

#: Retry-After attached to "retired" NACKs when admission control (which
#: has its own configured value) is disabled.
RETIRED_RETRY_AFTER = 0.05


class PartitionServer(MulticastReplica):
    """One replica of a data partition."""

    def __init__(
        self,
        *args,
        app: Optional[AppStateMachine] = None,
        monitor: Optional[Monitor] = None,
        mode: str = "dynastar",
        oracle_group: str = "oracle",
        hint_period: float = 1.0,
        hints_enabled: bool = True,
        service_time: float = 0.0,
        lanes: int = 1,
        retransmit_period: float = 0.5,
        admission_bound: Optional[int] = None,
        admission_headroom: Optional[int] = None,
        admission_retry_after: float = 0.05,
        admission_ttl: float = 30.0,
        audit: Optional[AuditLog] = None,
        compartment: Optional[CompartmentConfig] = None,
        learner_names: tuple = (),
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.app = app
        self.monitor = monitor or Monitor()
        #: Shared decision audit log; replica 0 records relocation /
        #: quiesce events (metrics convention).
        self.audit = audit if audit is not None else NULL_AUDIT
        self.mode = mode
        self.oracle_group = oracle_group
        self.hint_period = hint_period
        self.hints_enabled = hints_enabled and mode == "dynastar"
        #: Virtual CPU time one command execution occupies the partition
        #: for.  0 disables the model (protocol tests); benchmarks set it
        #: so throughput saturates like a real server.
        self.service_time = service_time
        self._next_free = 0.0
        self._service_timer = None
        #: Virtual execution lanes (dependency-aware parallel execution,
        #: P-SMR-style).  ``lanes=1`` keeps the legacy strictly serial
        #: pump byte-for-byte; ``lanes>1`` lets non-conflicting decided
        #: commands overlap in simulated service time and bypass a head
        #: stalled on in-transit borrowed variables.
        self.lanes = max(1, int(lanes))
        self._lane_free = [0.0] * self.lanes
        self._last_lane = 0
        #: Per-payload protocol state, keyed (uid, attempt) — the lanes
        #: equivalent of ``_head_state`` (which is head-coupled and so
        #: only sound for the serial pump).  Stable: checkpointed.
        self._cmd_states: dict[tuple, dict] = {}
        #: Conflict-footprint cache, derivable from app + command:
        #: volatile by design.
        self._fp_cache: dict[tuple, Any] = {}

        #: Ingress admission control (queue-based load leveling); None
        #: disables it.  Volatile by design — not checkpointed; the TTL
        #: sweep reclaims slots a crash or give-up leaked.
        self.admission = (
            AdmissionController(
                admission_bound,
                admission_headroom,
                admission_retry_after,
                admission_ttl,
            )
            if admission_bound is not None
            else None
        )

        self.partition = self.group
        self.store = VariableStore()

        # Compartmentalized pipeline (None/disabled => zero footprint:
        # no observer, no timers, no extra messages).
        self.compartment = compartment
        self.learner_names = tuple(learner_names)
        self._compartment_enabled = (
            compartment is not None and compartment.enabled
        )
        self._lease_enabled = (
            self._compartment_enabled and compartment.lease_enabled
        )
        #: Per-variable logical mutation index — the learner-feed version.
        #: Deterministic across replicas for the same executed prefix, and
        #: kept complete (removed variables keep their last version) so
        #: snapshots can carry tombstones.
        self._feed_versions: dict = {}
        self._feed_dirty: dict = {}
        self._feed_timer = None
        #: Replicated lease state (applied through the log) plus local
        #: holder-side bookkeeping.
        self._lease: Optional[Lease] = None
        self._lease_seq = 0
        #: A recovered (or fault-injected) holder abandons its own lease:
        #: it stops answering probes and renewing until this time passes,
        #: then re-acquires through the log — which forces it to first
        #: catch up on everything ordered while it was down.
        self._lease_abandoned_until = 0.0
        self._lease_expiry_noted = 0.0
        if self._compartment_enabled and self.learner_names:
            self.store.set_observer(self._on_store_mutation)

        self.owned_nodes: set = set()
        self.node_vars: dict[Any, set] = {}
        self.in_transit: set = set()
        self.version = 0
        self.last_plan: dict[Any, str] = {}

        # Elastic retirement (merge reconfiguration).  ``draining``: a
        # cutover plan listed this partition as retiring — ship state out,
        # NACK fresh client traffic, announce DrainComplete when empty.
        # ``retired``: the DrainComplete a-delivered in our own log — the
        # totally ordered point after which this group only answers
        # stragglers.  Both are stable (checkpointed) state.
        self.draining = False
        self.retired = False
        self._drain_version = 0
        self._drain_timer_armed = False
        #: Re-announce cadence while drained (uid-deduped, so repeats are
        #: free); survives total loss of the first announcement.
        self.drain_period = 0.5

        self.queue: deque = deque()
        self._head_state: dict = {}

        self.recv_transfers: dict[str, dict[str, tuple]] = {}
        self.transfer_failures: dict[str, set] = {}
        self.recv_returns: dict[str, dict[str, tuple]] = {}
        self.aborted_cmds: set = set()
        self._finished_cmds: set = set()
        self._plan_transfer_seen: set = set()
        self._early_plan_transfers: dict = {}

        # Exactly-once under client retries: cached (status, result,
        # attempt, idem_key) per executed command uid, and which uids
        # touched which node (so the cache migrates with the node under
        # repartitioning plans).  The idempotency-key index bridges
        # give-up-and-resubmit retries that arrive under a *fresh* uid.
        self._exec_results: dict[str, tuple] = {}
        self._idem_index: dict[str, str] = {}
        self._node_uids: dict[Any, list] = {}

        # Reliable replica-to-replica channel (transfer/return/abort and
        # plan-move traffic must survive loss and receiver crashes).
        #: 0 disables retransmission (pure reliable-network runs).
        self.retransmit_period = retransmit_period
        self._outbox: dict[tuple, ReliableMsg] = {}
        self._reliable_seen: set = set()

        self._hint_vertices: Counter = Counter()
        self._hint_edges: Counter = Counter()
        self._hint_seq = 0

        self.executed_count = 0
        self.multi_partition_count = 0

        # Labeled per-partition series, resolved once — the label-suffix
        # rendering is too costly for the per-command hot path.
        self._partition_series: dict[str, object] = {}

    # -- bootstrap -----------------------------------------------------------

    def preload(self, variables: dict, nodes: set, plan: dict) -> None:
        """Install the initial variables/ownership (system builder)."""
        for var, value in variables.items():
            self.store.insert_copy(var, value)
            self._index_var(var)
        self.owned_nodes.update(nodes)
        self.last_plan.update(plan)

    def start(self) -> None:
        super().start()
        if self.hints_enabled:
            self.set_periodic_timer(self.hint_period, self._flush_hints)
        if self.retransmit_period > 0:
            self.set_periodic_timer(self.retransmit_period, self._retransmit_outbox)
        if self._lease_enabled:
            self.set_periodic_timer(
                self.compartment.lease_renew_margin / 2, self._lease_tick
            )

    def on_recover(self) -> None:
        self._service_timer = None
        self._next_free = 0.0
        self._lane_free = [0.0] * self.lanes
        self._drain_timer_armed = False
        self._feed_timer = None
        if self._lease is not None and self._lease.holder == self.name:
            # A recovered holder cannot trust reads against its possibly
            # stale execution state: abandon the lease and re-acquire it
            # through the log after the old expiry.
            self._abandon_lease()
        super().on_recover()
        # The execution queue and gather buffers are stable; whatever was
        # ready to run before the crash can run again now.
        self._pump()
        # A crash mid-drain must not wedge retirement: re-arm the
        # announcement loop (the drain uid dedups any pre-crash copy).
        if self.draining and not self.retired:
            self._arm_drain_timer()
            self._maybe_announce_drain()

    @property
    def _records_metrics(self) -> bool:
        return self.index == 0

    # -- variable index ---------------------------------------------------------

    def _index_var(self, var: Any) -> None:
        node = self.app.graph_node_of(var)
        self.node_vars.setdefault(node, set()).add(var)

    def _unindex_var(self, var: Any) -> None:
        node = self.app.graph_node_of(var)
        bucket = self.node_vars.get(node)
        if bucket is not None:
            bucket.discard(var)
            if not bucket:
                del self.node_vars[node]

    def _tracked_execute(self, command):
        """Run the app with mutation tracking; returns
        (result, status, written, removed) and keeps the index in sync."""
        from repro.smr.command import ReplyStatus as _RS

        self.store.begin_tracking()
        try:
            result = self.app.execute(command, self.store)
            status = _RS.OK
        except (KeyError, ValueError) as exc:
            result = repr(exc)
            status = _RS.NOK
        written, removed = self.store.end_tracking()
        for var in written:
            self._index_var(var)
        for var in removed:
            self._unindex_var(var)
        return result, status, written, removed

    def _borrowable_vars(self, command, claimed_nodes: set) -> list:
        """The variables this partition must ship when lending its part of
        ``command``: the concrete declared vars living on claimed nodes,
        plus every variable of claimed wildcard nodes."""
        vars_out = []
        for var in sorted(self.app.concrete_variables_of(command), key=repr):
            if self.app.graph_node_of(var) in claimed_nodes and var in self.store:
                vars_out.append(var)
        for node in sorted(self.app.wildcard_nodes_of(command), key=repr):
            if node in claimed_nodes:
                node_vars = self.node_vars.get(node, set())
                selected = self.app.borrow_variables(
                    command, node, self.store, node_vars
                )
                if selected is None:
                    selected = node_vars
                for var in sorted(selected, key=repr):
                    if var not in vars_out and var in self.store:
                        vars_out.append(var)
        return vars_out

    # -- ingress admission control ----------------------------------------------

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, Submit) and isinstance(message.value, OrderEvent):
            if (self.draining or self.retired) and not self._admit_retiring(
                sender, message.value.message
            ):
                return
            if self.admission is not None and not self._admit(
                sender, message.value.message
            ):
                return
        elif isinstance(message, ProxyBatch):
            for event in message.events:
                self._on_proxied_submit(event)
            return
        super().on_message(sender, message)

    def _on_proxied_submit(self, event: OrderEvent) -> None:
        """A submission relayed by a proxy leader.  The admission gates
        key on ``payload.client == sender`` to wave protocol-internal
        traffic through — a proxied client command must NOT ride that
        exemption, so gate it as if the client had sent it directly."""
        msg = event.message
        client = getattr(msg.payload, "client", None)
        if client is not None:
            if (self.draining or self.retired) and not self._admit_retiring(
                client, msg
            ):
                return
            if self.admission is not None and not self._admit(client, msg):
                return
        self.submit(event)

    def _admit_retiring(self, sender: str, msg: MulticastMessage) -> bool:
        """A retiring partition refuses fresh client traffic at the same
        consensus ingress as admission control: the command never enters
        the log through this replica, so replicas cannot disagree about
        what a draining group executes.  The ``retired`` Retry-After NACK
        tells the client to drop its cached location and re-query the
        oracle, which now maps every node elsewhere."""
        payload = msg.payload
        if not isinstance(payload, (ExecCommand, GlobalCommand)):
            return True
        if payload.client != sender:
            return True
        cmd_uid = payload.command.uid
        if (
            msg.uid in self.adelivered_uids
            or msg.uid in self.pending_msgs
            or cmd_uid in self._exec_results
        ):
            # Already ordered or already answered — the cache replies.
            return True
        if isinstance(payload, GlobalCommand) and self._has_claimed_borrows(
            cmd_uid
        ):
            return True
        self.monitor.counter(
            "reconfig", partition=self.partition, event="nacked"
        ).inc()
        if self.tracer.enabled:
            self.tracer.event(
                cmd_uid, "retired-nack", self.now,
                partition=self.partition, replica=self.index,
                attempt=payload.attempt,
            )
        retry_after = (
            self.admission.retry_after
            if self.admission is not None
            else RETIRED_RETRY_AFTER
        )
        self.send(
            payload.client,
            ServerBusy(
                uid=cmd_uid,
                attempt=payload.attempt,
                partition=self.partition,
                retry_after=retry_after,
                reason="retired",
            ),
        )
        return False

    def _admit(self, sender: str, msg: MulticastMessage) -> bool:
        """Queue-based load leveling at the consensus *ingress*.

        Only client-originated submissions are gated (``payload.client ==
        sender``); protocol-internal retransmits and ordering probes come
        from peer replicas and always pass, so a partially ordered
        multi-group command cannot wedge behind the gate.  A refused
        command never enters any log, which is what keeps the replicas of
        a partition in agreement about what executes — a post-ordering
        shed would depend on per-replica queue depth and diverge.
        """
        payload = msg.payload
        if not isinstance(payload, (ExecCommand, GlobalCommand)):
            return True
        if payload.client != sender:
            return True
        cmd_uid = payload.command.uid
        if (
            msg.uid in self.adelivered_uids
            or msg.uid in self.pending_msgs
            or cmd_uid in self._exec_results
        ):
            # Already ordered or already answered — letting it through is
            # cheaper than bouncing (the reply comes from the cache).
            return True
        multi = isinstance(payload, GlobalCommand)
        if multi and self._has_claimed_borrows(cmd_uid):
            # Never shed a command whose borrows are in flight: aborting
            # a half-gathered multi-partition command costs every
            # involved partition another round.
            return True
        outcome = self.admission.offer(cmd_uid, self.now, priority=multi)
        if self._records_metrics:
            self._pseries("admission_depth").record(self.now, self.admission.depth)
        if outcome == ADMIT:
            return True
        self._refuse(payload, outcome)
        return False

    def _has_claimed_borrows(self, cmd_uid: str) -> bool:
        return any(k[0] == cmd_uid for k in self.recv_transfers) or any(
            k[0] == cmd_uid for k in self.recv_returns
        )

    def _refuse(self, payload, outcome: str) -> None:
        """Bounce a refused command back to the client with Retry-After.

        Unlike execution metrics (one logical event per partition, so
        only replica 0 counts), every refusal is a distinct per-replica
        decision and a real ``ServerBusy`` on the wire — each replica
        counts its own."""
        self.monitor.counter(
            "admission", partition=self.partition, outcome=outcome
        ).inc()
        if self.tracer.enabled:
            self.tracer.event(
                payload.command.uid, outcome, self.now,
                partition=self.partition, replica=self.index,
                attempt=payload.attempt,
            )
        self.send(
            payload.client,
            ServerBusy(
                uid=payload.command.uid,
                attempt=payload.attempt,
                partition=self.partition,
                retry_after=self.admission.retry_after,
                reason=outcome,
            ),
        )

    def _admission_release(self, cmd_uid: str) -> None:
        if self.admission is not None:
            self.admission.release(cmd_uid)

    # -- a-delivery --------------------------------------------------------------

    def adeliver(self, msg: MulticastMessage) -> None:
        self._trace_adeliver(msg.payload)
        self.queue.append(msg.payload)
        self._pump()

    def _pseries(self, name: str):
        """This partition's labeled series for ``name``, cached."""
        series = self._partition_series.get(name)
        if series is None:
            series = self.monitor.series(name, partition=self.partition)
            self._partition_series[name] = series
        return series

    def _trace_adeliver(self, payload: Any) -> None:
        """A-delivery at the *executing* partition ends ``multicast-order``
        and opens ``queue`` (time spent waiting in the execution queue
        plus the service gate).  Source partitions of a multi-partition
        command a-deliver too but must not close the span — the command
        has not reached its target yet from the client's point of view."""
        if not self.tracer.enabled:
            return
        if isinstance(payload, (ExecCommand, GlobalCommand)):
            executing = getattr(payload, "target", self.partition) == self.partition
        elif isinstance(payload, (CreateVar, DeleteVar)):
            executing = payload.partition == self.partition
        else:
            return
        if not executing:
            return
        uid = payload.command.uid
        self.tracer.finish(
            uid, "multicast-order", self.now, disc=payload.attempt,
            partition=self.partition,
        )
        self.tracer.begin(
            uid, "queue", self.now, disc=payload.attempt,
            partition=self.partition, attempt=payload.attempt,
        )

    def on_app_message(self, sender: str, message: Any) -> None:
        if isinstance(message, ReliableMsg):
            # Always ack (duplicates included) so every sender replica
            # stops retransmitting; dispatch the payload once per uid.
            self.send(sender, ReliableAck(message.uid))
            if message.uid in self._reliable_seen:
                return
            self._reliable_seen.add(message.uid)
            self.on_app_message(sender, message.payload)
        elif isinstance(message, ReliableAck):
            self._outbox.pop((sender, message.uid), None)
            if self.draining and not self._outbox:
                self._maybe_announce_drain()
        elif isinstance(message, VarTransfer):
            self._on_var_transfer(message)
        elif isinstance(message, VarReturn):
            self._on_var_return(message)
        elif isinstance(message, TransferFailed):
            self._on_transfer_failed(message)
        elif isinstance(message, PlanTransfer):
            self._on_plan_transfer(message)
        elif isinstance(message, SeqProbe):
            self._on_seq_probe(message)
        elif isinstance(message, FeedRequest):
            self._on_feed_request(message)

    # -- compartmentalized stages: learner feed ------------------------------------

    def _on_store_mutation(self, var: Any, removed: bool) -> None:
        """Store observer (every mutation path funnels through it): bump
        the variable's logical version, remember the dirty entry, and arm
        a zero-delay flush so one execution's writes ship as one delta."""
        self._feed_versions[var] = self._feed_versions.get(var, 0) + 1
        self._feed_dirty[var] = removed
        if self._feed_timer is None or not self._feed_timer.active:
            self._feed_timer = self.set_timer(0.0, self._flush_feed)

    def _feed_entry(self, var: Any) -> tuple:
        if var in self.store:
            value = self.store.get(var)
        else:
            value = REMOVED
        return (var, self._feed_versions.get(var, 0), value)

    def _flush_feed(self) -> None:
        if not self._feed_dirty:
            return
        updates = tuple(
            self._feed_entry(var)
            for var in sorted(self._feed_dirty, key=repr)
        )
        self._feed_dirty.clear()
        # Deep-copy once per delta; learners apply idempotently per key,
        # so every replica feeding every learner is redundancy, not risk.
        delta = ApplyUpdate(
            tuple(
                (var, version, value if value is REMOVED else copy_value(value))
                for var, version, value in updates
            )
        )
        self.send_all(self.learner_names, delta)

    def _on_feed_request(self, msg: FeedRequest) -> None:
        if not self._compartment_enabled:
            return
        entries = tuple(
            self._feed_entry(var)
            for var in sorted(self._feed_versions, key=repr)
        )
        snapshot = FeedSnapshot(
            tuple(
                (var, version, value if value is REMOVED else copy_value(value))
                for var, version, value in entries
            )
        )
        self.send(msg.learner, snapshot)

    # -- compartmentalized stages: leader leases -----------------------------------

    def _abandon_lease(self) -> None:
        if self._lease is not None:
            self._lease_abandoned_until = max(
                self._lease_abandoned_until, self._lease.expires_at
            )

    def _lease_tick(self) -> None:
        lease = self._lease
        if (
            lease is not None
            and self.now >= lease.expires_at
            and self._lease_expiry_noted < lease.expires_at
        ):
            self._lease_expiry_noted = lease.expires_at
            if self._records_metrics:
                self.monitor.counter(
                    "lease", partition=self.partition, event="expired"
                ).inc()
        if self.retired or self.draining or not self.is_leader:
            return
        if self.now < self._lease_abandoned_until:
            return
        if lease is not None:
            if lease.holder == self.name:
                if (
                    self.now < lease.expires_at
                    and lease.expires_at - self.now
                    > self.compartment.lease_renew_margin
                ):
                    return  # still fresh, no renewal needed yet
            elif self.now < lease.expires_at:
                # Conservative hand-over: never propose over a live lease;
                # the grant would be rejected at apply time anyway.
                return
        self._lease_seq += 1
        granted = self.now
        self.submit(
            LeaseGrant(
                uid=f"lease:{self.name}:{self._lease_seq}:{granted:.6f}",
                holder=self.name,
                granted_at=granted,
                expires_at=granted + self.compartment.lease_duration,
            )
        )

    def deliver_value(self, value: Any) -> None:
        if isinstance(value, LeaseGrant):
            self._apply_lease_grant(value)
            return
        super().deliver_value(value)

    def _apply_lease_grant(self, grant: LeaseGrant) -> None:
        """Log-ordered, deterministic: every replica applies the same
        grants in the same order against the same lease state."""
        previous = self._lease
        self._lease, accepted = apply_grant(previous, grant)
        if self._records_metrics:
            if not accepted:
                event = "rejected"
            elif previous is not None and previous.holder == grant.holder:
                event = "renewed"
            else:
                event = "granted"
            self.monitor.counter(
                "lease", partition=self.partition, event=event
            ).inc()

    # -- compartmentalized stages: lease-checked read probes -----------------------

    def _payload_touches(self, payload: Any, nodes: frozenset) -> bool:
        command = getattr(payload, "command", None)
        if command is None:
            # Plans, drains, unknown payloads: assume the worst.
            return True
        return bool(nodes & self.app.nodes_of(command))

    def _must_defer_probe(self, nodes: frozenset) -> bool:
        """True while an already-ordered (or still-ordering) command could
        still mutate the probed variables.  The leader learns every
        decision first and delivers strictly in order, so anything any
        replica may have executed and replied is — at this replica, the
        leaseholding leader — either executed (covered by the feed
        versions) or visible in these buffers (deferred)."""
        if any(node in self.in_transit for node in nodes):
            return True
        for payload in self.queue:
            if self._payload_touches(payload, nodes):
                return True
        for entry in self.pending_msgs.values():
            if self._payload_touches(entry.message.payload, nodes):
                return True
        return False

    def _on_seq_probe(self, probe: SeqProbe) -> None:
        """Answer a learner's read probe — only as the valid leaseholder.

        Silence (no valid lease, abandoned lease, deferred answer) makes
        the learner re-probe until its deadline; rejection bounces the
        client to the ordered path via RETRY."""
        if not self._lease_enabled:
            return
        if (
            not held_by(self._lease, self.name, self.now)
            or self.now < self._lease_abandoned_until
            or not self.is_leader
        ):
            return
        if self.retired or self.draining:
            self.send(probe.learner, ProbeReject(probe.uid, "retiring"))
            return
        if not self.app.is_readonly(probe.command):
            # A mutating command must never be served off a learner
            # mirror — bounce it to the ordered path.
            self.send(probe.learner, ProbeReject(probe.uid, "not-readonly"))
            return
        nodes = self.app.nodes_of(probe.command)
        if any(
            node not in self.owned_nodes and node not in self.in_transit
            for node in nodes
        ):
            if self._records_metrics:
                self.monitor.counter(
                    "lease", partition=self.partition, event="probe_rejected"
                ).inc()
            self.send(probe.learner, ProbeReject(probe.uid, "not-owner"))
            return
        if self._must_defer_probe(nodes):
            if self._records_metrics:
                self.monitor.counter(
                    "lease", partition=self.partition, event="probe_deferred"
                ).inc()
            return
        versions = []
        for node in sorted(nodes, key=repr):
            for var in sorted(self.node_vars.get(node, ()), key=repr):
                versions.append((var, self._feed_versions.get(var, 0)))
        for var in sorted(
            self.app.concrete_variables_of(probe.command), key=repr
        ):
            entry = (var, self._feed_versions.get(var, 0))
            if entry not in versions:
                versions.append(entry)
        if self._records_metrics:
            self.monitor.counter(
                "lease", partition=self.partition, event="probe_answered"
            ).inc()
        self.send(
            probe.learner, SeqAck(probe.uid, tuple(versions), self.name)
        )

    # -- the execution queue -------------------------------------------------------

    def _pump(self) -> None:
        if self.lanes <= 1:
            self._pump_serial()
        else:
            self._pump_lanes()

    def _pump_serial(self) -> None:
        """The legacy strictly serial executor (``lanes=1``): the queue
        head blocks everything behind it."""
        while self.queue:
            head = self.queue[0]
            if isinstance(head, ExecCommand):
                done = self._try_exec(head)
            elif isinstance(head, GlobalCommand):
                done = self._try_global(head)
            elif isinstance(head, CreateVar):
                done = self._apply_create(head)
            elif isinstance(head, DeleteVar):
                done = self._apply_delete(head)
            elif isinstance(head, PartitionPlan):
                done = self._apply_plan(head)
            elif isinstance(head, DrainComplete):
                done = self._apply_drain_complete(head)
            else:
                done = True  # unknown payloads are skipped
            if not done:
                return
            self.queue.popleft()
            self._head_state = {}

    def _pump_lanes(self) -> None:
        """Dependency-aware scheduler (``lanes>1``).

        Scans the decided prefix front-to-back.  A command may dispatch
        out of log order iff its conflict footprint (read/write variable
        sets, wildcards at node granularity) is disjoint from every
        not-yet-executed command ahead of it — so conflicting commands
        retain log order, and a head stalled on in-transit borrowed
        variables no longer blocks independent commands behind it.

        Ownership-changing payloads (create/delete/plan/drain) are
        barriers: they run only at the very front of the queue and
        nothing may pass them — they are the only payloads that change
        node ownership, which is what makes the bypassing commands'
        ownership/RETRY checks order-insensitive.
        """
        progressed = True
        while progressed:
            progressed = False
            blockers: list = []
            idx = 0
            while idx < len(self.queue):
                payload = self.queue[idx]
                if isinstance(payload, (ExecCommand, GlobalCommand)):
                    fp = self._footprint(payload)
                    if any(footprints_conflict(fp, b) for b in blockers):
                        blockers.append(fp)
                        idx += 1
                        continue
                    if not self._lanes_gate():
                        return  # every lane busy; re-pump when one frees
                    if isinstance(payload, ExecCommand):
                        done = self._try_exec(payload)
                    else:
                        done = self._try_global(payload)
                    if done:
                        del self.queue[idx]
                        self._drop_cmd_state(payload)
                        progressed = True
                        break  # restart the scan: lanes/state changed
                    blockers.append(fp)
                    idx += 1
                else:
                    if idx > 0:
                        return  # barrier: nothing behind it may run
                    if isinstance(payload, CreateVar):
                        done = self._apply_create(payload)
                    elif isinstance(payload, DeleteVar):
                        done = self._apply_delete(payload)
                    elif isinstance(payload, PartitionPlan):
                        done = self._apply_plan(payload)
                    elif isinstance(payload, DrainComplete):
                        done = self._apply_drain_complete(payload)
                    else:
                        done = True  # unknown payloads are skipped
                    if not done:
                        return
                    self.queue.popleft()
                    progressed = True
                    break

    def _footprint(self, payload):
        """Cached conflict footprint of a queued command payload."""
        key = (payload.command.uid, payload.attempt)
        fp = self._fp_cache.get(key)
        if fp is None:
            fp = footprint_of(self.app, payload.command)
            self._fp_cache[key] = fp
        return fp

    def _cmd_state(self, payload) -> dict:
        """Per-command protocol state ("checked"/"sent" flags).

        Serial mode uses the head-coupled ``_head_state`` (reset when the
        head pops) — byte-identical legacy behavior.  Lanes mode keys the
        state by (uid, attempt) so several in-flight multi-partition
        commands track their own progress."""
        if self.lanes <= 1:
            return self._head_state
        key = (payload.command.uid, payload.attempt)
        state = self._cmd_states.get(key)
        if state is None:
            state = self._cmd_states[key] = {}
        return state

    def _drop_cmd_state(self, payload) -> None:
        key = (payload.command.uid, payload.attempt)
        self._cmd_states.pop(key, None)
        self._fp_cache.pop(key, None)

    # -- single-partition commands -----------------------------------------------------

    def _gate_service(self) -> bool:
        """True when a simulated CPU lane is free; otherwise re-pumps
        once the earliest busy lane's service time has elapsed."""
        if self.lanes > 1:
            return self._lanes_gate()
        if self.service_time <= 0 or self.now >= self._next_free:
            return True
        if self._service_timer is None or not self._service_timer.active:
            self._service_timer = self.set_timer(
                self._next_free - self.now, self._pump
            )
        return False

    def _lanes_gate(self) -> bool:
        if self.service_time <= 0:
            return True
        free_at = min(self._lane_free)
        if self.now >= free_at:
            return True
        if self._service_timer is None or not self._service_timer.active:
            self._service_timer = self.set_timer(free_at - self.now, self._pump)
        return False

    def _consume_service(self) -> None:
        if self.service_time <= 0:
            return
        if self.lanes <= 1:
            self._next_free = max(self._next_free, self.now) + self.service_time
            return
        lane = min(range(self.lanes), key=self._lane_free.__getitem__)
        self._lane_free[lane] = (
            max(self._lane_free[lane], self.now) + self.service_time
        )
        self._last_lane = lane
        if self._records_metrics:
            self._lane_series(lane).record(self.now)

    def _lane_series(self, lane: int):
        series = self._partition_series.get(f"lane{lane}")
        if series is None:
            series = self.monitor.series(
                "lane_occupancy", partition=self.partition, lane=str(lane)
            )
            self._partition_series[f"lane{lane}"] = series
        return series

    def _try_exec(self, payload: ExecCommand) -> bool:
        command = payload.command
        if self._reply_cached(payload):
            return True
        nodes = self.app.nodes_of(command)
        if any(node not in self.owned_nodes for node in nodes):
            if self.tracer.enabled:
                self.tracer.finish(
                    command.uid, "queue", self.now, disc=payload.attempt,
                    status="retry",
                )
            self._reply(payload, ReplyStatus.RETRY)
            return True
        if any(node in self.in_transit for node in nodes):
            return False  # wait for the node's variables to arrive
        if not self._gate_service():
            return False
        self._consume_service()
        self._execute_and_reply(payload, record_hint_nodes=nodes)
        return True

    def _execute_and_reply(self, payload, record_hint_nodes=()) -> None:
        command = payload.command
        self._trace_execute_start(payload)
        result, status, _, _ = self._tracked_execute(command)
        self._trace_execute_end(payload, status)
        self._cache_exec_result(payload, status, result, record_hint_nodes)
        self._reply(payload, status, result)
        self.executed_count += 1
        self._record_hint(record_hint_nodes)
        if self._records_metrics:
            self._pseries("tput").record(self.now)
            if self._compartment_enabled and self.app.is_readonly(command):
                self.monitor.counter(
                    "reads", partition=self.partition, event="ordered"
                ).inc()

    def _trace_execute_start(self, payload) -> None:
        """Close ``queue`` and open ``execute``.  Execution is atomic on
        the virtual clock (the service-time cost shows up as queue wait
        via the service gate), so the execute span is zero-duration with
        the modeled service time as a tag."""
        if not self.tracer.enabled:
            return
        uid = payload.command.uid
        self.tracer.finish(uid, "queue", self.now, disc=payload.attempt)
        if self.lanes > 1:
            self.tracer.begin(
                uid, "execute", self.now, disc=payload.attempt,
                partition=self.partition, service_time=self.service_time,
                lane=self._last_lane,
            )
        else:
            self.tracer.begin(
                uid, "execute", self.now, disc=payload.attempt,
                partition=self.partition, service_time=self.service_time,
            )

    def _trace_execute_end(self, payload, status) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.finish(
            payload.command.uid, "execute", self.now, disc=payload.attempt,
            status=status.name.lower(),
        )

    # -- exactly-once result cache ---------------------------------------------------

    def _cache_exec_result(self, payload, status, result, nodes=()) -> None:
        """Remember the outcome — and the attempt that produced it — so a
        client retry of an already-executed command is answered from the
        cache instead of re-executed (the state machine must not apply a
        command twice)."""
        attempt = getattr(payload, "attempt", 0)
        idem_key = getattr(payload.command, "idem_key", None)
        self._exec_results[payload.command.uid] = (
            status, result, attempt, idem_key,
        )
        if idem_key is not None:
            self._idem_index.setdefault(idem_key, payload.command.uid)
        for node in nodes:
            self._node_uids.setdefault(node, []).append(payload.command.uid)

    def _cached_result_for(self, command) -> Optional[tuple]:
        """The cached outcome of ``command``: by uid, or — for a
        give-up-and-resubmit that arrives under a fresh uid — through the
        client's idempotency key."""
        cached = self._exec_results.get(command.uid)
        if cached is None and command.idem_key is not None:
            original = self._idem_index.get(command.idem_key)
            if original is not None:
                cached = self._exec_results.get(original)
        return cached

    def _reply_cached(self, payload) -> bool:
        cached = self._cached_result_for(payload.command)
        if cached is None:
            return False
        status, result = cached[0], cached[1]
        if self.tracer.enabled:
            self.tracer.finish(
                payload.command.uid, "queue", self.now, disc=payload.attempt,
                status="cached",
            )
        self._reply(payload, status, result)
        if self._records_metrics:
            self.monitor.counter("dedup_replies").inc()
        return True

    def _exec_entries_for(self, nodes) -> tuple:
        """Cached (uid, status, result, attempt) entries for commands that
        touched ``nodes`` — shipped along when those nodes change owner."""
        entries = []
        seen = set()
        for node in nodes:
            for uid in self._node_uids.get(node, ()):
                if uid in seen:
                    continue
                seen.add(uid)
                cached = self._exec_results.get(uid)
                if cached is not None:
                    entries.append((uid,) + cached)
        return tuple(entries)

    def _merge_exec_entries(self, entries) -> None:
        for entry in entries:
            uid, status, result, attempt = entry[0], entry[1], entry[2], entry[3]
            idem_key = entry[4] if len(entry) > 4 else None
            self._exec_results.setdefault(uid, (status, result, attempt, idem_key))
            if idem_key is not None:
                self._idem_index.setdefault(idem_key, uid)

    # -- multi-partition commands ----------------------------------------------------------

    def _try_global(self, payload: GlobalCommand) -> bool:
        command = payload.command
        cmd_uid = command.uid
        claimed = payload.nodes_at(self.partition)
        state = self._cmd_state(payload)

        # Duplicate detection applies only to a *fresh* head carrying a
        # different attempt than the one that executed.  The attempt that
        # executed must run the normal protocol even when its result
        # entry is already cached — a replica lagging behind its peers
        # receives the piggybacked entry (on the VarReturn) before it
        # a-delivers the command itself, and every replica of a partition
        # must make the same lend/return transitions for that attempt or
        # their stores diverge.  The rule is deterministic: for any later
        # attempt the entry is guaranteed merged before it reaches the
        # head (it rides the message that unblocked the earlier attempt),
        # while the executed attempt takes the normal path with or
        # without the entry.
        cached = self._exec_results.get(cmd_uid)
        if (
            cached is not None
            and not state
            and payload.attempt != cached[2]
        ):
            return self._global_duplicate(payload)
        if cached is None and not state and command.idem_key is not None:
            # A fresh-uid resubmit of an already-executed command (matched
            # by idempotency key) is always a duplicate: the fresh uid
            # cannot be the attempt that executed.
            original = self._idem_index.get(command.idem_key)
            if (
                original is not None
                and original != cmd_uid
                and original in self._exec_results
            ):
                return self._global_duplicate(payload)

        if not state.get("checked"):
            if any(node not in self.owned_nodes for node in claimed):
                self._abort_global(payload, notify=True)
                return True
            state["checked"] = True
        if any(node in self.in_transit for node in claimed):
            return False

        if self.mode == "dssmr":
            if payload.target == self.partition:
                return self._dssmr_as_target(payload)
            return self._dssmr_as_source(payload)
        if payload.target == self.partition:
            return self._global_as_target(payload)
        return self._global_as_source(payload)

    def _global_duplicate(self, payload: GlobalCommand) -> bool:
        """A retried multi-partition command that already executed: answer
        from the cache and unwind the new attempt's gather so no partition
        blocks on it."""
        key = (payload.command.uid, payload.attempt)
        self._reply_cached(payload)
        if payload.target == self.partition:
            # Sources of this attempt may still ship; bounce everything so
            # their heads unblock with the variables unchanged.
            self.aborted_cmds.add(key)
            self._bounce_received(key)
        else:
            # As a source we will not ship — tell the others so a target
            # without the cached result aborts instead of gathering forever.
            for partition in payload.involved():
                if partition != self.partition:
                    self._send_to_partition(
                        partition,
                        TransferFailed(
                            payload.command.uid, self.partition, payload.attempt
                        ),
                        uid=f"tf:{payload.command.uid}:{payload.attempt}:{self.partition}",
                    )
        return True

    def _global_as_target(self, payload: GlobalCommand) -> bool:
        command = payload.command
        key = (command.uid, payload.attempt)
        needed = {p for p in payload.involved() if p != self.partition}

        if self.tracer.enabled:
            self.tracer.begin(
                command.uid, "borrow", self.now, disc=payload.attempt,
                target=self.partition, sources=len(needed),
                attempt=payload.attempt,
            )
        if self.transfer_failures.get(key):
            # Some source is stale; abort and bounce whatever arrived.
            self._abort_global(payload, notify=True)
            return True
        received = self.recv_transfers.get(key, {})
        if not needed <= set(received):
            return False  # still gathering
        # Gather complete: service-gate wait from here on belongs to the
        # still-open queue span, not the borrow.
        if self.tracer.enabled:
            self.tracer.finish(
                command.uid, "borrow", self.now, disc=payload.attempt
            )
        if not self._gate_service():
            return False
        self._consume_service()

        # Insert the borrowed variables.
        borrowed: list = []
        for source, pairs in received.items():
            for var, value in pairs:
                self.store.insert_copy(var, value)
                self._index_var(var)
                borrowed.append(var)
        self._trace_execute_start(payload)
        result, status, written, _removed = self._tracked_execute(command)
        self._trace_execute_end(payload, status)
        nodes = {n for n, _ in payload.locations}
        self._cache_exec_result(payload, status, result, nodes)

        # Return every variable that belongs to a source node — including
        # variables the execution just created for those nodes.  The cached
        # result rides along so sources can answer retries themselves.
        exec_entry = (
            (command.uid, status, result, payload.attempt, command.idem_key),
        )
        home_of = dict(payload.locations)
        returns: dict[str, list] = {}
        for var in set(borrowed) | written:
            if var not in self.store:
                continue
            home = home_of.get(self.app.graph_node_of(var))
            if home is not None and home != self.partition:
                returns.setdefault(home, []).append(
                    (var, self.store.get(var))
                )
        returned_objects = 0
        for home, pairs in returns.items():
            if self.tracer.enabled:
                self.tracer.begin(
                    command.uid, "return", self.now,
                    disc=(payload.attempt, home),
                    target=self.partition, home=home, variables=len(pairs),
                )
            self._send_to_partition(
                home,
                VarReturn(
                    command.uid,
                    self.partition,
                    tuple(pairs),
                    payload.attempt,
                    exec_entry,
                ),
                uid=f"vr:{command.uid}:{payload.attempt}:{self.partition}->{home}",
            )
            for var, _ in pairs:
                self.store.discard(var)
                self._unindex_var(var)
            returned_objects += len(pairs)

        self._reply(payload, status, result)
        self.executed_count += 1
        self.multi_partition_count += 1
        self._record_hint(nodes)
        self._cleanup_cmd(key)
        if self._records_metrics:
            self._pseries("tput").record(self.now)
            self._pseries("multipart").record(self.now)
            self.monitor.counter("multi_partition_commands").inc()
            exchanged = sum(len(p) for p in received.values()) + returned_objects
            self.monitor.counter("objects_exchanged").inc(exchanged)
            self._pseries("objects").record(
                self.now, exchanged
            )
        return True

    def _global_as_source(self, payload: GlobalCommand) -> bool:
        command = payload.command
        key = (command.uid, payload.attempt)
        state = self._cmd_state(payload)

        if not state.get("sent"):
            claimed = set(payload.nodes_at(self.partition))
            pairs = []
            for var in self._borrowable_vars(command, claimed):
                pairs.append((var, self.store.take(var)))
                self._unindex_var(var)
            # Annotate the target-owned borrow span, if it is open yet.
            if self.tracer.enabled:
                self.tracer.event_on(
                    command.uid, "borrow", payload.attempt,
                    "var-transfer-sent", self.now,
                    source=self.partition, variables=len(pairs),
                )
            self._send_to_partition(
                payload.target,
                VarTransfer(
                    command.uid, self.partition, tuple(pairs), payload.attempt
                ),
                uid=f"vt:{command.uid}:{payload.attempt}:{self.partition}",
            )
            state["sent"] = True
            if self._records_metrics:
                self._pseries("objects").record(
                    self.now, len(pairs)
                )

        # Wait for our variables to come home (or an abort bounce, which
        # also arrives as a VarReturn).
        returned = self.recv_returns.get(key, {}).get(payload.target)
        if returned is None:
            return False
        for var, value in returned:
            self.store.insert_copy(var, value)
            self._index_var(var)
        if self.tracer.enabled:
            self.tracer.finish(
                command.uid, "return", self.now,
                disc=(payload.attempt, self.partition), home=self.partition,
            )
        self._cleanup_cmd(key)
        return True

    # -- DS-SMR mode: moves are permanent, nothing comes back -------------------------

    def _dssmr_as_source(self, payload: GlobalCommand) -> bool:
        """DS-SMR source: ship every variable of the claimed nodes to the
        target and relinquish ownership — the naive permanent migration
        the paper's baseline performs on every multi-partition command."""
        claimed = payload.nodes_at(self.partition)
        pairs = []
        for node in claimed:
            for var in list(self.node_vars.get(node, ())):
                pairs.append((var, self.store.get(var)))
                self.store.discard(var)
                self._unindex_var(var)
            self.owned_nodes.discard(node)
            self.last_plan[node] = payload.target
        if self.tracer.enabled:
            self.tracer.event_on(
                payload.command.uid, "borrow", payload.attempt,
                "var-transfer-sent", self.now,
                source=self.partition, variables=len(pairs), permanent=True,
            )
        self._send_to_partition(
            payload.target,
            VarTransfer(
                payload.command.uid,
                self.partition,
                tuple(pairs),
                payload.attempt,
                self._exec_entries_for(claimed),
            ),
            uid=f"vt:{payload.command.uid}:{payload.attempt}:{self.partition}",
        )
        if self._records_metrics:
            self._pseries("objects").record(
                self.now, len(pairs)
            )
            self.monitor.counter("objects_exchanged").inc(len(pairs))
        self._admission_release(payload.command.uid)
        return True

    def _dssmr_as_target(self, payload: GlobalCommand) -> bool:
        command = payload.command
        key = (command.uid, payload.attempt)
        needed = {p for p in payload.involved() if p != self.partition}
        if self.tracer.enabled:
            self.tracer.begin(
                command.uid, "borrow", self.now, disc=payload.attempt,
                target=self.partition, sources=len(needed),
                attempt=payload.attempt, permanent=True,
            )
        if self.transfer_failures.get(key):
            self._abort_global(payload, notify=True)
            return True
        received = self.recv_transfers.get(key, {})
        if not needed <= set(received):
            return False
        if self.tracer.enabled:
            self.tracer.finish(
                command.uid, "borrow", self.now, disc=payload.attempt
            )
        if not self._gate_service():
            return False
        self._consume_service()
        for source, pairs in received.items():
            for var, value in pairs:
                self.store.insert_copy(var, value)
                self._index_var(var)
        for node, _ in payload.locations:
            self.owned_nodes.add(node)
            self.last_plan[node] = self.partition
        self._execute_and_reply(
            payload, record_hint_nodes={n for n, _ in payload.locations}
        )
        self.multi_partition_count += 1
        self._cleanup_cmd(key)
        if self._records_metrics:
            self._pseries("multipart").record(self.now)
            self.monitor.counter("multi_partition_commands").inc()
        return True

    def _abort_global(self, payload: GlobalCommand, notify: bool) -> None:
        """This partition cannot honor the command's location map: tell
        the client to retry and unwind the gather."""
        key = (payload.command.uid, payload.attempt)
        uid = payload.command.uid
        if self.tracer.enabled:
            self.tracer.finish(
                uid, "borrow", self.now, disc=payload.attempt, aborted=True
            )
            self.tracer.finish(
                uid, "queue", self.now, disc=payload.attempt, status="retry"
            )
            self.tracer.event(
                uid, "abort", self.now,
                partition=self.partition, attempt=payload.attempt,
            )
        self._reply(payload, ReplyStatus.RETRY)
        if self._records_metrics:
            self.monitor.counter("retries_sent").inc()
        if notify:
            for partition in payload.involved():
                if partition != self.partition:
                    self._send_to_partition(
                        partition,
                        TransferFailed(
                            payload.command.uid, self.partition, payload.attempt
                        ),
                        uid=f"tf:{payload.command.uid}:{payload.attempt}:{self.partition}",
                    )
        if payload.target == self.partition:
            self.aborted_cmds.add(key)
            self._bounce_received(key)

    def _bounce_received(self, key: tuple) -> None:
        """Return unmodified any borrowed variables already received for
        an aborted command attempt."""
        cmd_uid, attempt = key
        for source, pairs in self.recv_transfers.get(key, {}).items():
            self._send_to_partition(
                source,
                VarReturn(cmd_uid, self.partition, pairs, attempt),
                uid=f"vr:{cmd_uid}:{attempt}:{self.partition}->{source}",
            )
        self.recv_transfers.pop(key, None)

    def _cleanup_cmd(self, key: tuple) -> None:
        self._finished_cmds.add(key)
        self.recv_transfers.pop(key, None)
        self.recv_returns.pop(key, None)
        self.transfer_failures.pop(key, None)
        self._admission_release(key[0])

    # -- transfer plumbing ------------------------------------------------------------------

    def _on_var_transfer(self, msg: VarTransfer) -> None:
        self._merge_exec_entries(msg.exec_entries)
        if msg.key in self._finished_cmds:
            return  # late duplicate from the source's other replica
        if msg.key in self.aborted_cmds:
            # Late transfer for an aborted gather: bounce it straight back.
            self._send_to_partition(
                msg.from_partition,
                VarReturn(msg.cmd_uid, self.partition, msg.vars, msg.attempt),
                uid=f"vr:{msg.cmd_uid}:{msg.attempt}:{self.partition}->{msg.from_partition}",
            )
            return
        buf = self.recv_transfers.setdefault(msg.key, {})
        if msg.from_partition not in buf:  # dedup replica copies
            buf[msg.from_partition] = msg.vars
        self._pump()

    def _on_var_return(self, msg: VarReturn) -> None:
        self._merge_exec_entries(msg.exec_entries)
        if msg.key in self._finished_cmds:
            return
        buf = self.recv_returns.setdefault(msg.key, {})
        if msg.from_partition not in buf:
            buf[msg.from_partition] = msg.vars
        self._pump()

    def _on_transfer_failed(self, msg: TransferFailed) -> None:
        self.transfer_failures.setdefault(msg.key, set()).add(
            msg.from_partition
        )
        self._pump()

    # -- create / delete -----------------------------------------------------------------------

    def _apply_create(self, payload: CreateVar) -> bool:
        if payload.partition != self.partition:
            return True
        if self._reply_cached(payload):
            return True
        self.store.put(payload.var, self.app.initial_value_of(payload.var))
        self._index_var(payload.var)
        self.owned_nodes.add(payload.node)
        self.last_plan[payload.node] = self.partition
        self._cache_exec_result(payload, ReplyStatus.OK, True, (payload.node,))
        self._reply(payload, ReplyStatus.OK, True)
        return True

    def _apply_delete(self, payload: DeleteVar) -> bool:
        if payload.partition != self.partition:
            return True
        if self._reply_cached(payload):
            return True
        self.store.discard(payload.var)
        self._unindex_var(payload.var)
        self.owned_nodes.discard(payload.node)
        self._cache_exec_result(payload, ReplyStatus.OK, True, (payload.node,))
        self._reply(payload, ReplyStatus.OK, True)
        return True

    # -- repartitioning (Task 3) -------------------------------------------------------------------

    def _apply_plan(self, plan: PartitionPlan) -> bool:
        if plan.version <= self.version:
            return True
        self.version = plan.version
        assignment = plan.as_dict()
        self.last_plan = dict(assignment)
        if self.partition in plan.retiring and not self.draining:
            self.draining = True
            self._drain_version = plan.version
            self._arm_drain_timer()

        moved_out_objects = 0
        moved_out_bytes = 0
        nodes_out = 0
        nodes_in = 0
        for node, new_owner in assignment.items():
            if new_owner == self.partition:
                if node not in self.owned_nodes:
                    self.owned_nodes.add(node)
                    nodes_in += 1
                    early = self._early_plan_transfers.pop(node, None)
                    if early is not None:
                        self._install_node_vars(node, early)
                    else:
                        self.in_transit.add(node)
            else:
                if node in self.owned_nodes:
                    self.owned_nodes.discard(node)
                    self.in_transit.discard(node)
                    vars_of_node = list(self.node_vars.get(node, ()))
                    pairs = tuple(
                        (var, self.store.get(var)) for var in vars_of_node
                    )
                    for var in vars_of_node:
                        self.store.discard(var)
                        self._unindex_var(var)
                    self._send_to_partition(
                        new_owner,
                        PlanTransfer(
                            plan.version,
                            node,
                            self.partition,
                            pairs,
                            self._exec_entries_for((node,)),
                        ),
                        uid=f"pt:{plan.version}:{node!r}:{self.partition}",
                    )
                    moved_out_objects += len(pairs)
                    moved_out_bytes += sum(
                        len(repr(value)) for _, value in pairs
                    )
                    nodes_out += 1
        if self._records_metrics:
            self.monitor.counter("plan_objects_moved").inc(moved_out_objects)
            self._pseries("objects").record(
                self.now, moved_out_objects
            )
            if self.audit.enabled:
                if nodes_out or nodes_in:
                    self.audit.record(
                        audit_mod.RELOCATION, self.now,
                        version=plan.version, partition=self.partition,
                        objects_out=moved_out_objects,
                        bytes_out=moved_out_bytes,
                        nodes_out=nodes_out, nodes_in=nodes_in,
                        awaiting=len(self.in_transit),
                    )
                if not self.in_transit:
                    # Nothing left in flight: this partition quiesces at
                    # plan application time.
                    self.audit.record(
                        audit_mod.QUIESCE, self.now,
                        version=plan.version, partition=self.partition,
                    )
        if self.draining:
            self._maybe_announce_drain()
        return True

    # -- elastic retirement (merge drain) ---------------------------------------------

    def _arm_drain_timer(self) -> None:
        if self._drain_timer_armed or self.drain_period <= 0:
            return
        self._drain_timer_armed = True
        self.set_periodic_timer(self.drain_period, self._maybe_announce_drain)

    def _maybe_announce_drain(self) -> None:
        """Announce ``DrainComplete`` once everything this partition owned
        has verifiably left: no owned or in-flight nodes and an empty
        reliable outbox (every shipped transfer acked by its receiver).
        Multicast to the oracle *and* our own group: a-delivery in our own
        log is the totally ordered retire point, a-delivery at the oracle
        completes the merge.  The version-derived uid makes the periodic
        re-announcement (and post-recovery duplicates) free."""
        if not self.draining or self.retired:
            return
        if self.owned_nodes or self.in_transit or self._outbox:
            return
        message = MulticastMessage(
            uid=f"drain:{self._drain_version}:{self.partition}",
            dests=tuple(sorted({self.oracle_group, self.partition})),
            payload=DrainComplete(self._drain_version, self.partition),
        )
        self._directory.amcast_local(self, message)

    def _apply_drain_complete(self, done: DrainComplete) -> bool:
        """Our own DrainComplete a-delivered: the retire point.  Every
        replica of the group passes this at the same log position."""
        if done.partition != self.partition or self.retired:
            return True
        self.retired = True
        if self.audit.enabled and self._records_metrics:
            self.audit.record(
                audit_mod.RECONFIG_DRAIN, self.now,
                version=done.version, partition=self.partition,
            )
        return True

    def _install_node_vars(self, node: Any, pairs: tuple) -> None:
        for var, value in pairs:
            self.store.insert_copy(var, value)
            self._index_var(var)

    def _on_plan_transfer(self, msg: PlanTransfer) -> None:
        self._merge_exec_entries(msg.exec_entries)
        key = (msg.version, msg.node, msg.from_partition)
        if key in self._plan_transfer_seen:
            return
        self._plan_transfer_seen.add(key)
        if msg.version > self.version:
            # Our copy of the plan has not arrived yet; hold the variables.
            self._early_plan_transfers[msg.node] = msg.vars
            self._pump()
            return
        if msg.node in self.in_transit:
            self._install_node_vars(msg.node, msg.vars)
            self.in_transit.discard(msg.node)
            if (
                not self.in_transit
                and self.audit.enabled
                and self._records_metrics
            ):
                # Last in-flight node settled: relocation quiesce point.
                self.audit.record(
                    audit_mod.QUIESCE, self.now,
                    version=self.version, partition=self.partition,
                )
            self._pump()
            return
        if msg.node not in self.owned_nodes:
            # The node has already moved on under a newer plan; forward.
            owner = self.last_plan.get(msg.node)
            if owner is not None and owner != self.partition:
                self._send_to_partition(
                    owner,
                    PlanTransfer(
                        self.version,
                        msg.node,
                        self.partition,
                        msg.vars,
                        msg.exec_entries,
                    ),
                    uid=f"pt:{self.version}:{msg.node!r}:{self.partition}",
                )
        # Owned and settled: duplicate copy, nothing to do.

    # -- workload hints ---------------------------------------------------------------------------------

    def _record_hint(self, nodes) -> None:
        if not self.hints_enabled:
            return
        nodes = sorted(nodes, key=repr)
        for node in nodes:
            self._hint_vertices[node] += 1
        if len(nodes) <= CLIQUE_HINT_LIMIT:
            for i, u in enumerate(nodes):
                for v in nodes[i + 1 :]:
                    self._hint_edges[(u, v)] += 1
        else:
            hub = nodes[0]
            for v in nodes[1:]:
                self._hint_edges[(hub, v)] += 1

    def _flush_hints(self) -> None:
        seq = self._hint_seq
        self._hint_seq += 1  # advance even when empty: keeps replicas in step
        if not self._hint_vertices and not self._hint_edges:
            return
        hint = ExecutionHint(
            partition=self.partition,
            seq=seq,
            vertices=tuple(self._hint_vertices.items()),
            edges=tuple(
                (u, v, w) for (u, v), w in self._hint_edges.items()
            ),
        )
        self._hint_vertices.clear()
        self._hint_edges.clear()
        message = MulticastMessage(
            uid=f"hint:{self.partition}:{seq}",
            dests=(self.oracle_group,),
            payload=hint,
        )
        self._directory.amcast_local(self, message)

    # -- plumbing ----------------------------------------------------------------------------------------

    def _reply(self, payload, status: ReplyStatus, result: Any = None) -> None:
        # Every replica replies (the client dedups); get-or-create means
        # the first replica to send stamps the span's start, and the
        # client closes it on receipt.
        self._admission_release(payload.command.uid)
        if (
            status == ReplyStatus.RETRY
            and (self.draining or self.retired)
            and self._records_metrics
        ):
            # Command ordered before the cutover but landing after it:
            # the RETRY redirects the client through the oracle to the
            # partition that absorbed the nodes.
            self.monitor.counter(
                "reconfig", partition=self.partition, event="redirected"
            ).inc()
        if self.tracer.enabled:
            self.tracer.begin(
                payload.command.uid, "reply", self.now, disc=payload.attempt,
                partition=self.partition, attempt=payload.attempt,
            )
        self.send(
            payload.client,
            Reply(
                uid=payload.command.uid,
                status=status,
                result=result,
                attempt=payload.attempt,
                partition=self.partition,
            ),
        )

    def _send_to_partition(
        self, partition: str, message: Any, uid: Optional[str] = None
    ) -> None:
        """Send ``message`` to every replica of ``partition``.

        With a ``uid``, the message goes through the reliable channel:
        it is wrapped in a :class:`ReliableMsg` kept in the outbox and
        retransmitted until each destination replica acks.  Logical uids
        are identical across this partition's replicas, so destinations
        process each transfer once no matter which replicas sent it or
        how often it was retransmitted.
        """
        if uid is None or self.retransmit_period <= 0:
            for replica in self._directory.replicas_of(partition):
                self.send(replica, message)
            return
        envelope = ReliableMsg(uid, message)
        for replica in self._directory.replicas_of(partition):
            self._outbox[(replica, uid)] = envelope
            self.send(replica, envelope)

    def _retransmit_outbox(self) -> None:
        for (replica, _uid), envelope in self._outbox.items():
            self.send(replica, envelope)

    # -- checkpointing -----------------------------------------------------------------------------------

    def capture_app_state(self) -> dict:
        state = super().capture_app_state()
        # The store is its own section so snapshot chunking happens at
        # per-variable granularity (it dominates checkpoint size).
        state["server.store"] = self.store.snapshot(self.store.variables())
        state["server.state"] = {
            "owned_nodes": sorted(self.owned_nodes, key=repr),
            "in_transit": sorted(self.in_transit, key=repr),
            "version": self.version,
            "last_plan": sorted(self.last_plan.items(), key=repr),
            # Queued payloads / buffered transfers hold immutable message
            # dataclasses (and value copies made at lend time) — shipping
            # references is safe; installers re-copy on store insertion.
            "queue": tuple(self.queue),
            "head_state": dict(self._head_state),
            "cmd_states": sorted(
                ((key, dict(state)) for key, state in self._cmd_states.items()),
                key=repr,
            ),
            "recv_transfers": sorted(
                ((key, sorted(buf.items())) for key, buf in self.recv_transfers.items()),
                key=repr,
            ),
            "recv_returns": sorted(
                ((key, sorted(buf.items())) for key, buf in self.recv_returns.items()),
                key=repr,
            ),
            "transfer_failures": sorted(
                ((key, sorted(parts)) for key, parts in self.transfer_failures.items()),
                key=repr,
            ),
            "aborted_cmds": sorted(self.aborted_cmds, key=repr),
            "finished_cmds": sorted(self._finished_cmds, key=repr),
            "plan_transfer_seen": sorted(self._plan_transfer_seen, key=repr),
            "early_plan_transfers": sorted(
                self._early_plan_transfers.items(), key=repr
            ),
            "exec_results": sorted(self._exec_results.items(), key=repr),
            "idem_index": sorted(self._idem_index.items(), key=repr),
            "draining": self.draining,
            "retired": self.retired,
            "drain_version": self._drain_version,
            "node_uids": sorted(
                ((node, list(uids)) for node, uids in self._node_uids.items()),
                key=repr,
            ),
            "reliable_seen": sorted(self._reliable_seen, key=repr),
            "outbox": sorted(self._outbox.items(), key=repr),
            "hint_vertices": sorted(self._hint_vertices.items(), key=repr),
            "hint_edges": sorted(self._hint_edges.items(), key=repr),
            "hint_seq": self._hint_seq,
            "executed_count": self.executed_count,
            "multi_partition_count": self.multi_partition_count,
        }
        if self._compartment_enabled:
            lease = self._lease
            state["compartment.state"] = {
                "feed_versions": sorted(self._feed_versions.items(), key=repr),
                "lease": (
                    None
                    if lease is None
                    else (lease.holder, lease.granted_at, lease.expires_at)
                ),
                "lease_seq": self._lease_seq,
                "lease_abandoned_until": self._lease_abandoned_until,
            }
        return state

    def install_app_state(self, sections: dict) -> None:
        super().install_app_state(sections)
        self.store = VariableStore()
        self.node_vars = {}
        for var, value in sections.get("server.store", {}).items():
            self.store.insert_copy(var, value)
            self._index_var(var)
        if self._compartment_enabled:
            # The snapshot's feed versions replace the observer-driven
            # counts *before* the observer is re-attached to the fresh
            # store, so the install itself does not bump them.
            cstate = sections.get("compartment.state", {})
            self._feed_versions = dict(cstate.get("feed_versions", ()))
            self._feed_dirty = {}
            self._feed_timer = None
            lease = cstate.get("lease")
            self._lease = None if lease is None else Lease(*lease)
            self._lease_seq = cstate.get("lease_seq", 0)
            self._lease_abandoned_until = cstate.get(
                "lease_abandoned_until", 0.0
            )
            if self.learner_names:
                self.store.set_observer(self._on_store_mutation)
            # Installed state may be ahead of the pre-crash store: treat
            # reads against it as suspect until re-granted through the
            # log (same reasoning as on_recover).
            if self._lease is not None and self._lease.holder == self.name:
                self._abandon_lease()
        state = sections.get("server.state", {})
        self.owned_nodes = set(state.get("owned_nodes", ()))
        self.in_transit = set(state.get("in_transit", ()))
        self.version = state.get("version", 0)
        self.last_plan = dict(state.get("last_plan", ()))
        self.queue = deque(state.get("queue", ()))
        self._head_state = dict(state.get("head_state", {}))
        self._cmd_states = {
            key: dict(s) for key, s in state.get("cmd_states", ())
        }
        self._fp_cache = {}
        self._lane_free = [0.0] * self.lanes
        self.recv_transfers = {
            key: dict(buf) for key, buf in state.get("recv_transfers", ())
        }
        self.recv_returns = {
            key: dict(buf) for key, buf in state.get("recv_returns", ())
        }
        self.transfer_failures = {
            key: set(parts) for key, parts in state.get("transfer_failures", ())
        }
        self.aborted_cmds = set(state.get("aborted_cmds", ()))
        self._finished_cmds = set(state.get("finished_cmds", ()))
        self._plan_transfer_seen = set(state.get("plan_transfer_seen", ()))
        self._early_plan_transfers = dict(state.get("early_plan_transfers", ()))
        self._exec_results = dict(state.get("exec_results", ()))
        self._idem_index = dict(state.get("idem_index", ()))
        self.draining = state.get("draining", False)
        self.retired = state.get("retired", False)
        self._drain_version = state.get("drain_version", 0)
        self._node_uids = {
            node: list(uids) for node, uids in state.get("node_uids", ())
        }
        self._reliable_seen = set(state.get("reliable_seen", ()))
        self._outbox = dict(state.get("outbox", ()))
        self._hint_vertices = Counter(dict(state.get("hint_vertices", ())))
        self._hint_edges = Counter(dict(state.get("hint_edges", ())))
        self._hint_seq = state.get("hint_seq", 0)
        self.executed_count = state.get("executed_count", 0)
        self.multi_partition_count = state.get("multi_partition_count", 0)
        # Whatever is runnable in the adopted queue can run right away.
        self._pump()
        if self.draining and not self.retired:
            self._arm_drain_timer()
            self._maybe_announce_drain()
