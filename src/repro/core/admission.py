"""Overload-robustness primitives: admission control and client-side
load shaping.

Four small, deterministic building blocks (no wall clock, no global
RNG — everything is driven by the virtual clock and seeded generators):

* :class:`AdmissionController` — bounded-admission bookkeeping for one
  replica (queue-based load leveling).  Commands are admitted at the
  consensus *ingress* — before they enter the Paxos log — so replicas of
  a partition never diverge on whether a command executes: a command is
  either ordered (and then executed by every replica) or bounced back to
  the client with a ``ServerBusy``/Retry-After reply.  Priority-aware:
  cheap-to-retry single-partition commands are refused first, while
  multi-partition commands keep a reserved headroom (aborting a
  half-gathered borrow is far more expensive than retrying a single).
* :class:`TokenBucket` — a client-side rate limiter with burst capacity.
* :class:`RetryBudget` — Finagle-style retry budget: retries withdraw
  from a balance that only refills as fresh requests are issued, so a
  fleet of retrying clients cannot multiply an overload.
* :class:`CircuitBreaker` — trips open after a run of consecutive
  busy/timeout signals and half-opens on a deterministic (optionally
  seeded-jittered) cooldown timer.

All constructor arguments are validated eagerly (``ValueError``) so a
misconfigured experiment fails at build time, not mid-run.
"""

from __future__ import annotations

import random
from typing import Optional

#: Admission outcomes (:meth:`AdmissionController.offer`).
ADMIT = "admit"
#: Refused to protect headroom for higher-priority (multi-partition)
#: traffic — the cheap-to-retry command was shed.
SHED = "shed"
#: Refused because the queue is full outright.
BUSY = "busy"


class AdmissionController:
    """Bounded admission queue for one server replica.

    ``bound`` caps the number of admitted-but-unanswered commands.
    Single-partition commands are admitted while the depth is below
    ``bound``; multi-partition commands get ``headroom`` extra slots on
    top (priority-aware shedding: singles are dropped first).  Entries
    are released when the command is answered; a TTL sweep expires
    entries whose answer this replica never saw (e.g. the client gave up
    and the command was never ordered), so leaked slots cannot wedge the
    admission gate shut forever.
    """

    def __init__(
        self,
        bound: int,
        headroom: Optional[int] = None,
        retry_after: float = 0.05,
        ttl: float = 30.0,
    ):
        if not isinstance(bound, int) or bound < 1:
            raise ValueError(f"admission bound must be a positive int, got {bound!r}")
        if headroom is None:
            headroom = max(1, bound // 4)
        if not isinstance(headroom, int) or headroom < 0:
            raise ValueError(
                f"admission headroom must be a non-negative int, got {headroom!r}"
            )
        if retry_after <= 0:
            raise ValueError(f"retry_after must be positive, got {retry_after!r}")
        if ttl <= 0:
            raise ValueError(f"admission ttl must be positive, got {ttl!r}")
        self.bound = bound
        self.headroom = headroom
        self.retry_after = retry_after
        self.ttl = ttl
        #: uid -> admission virtual time, insertion-ordered.
        self._inflight: dict = {}

    @property
    def depth(self) -> int:
        return len(self._inflight)

    def holds(self, uid) -> bool:
        return uid in self._inflight

    def _expire(self, now: float) -> None:
        # Insertion-ordered dict: the oldest entries come first, so the
        # sweep stops at the first live one.
        cutoff = now - self.ttl
        while self._inflight:
            uid = next(iter(self._inflight))
            if self._inflight[uid] > cutoff:
                break
            del self._inflight[uid]

    def offer(self, uid, now: float, priority: bool = False) -> str:
        """Ask to admit ``uid``; returns :data:`ADMIT`, :data:`SHED`, or
        :data:`BUSY`.  ``priority`` traffic (multi-partition borrows,
        create/delete) may use the reserved headroom."""
        self._expire(now)
        if uid in self._inflight:
            return ADMIT
        depth = len(self._inflight)
        limit = self.bound + self.headroom if priority else self.bound
        if depth < limit:
            self._inflight[uid] = now
            return ADMIT
        return BUSY if priority or depth >= self.bound + self.headroom else SHED

    def release(self, uid) -> None:
        self._inflight.pop(uid, None)


class TokenBucket:
    """Deterministic token-bucket rate limiter on the virtual clock.

    ``rate`` tokens accrue per virtual second up to ``burst`` capacity;
    :meth:`reserve` consumes one token (pre-charging a future token when
    none is available) and returns how long the caller must wait before
    acting on the reservation.  Over any window ``[t1, t2]`` the number
    of grants therefore never exceeds ``burst + rate * (t2 - t1)``.
    """

    def __init__(self, rate: float, burst: float = 1.0):
        if rate <= 0:
            raise ValueError(f"rate limit must be positive, got {rate!r}")
        if burst < 1.0:
            raise ValueError(f"burst capacity must be >= 1, got {burst!r}")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (read-only)."""
        elapsed = max(0.0, now - self._last)
        return min(self.burst, self._tokens + elapsed * self.rate)

    def reserve(self, now: float) -> float:
        """Consume one token; returns the wait (0 when a token is free).

        Calls must be made with non-decreasing ``now`` (virtual time)."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        wait = (1.0 - self._tokens) / self.rate
        # Pre-charge: the caller owns the token that materializes at
        # now + wait, so back-to-back reservations queue up behind it.
        self._tokens -= 1.0
        self._last = now
        return wait


class RetryBudget:
    """A balance of retry tokens that refills with fresh work.

    Every *first* attempt deposits ``ratio`` tokens (capped at
    ``cap``); every retry withdraws one.  When the balance is empty the
    client must give up instead of retrying — so at steady state retries
    are at most ``ratio`` of fresh traffic and cannot amplify an
    overload.  ``initial`` seeds the balance so cold-start blips still
    get retried.
    """

    def __init__(self, initial: float = 10.0, ratio: float = 0.2, cap: Optional[float] = None):
        if initial < 0:
            raise ValueError(f"retry budget initial must be >= 0, got {initial!r}")
        if ratio < 0:
            raise ValueError(f"retry budget ratio must be >= 0, got {ratio!r}")
        self.ratio = ratio
        self.cap = cap if cap is not None else max(initial, 10.0)
        if self.cap <= 0:
            raise ValueError(f"retry budget cap must be positive, got {cap!r}")
        self.balance = min(float(initial), self.cap)

    def deposit(self) -> None:
        """Credit for one fresh (first-attempt) request."""
        self.balance = min(self.cap, self.balance + self.ratio)

    def can_retry(self) -> bool:
        return self.balance >= 1.0

    def withdraw(self) -> bool:
        """Spend one retry token; False when the budget is exhausted."""
        if self.balance < 1.0:
            return False
        self.balance -= 1.0
        return True


class CircuitBreaker:
    """Consecutive-failure circuit breaker with deterministic half-open.

    ``record_failure`` on every busy/timeout signal; after ``threshold``
    consecutive failures the breaker trips *open* for ``cooldown``
    virtual seconds (stretched by a seeded jitter fraction so a fleet of
    breakers does not slam shut in lockstep, while two same-seed runs
    still re-open at identical times).  After the cooldown it reports
    *half-open*: the owner sends one probe; a success closes it, another
    failure re-trips with the cooldown doubled (capped at ``max_cooldown``).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        threshold: int,
        cooldown: float,
        max_cooldown: Optional[float] = None,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(threshold, int) or threshold < 1:
            raise ValueError(
                f"breaker threshold must be a positive int, got {threshold!r}"
            )
        if cooldown <= 0:
            raise ValueError(f"breaker cooldown must be positive, got {cooldown!r}")
        if max_cooldown is not None and max_cooldown < cooldown:
            raise ValueError("breaker max_cooldown must be >= cooldown")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"breaker jitter must be in [0, 1), got {jitter!r}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.max_cooldown = max_cooldown if max_cooldown is not None else cooldown * 8
        self.jitter = jitter
        self.rng = rng or random.Random(0)
        self.state = self.CLOSED
        self.failures = 0
        self.trips = 0
        self._current_cooldown = cooldown

    @property
    def is_open(self) -> bool:
        return self.state == self.OPEN

    def record_failure(self) -> Optional[float]:
        """Register a busy/timeout signal.  Returns the cooldown to wait
        before half-opening when this failure trips (or re-trips) the
        breaker, else ``None``."""
        self.failures += 1
        if self.state == self.HALF_OPEN:
            # The probe failed: re-trip with a longer cooldown.
            self._current_cooldown = min(self._current_cooldown * 2, self.max_cooldown)
            return self._trip()
        if self.state == self.CLOSED and self.failures >= self.threshold:
            return self._trip()
        return None

    def _trip(self) -> float:
        self.state = self.OPEN
        self.trips += 1
        delay = self._current_cooldown
        if self.jitter > 0:
            delay *= 1.0 + self.rng.uniform(0.0, self.jitter)
        return delay

    def half_open(self) -> None:
        """The cooldown elapsed: allow one probe through."""
        if self.state == self.OPEN:
            self.state = self.HALF_OPEN

    def record_success(self) -> None:
        """Any definitive server answer closes the breaker."""
        self.state = self.CLOSED
        self.failures = 0
        self._current_cooldown = self.cooldown
