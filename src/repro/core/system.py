"""System builder: wires oracle, partitions, and clients onto a network.

``DynaStarSystem`` is the public entry point of the library::

    from repro.core import DynaStarSystem, SystemConfig
    from repro.smr import KeyValueApp

    app = KeyValueApp({"x": 0, "y": 0})
    system = DynaStarSystem(app, SystemConfig(n_partitions=2, seed=7))
    client = system.add_client(ScriptedWorkload([...]))
    system.run(until=10.0)

Modes: ``dynastar`` (default), ``ssmr`` (static partitioning, S-SMR
execution model), ``dssmr`` (naive dynamic migration).  The initial
placement may be ``"random"``, ``"hash"``, or an explicit node ->
partition mapping (e.g. a METIS-optimized one for S-SMR*).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.compartment import CompartmentConfig, ProxyLeader, ReadLearner
from repro.consensus.group import GroupConfig
from repro.consensus.paxos import ReplicaConfig
from repro.core.client import DynaStarClient, Workload
from repro.core.oracle import OracleReplica, _stable_hash
from repro.core.server import PartitionServer
from repro.elastic import ElasticConfig, ElasticityController
from repro.multicast.basecast import GroupDirectory
from repro.obs.audit import NULL_AUDIT, AuditLog
from repro.obs.health import PartitionHealthSampler
from repro.obs.trace import Tracer
from repro.partitioning.graph import Partitioning
from repro.sim.events import Simulator
from repro.sim.latency import LatencyModel, lan_default
from repro.sim.monitor import Monitor
from repro.sim.network import Network
from repro.sim.randomness import SeedSequenceFactory
from repro.smr.linearizability import History
from repro.smr.statemachine import AppStateMachine


@dataclass
class SystemConfig:
    """Deployment shape and protocol tuning for one experiment."""

    n_partitions: int = 4
    n_replicas: int = 2
    n_acceptors: int = 3
    seed: int = 1
    mode: str = "dynastar"  # dynastar | ssmr | dssmr
    placement: Union[str, dict, Partitioning] = "random"
    repartition_enabled: bool = True
    repartition_threshold: int = 2000
    plan_compute_cost: float = 1e-6
    imbalance: float = 0.20
    hint_period: float = 1.0
    #: Virtual CPU seconds one command execution occupies its partition
    #: (0 = infinitely fast servers; benchmarks use ~1-2 ms so throughput
    #: saturates with the number of partitions as on real hardware).
    service_time: float = 0.0
    #: Virtual execution lanes per partition replica (dependency-aware
    #: parallel execution).  1 = the legacy strictly serial executor,
    #: byte-identical traces; >1 lets commands with disjoint read/write
    #: footprints overlap in service time and bypass a stalled head.
    execution_lanes: int = 1
    latency: Optional[LatencyModel] = None
    oracle_dispatch: bool = False  # base protocol: oracle forwards commands
    #: Independent per-message drop probability (0 = reliable network).
    #: Nonzero loss requires client timeouts to guarantee progress.
    loss_probability: float = 0.0
    #: Default client request timeout (None = disabled); per-client values
    #: can still be passed to :meth:`DynaStarSystem.add_client`.
    client_timeout: Optional[float] = None
    client_backoff: float = 2.0
    client_timeout_cap: Optional[float] = None
    client_max_attempts: int = 100
    #: Seeded, deterministic jitter fraction applied to client retry
    #: backoff delays (0 disables): after a partition crash, hundreds of
    #: clients time out together; jitter de-synchronizes the retry storm.
    client_retry_jitter: float = 0.1
    #: Server-side admission bound (None disables overload protection):
    #: each partition replica refuses client submissions past this many
    #: admitted-but-unanswered commands, replying ``ServerBusy`` instead
    #: of queueing without limit.
    admission_bound: Optional[int] = None
    #: Extra slots reserved for multi-partition commands on top of
    #: ``admission_bound`` (None = bound // 4): singles shed first.
    admission_headroom: Optional[int] = None
    #: Retry-After hint carried on every ``ServerBusy``.
    admission_retry_after: float = 0.05
    #: Expiry for admission slots whose answer never materialized.
    admission_ttl: float = 30.0
    #: Oracle-side admission bound (None disables).
    oracle_admission_bound: Optional[int] = None
    #: Client token-bucket rate limit in commands/second (None disables)
    #: and its burst capacity.
    client_rate_limit: Optional[float] = None
    client_rate_burst: float = 4.0
    #: Client retry budget: initial balance (None disables) and the
    #: fraction of fresh commands earned back as retry tokens.
    client_retry_budget: Optional[float] = None
    client_retry_budget_ratio: float = 0.2
    #: Client circuit breaker: consecutive busy/timeout signals before
    #: tripping (None disables), cooldown before half-opening, and a
    #: seeded jitter fraction stretching the cooldown per client.
    client_breaker_threshold: Optional[int] = None
    client_breaker_cooldown: float = 1.0
    client_breaker_jitter: float = 0.0
    #: Mean think time between a client's commands (None = back-to-back
    #: closed loop).  The ``overload_burst`` fault divides it.
    client_think_time: Optional[float] = None
    #: Convenience alias for ``replica.checkpoint_interval``: checkpoint
    #: (and compact the Paxos log) every N delivered instances per group
    #: (0 disables checkpointing and snapshot-based recovery).
    checkpoint_interval: int = 0
    #: Period of the servers' reliable-channel retransmission timer
    #: (0 disables retransmission).
    retransmit_period: float = 0.5
    #: Target-partition selection for multi-partition commands
    #: ("most_nodes" is the paper's rule; others exist for ablations).
    target_policy: str = "most_nodes"
    #: Workload-graph weight decay applied after each plan computation
    #: (1.0 = never forget; smaller adapts faster to workload shifts).
    graph_decay: float = 0.5
    #: Record a causal span tree per command (see ``repro.obs``).  Off by
    #: default: the disabled tracer's early-return keeps the overhead
    #: within noise of an untraced run.
    tracing: bool = False
    #: Record the oracle decision audit log (see ``repro.obs.audit``).
    #: Off by default: the shared NULL_AUDIT's ``enabled`` check keeps
    #: the hooks near-zero-cost.
    audit: bool = False
    #: Period (virtual seconds) of the partition-health sampler
    #: (``repro.obs.health``); None disables it entirely — no tick is
    #: ever scheduled.
    health_sample_period: Optional[float] = None
    #: Hot-key top-N reported per health sample.
    health_top_n: int = 5
    #: Elastic partition count: let the oracle split overloaded
    #: partitions and merge idle ones at runtime (``dynastar`` mode
    #: only).  Off by default — the fixed-partition behaviour (and its
    #: seeded traces) is unchanged.
    elastic_enabled: bool = False
    elastic_split_factor: float = 1.6
    elastic_merge_factor: float = 0.25
    elastic_eval_interval: int = 400
    elastic_cooldown: int = 1200
    max_partitions: int = 8
    min_partitions: int = 1
    elastic_min_split_nodes: int = 4
    #: Stamp client commands with idempotency keys so give-up-and-resubmit
    #: retries (fresh uid) still hit the servers' exactly-once cache.
    idempotency_keys: bool = False
    replica: ReplicaConfig = field(default_factory=ReplicaConfig)
    #: Compartmentalized replication: proxy-leader ingress, scale-out
    #: read-only learners, and leader-lease local reads.  Disabled by
    #: default — a disabled system creates no stage actors, installs no
    #: submit router, and leaves every seeded trace byte-identical.
    compartment: CompartmentConfig = field(default_factory=CompartmentConfig)


class DynaStarSystem:
    """A complete simulated deployment of DynaStar (or a baseline)."""

    def __init__(
        self,
        app: AppStateMachine,
        config: Optional[SystemConfig] = None,
        monitor: Optional[Monitor] = None,
    ):
        self.app = app
        self.config = config or SystemConfig()
        self.monitor = monitor or Monitor()
        cfg = self.config
        if cfg.mode not in ("dynastar", "ssmr", "dssmr"):
            raise ValueError(f"unknown mode {cfg.mode!r}")
        if cfg.execution_lanes < 1:
            raise ValueError("execution_lanes must be >= 1")
        if cfg.compartment.enabled and cfg.elastic_enabled:
            # Mid-run provisioned groups would need their own stage
            # actors; that wiring does not exist yet, so fail loudly
            # rather than route submissions to unregistered proxies.
            raise ValueError(
                "compartment.enabled and elastic_enabled are mutually exclusive"
            )

        self.seeds = SeedSequenceFactory(cfg.seed)
        #: One tracer shared by every actor; spans opened on one actor
        #: are closed by another (cross-actor protocol stages).
        self.tracer = Tracer(enabled=cfg.tracing)
        #: One audit log shared by the oracle and partition servers
        #: (replica 0 of each group records — the metrics convention).
        self.audit = AuditLog() if cfg.audit else NULL_AUDIT
        self.sim = Simulator()
        self.net = Network(
            self.sim,
            default_latency=cfg.latency or lan_default(),
            rng=self.seeds.rng("network"),
            loss_probability=cfg.loss_probability,
            monitor=self.monitor,
        )
        self.directory = GroupDirectory(self.net)
        self.partition_names = [f"p{i}" for i in range(cfg.n_partitions)]
        self.oracle_group = "oracle"
        self.clients: list[DynaStarClient] = []
        self._started = False
        self._client_seq = 0

        if cfg.checkpoint_interval:
            cfg.replica.checkpoint_interval = cfg.checkpoint_interval

        # Group shape and server factory are attributes (not locals) so
        # the elasticity controller can provision new groups mid-run with
        # the exact construction path used here.
        self.group_config = GroupConfig(
            n_replicas=cfg.n_replicas,
            n_acceptors=cfg.n_acceptors,
            replica=cfg.replica,
        )
        self.server_factory = self._server_factory()
        for name in self.partition_names:
            self.directory.create_group(
                name,
                config=self.group_config,
                replica_factory=self.server_factory,
                rng=self.seeds.rng(f"group:{name}"),
            )

        if cfg.compartment.enabled:
            for name in self.partition_names:
                self._attach_compartment_stages(name)
            self.directory.submit_router = self._route_submit

        self._elastic_config: Optional[ElasticConfig] = (
            ElasticConfig(
                split_factor=cfg.elastic_split_factor,
                merge_factor=cfg.elastic_merge_factor,
                eval_interval=cfg.elastic_eval_interval,
                cooldown=cfg.elastic_cooldown,
                max_partitions=cfg.max_partitions,
                min_partitions=cfg.min_partitions,
                min_split_nodes=cfg.elastic_min_split_nodes,
            )
            if cfg.elastic_enabled and cfg.mode == "dynastar"
            else None
        )
        self.elastic: Optional[ElasticityController] = (
            ElasticityController(self)
            if self._elastic_config is not None
            else None
        )

        def oracle_factory(**kwargs):
            kwargs.pop("on_deliver", None)
            kwargs.pop("on_adeliver", None)
            kwargs.setdefault("tracer", self.tracer)
            kwargs.setdefault("audit", self.audit)
            return OracleReplica(
                app=self.app,
                partition_names=self.partition_names,
                monitor=self.monitor,
                mode=cfg.mode,
                repartition_threshold=cfg.repartition_threshold,
                repartition_enabled=cfg.repartition_enabled,
                plan_compute_cost=cfg.plan_compute_cost,
                imbalance=cfg.imbalance,
                target_policy=cfg.target_policy,
                graph_decay=cfg.graph_decay,
                admission_bound=cfg.oracle_admission_bound,
                admission_headroom=cfg.admission_headroom,
                admission_retry_after=cfg.admission_retry_after,
                admission_ttl=cfg.admission_ttl,
                elastic=self._elastic_config,
                on_provision=(
                    self.elastic.provision if self.elastic is not None else None
                ),
                on_retire=(
                    self.elastic.retire if self.elastic is not None else None
                ),
                **kwargs,
            )

        self.directory.create_group(
            self.oracle_group,
            config=self.group_config,
            replica_factory=oracle_factory,
            rng=self.seeds.rng("group:oracle"),
        )

        self.initial_assignment = self._resolve_placement()
        self._preload()

        #: Partition-health sampler; None unless configured — a disabled
        #: system never schedules a tick (zero overhead).
        self.health: Optional[PartitionHealthSampler] = (
            PartitionHealthSampler(
                self, period=cfg.health_sample_period, top_n=cfg.health_top_n
            )
            if cfg.health_sample_period is not None
            else None
        )

    # -- construction helpers ----------------------------------------------

    def _learner_names_of(self, partition: str) -> tuple:
        """Learner actor names of one partition group (deterministic, so
        servers can be handed the names before the actors exist)."""
        cc = self.config.compartment
        if not cc.enabled:
            return ()
        return tuple(f"{partition}/learner{i}" for i in range(cc.n_learners))

    def _attach_compartment_stages(self, partition: str) -> None:
        cfg = self.config
        cc = cfg.compartment
        group = self.directory.groups[partition]
        replicas = tuple(group.replica_names)
        proxies = [
            self.net.register(
                ProxyLeader(
                    f"{partition}/proxy{i}",
                    partition,
                    replicas,
                    batch_delay=cc.proxy_batch_delay,
                    max_batch=cc.proxy_max_batch,
                    monitor=self.monitor,
                )
            )
            for i in range(cc.n_proxy_leaders)
        ]
        learners = [
            self.net.register(
                ReadLearner(
                    f"{partition}/learner{i}",
                    partition,
                    replicas,
                    app=self.app,
                    config=cc,
                    monitor=self.monitor,
                    tracer=self.tracer,
                    service_time=cfg.service_time,
                )
            )
            for i in range(cc.n_learners)
        ]
        group.attach_stages(proxies, learners)

    def _route_submit(self, group_name: str, message) -> Optional[tuple]:
        """Ingress router installed on the group directory: client-facing
        submissions to a staged group go to one proxy leader (picked by
        stable hash of the message uid, so retries under a fresh attempt
        uid re-roll the choice); everything else — oracle traffic,
        protocol payloads without a ``client`` — takes the default
        every-replica fan-out."""
        group = self.directory.groups.get(group_name)
        if group is None or not group.proxies:
            return None
        if getattr(message.payload, "client", None) is None:
            return None
        proxies = group.proxy_names
        return (proxies[_stable_hash(message.uid) % len(proxies)],)

    def _server_factory(self):
        cfg = self.config
        system = self

        def factory(**kwargs):
            kwargs.pop("on_deliver", None)
            kwargs.pop("on_adeliver", None)
            # Injected here (not in _make_server) so baseline subclasses
            # inherit tracing/auditing without repeating the wiring.
            kwargs.setdefault("tracer", system.tracer)
            kwargs.setdefault("audit", system.audit)
            return system._make_server(**kwargs)

        return factory

    def _make_server(self, **kwargs) -> PartitionServer:
        """Subclass hook: baselines substitute their server class here."""
        cfg = self.config
        return PartitionServer(
            app=self.app,
            monitor=self.monitor,
            mode=cfg.mode,
            oracle_group=self.oracle_group,
            hint_period=cfg.hint_period,
            service_time=cfg.service_time,
            lanes=cfg.execution_lanes,
            retransmit_period=cfg.retransmit_period,
            admission_bound=cfg.admission_bound,
            admission_headroom=cfg.admission_headroom,
            admission_retry_after=cfg.admission_retry_after,
            admission_ttl=cfg.admission_ttl,
            compartment=cfg.compartment if cfg.compartment.enabled else None,
            learner_names=self._learner_names_of(kwargs["group"]),
            **kwargs,
        )

    def _resolve_placement(self) -> dict:
        """node -> partition-name map for the initial state."""
        cfg = self.config
        variables = self.app.initial_variables()
        nodes = sorted({self.app.graph_node_of(v) for v in variables}, key=repr)
        if isinstance(cfg.placement, Partitioning):
            raw = cfg.placement.assignment
        elif isinstance(cfg.placement, dict):
            raw = cfg.placement
        elif cfg.placement == "random":
            rng = self.seeds.rng("placement")
            raw = {n: rng.randrange(cfg.n_partitions) for n in nodes}
        elif cfg.placement == "hash":
            raw = {n: abs(hash(repr(n))) % cfg.n_partitions for n in nodes}
        else:
            raise ValueError(f"unknown placement {cfg.placement!r}")
        assignment = {}
        for node in nodes:
            part = raw.get(node, 0)
            if isinstance(part, int):
                part = self.partition_names[part % cfg.n_partitions]
            assignment[node] = part
        return assignment

    def _preload(self) -> None:
        variables = self.app.initial_variables()
        per_partition: dict[str, dict] = {p: {} for p in self.partition_names}
        per_partition_nodes: dict[str, set] = {p: set() for p in self.partition_names}
        for var, value in variables.items():
            node = self.app.graph_node_of(var)
            partition = self.initial_assignment[node]
            per_partition[partition][var] = value
            per_partition_nodes[partition].add(node)
        # Nodes can exist with zero initial variables only via create;
        # ensure every assigned node is owned somewhere.
        for node, partition in self.initial_assignment.items():
            per_partition_nodes[partition].add(node)

        for partition in self.partition_names:
            for replica in self.directory.groups[partition].replicas:
                replica.preload(
                    per_partition[partition],
                    per_partition_nodes[partition],
                    dict(self.initial_assignment),
                )
        for replica in self.directory.groups[self.oracle_group].replicas:
            replica.preload_locations(self.initial_assignment)

    # -- clients -------------------------------------------------------------

    def add_client(
        self,
        workload: Workload,
        name: Optional[str] = None,
        use_cache: bool = True,
        history: Optional[History] = None,
        stop_at: Optional[float] = None,
        request_timeout: Optional[float] = None,
        max_attempts: Optional[int] = None,
    ) -> DynaStarClient:
        cfg = self.config
        if name is None:
            name = f"client{self._client_seq}"
            self._client_seq += 1
        client = DynaStarClient(
            name=name,
            app=self.app,
            directory=self.directory,
            workload=workload,
            oracle_group=self.oracle_group,
            monitor=self.monitor,
            use_cache=use_cache,
            dispatch_via_oracle=cfg.oracle_dispatch,
            history=history,
            stop_at=stop_at,
            target_policy=cfg.target_policy,
            max_attempts=(
                max_attempts if max_attempts is not None else cfg.client_max_attempts
            ),
            request_timeout=(
                request_timeout if request_timeout is not None else cfg.client_timeout
            ),
            backoff_factor=cfg.client_backoff,
            max_timeout=cfg.client_timeout_cap,
            retry_jitter=cfg.client_retry_jitter,
            rate_limit=cfg.client_rate_limit,
            rate_burst=cfg.client_rate_burst,
            retry_budget=cfg.client_retry_budget,
            retry_budget_ratio=cfg.client_retry_budget_ratio,
            breaker_threshold=cfg.client_breaker_threshold,
            breaker_cooldown=cfg.client_breaker_cooldown,
            breaker_jitter=cfg.client_breaker_jitter,
            think_time=cfg.client_think_time,
            idempotency_keys=cfg.idempotency_keys,
            learners_of=(
                self._learner_names_of
                if cfg.compartment.enabled and cfg.compartment.lease_enabled
                else None
            ),
            rng=self.seeds.rng(f"client:{name}"),
            tracer=self.tracer,
        )
        self.net.register(client)
        self.clients.append(client)
        return client

    # -- running --------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.directory.start()
        if self.health is not None:
            self.health.start()
        for i, client in enumerate(self.clients):
            # Tiny stagger so a thousand clients do not fire in one event.
            self.sim.schedule(1e-6 * i, client.start)

    def run(self, until: float) -> None:
        self.start()
        self.sim.run(until=until)

    @property
    def started(self) -> bool:
        """Whether :meth:`start` ran (mid-run provisioned groups must be
        started explicitly; pre-start ones ride ``directory.start``)."""
        return self._started

    # -- introspection -----------------------------------------------------------

    def partition_group(self, name_or_index):
        if isinstance(name_or_index, int):
            name_or_index = self.partition_names[name_or_index]
        return self.directory.groups[name_or_index]

    def oracle_replicas(self) -> list[OracleReplica]:
        return self.directory.groups[self.oracle_group].replicas

    def servers(self, partition) -> list[PartitionServer]:
        return self.partition_group(partition).replicas

    def all_store_variables(self) -> dict:
        """Union of every partition's variables (read from the first live
        replica of each); raises if a variable is owned by two partitions."""
        merged: dict = {}
        for partition in self.partition_names:
            server = next(
                (s for s in self.servers(partition) if not s.crashed), None
            )
            if server is None:
                continue
            for var, value in server.store.items():
                if var in merged:
                    raise AssertionError(
                        f"variable {var!r} present in two partitions"
                    )
                merged[var] = value
        return merged

    def total_completed(self) -> int:
        return sum(c.completed for c in self.clients)

    def total_failed(self) -> int:
        return sum(c.failed for c in self.clients)
