"""DynaStar protocol payloads.

Multicast payloads travel inside
:class:`~repro.multicast.messages.MulticastMessage` envelopes and are
therefore totally ordered against each other at common destinations;
direct payloads are replica-to-replica (or replica-to-client) one-way
sends, deduplicated by the receiver.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.smr.command import Command


# ---------------------------------------------------------------------------
# Multicast payloads (ordered through the atomic multicast)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class OracleQuery:
    """Client -> oracle: what should I do with this command?

    Covers the base protocol's ``exec(C)`` (when ``dispatch`` is True the
    oracle itself forwards the command to the partitions, Algorithm 2) and
    the optimized protocol's cache-miss lookup (§4.3), where the client
    dispatches using the returned prophecy.
    """

    command: Command
    client: str
    attempt: int
    dispatch: bool = False


@dataclass(frozen=True, slots=True)
class ExecCommand:
    """Single-partition command execution request."""

    command: Command
    client: str
    attempt: int


@dataclass(frozen=True, slots=True)
class GlobalCommand:
    """Multi-partition command: gather variables at ``target``, execute
    there, return them (the paper's ``global(ω, Pd, C)``).

    ``locations`` carries the believed node -> partition map for the
    command's nodes so every involved partition knows what to send and
    what to wait for.
    """

    command: Command
    client: str
    attempt: int
    target: str
    locations: tuple  # ((node, partition), ...)

    def involved(self) -> tuple:
        return tuple(sorted({p for _, p in self.locations}))

    def nodes_at(self, partition: str) -> tuple:
        return tuple(n for n, p in self.locations if p == partition)


@dataclass(frozen=True, slots=True)
class CreateVar:
    """Oracle -> {oracle, partition}: materialize a new variable."""

    command: Command
    var: Any
    node: Any
    partition: str
    client: str
    attempt: int


@dataclass(frozen=True, slots=True)
class DeleteVar:
    """Oracle -> {oracle, partition}: remove a variable."""

    command: Command
    var: Any
    node: Any
    partition: str
    client: str
    attempt: int


@dataclass(frozen=True, slots=True)
class ExecutionHint:
    """Server -> oracle: observed workload-graph vertices and edges.

    ``seq`` makes the multicast uid deterministic across the sending
    partition's replicas so the oracle ingests each hint once.
    """

    partition: str
    seq: int
    vertices: tuple  # ((node, weight), ...)
    edges: tuple  # ((u, v, weight), ...)


@dataclass(frozen=True, slots=True)
class PartitionPlan:
    """Oracle -> everyone: new node -> partition assignment, versioned.

    ``retiring`` names partitions this plan strips of every node (a merge
    cutover): their servers enter draining mode, ship all state out, and
    announce :class:`DrainComplete` once nothing is left in flight.
    """

    version: int
    assignment: tuple  # ((node, partition), ...)
    retiring: tuple = ()  # (partition, ...)

    def as_dict(self) -> dict:
        return dict(self.assignment)


@dataclass(frozen=True, slots=True)
class ReconfigPlan:
    """Oracle -> oracle: phase 1 of an elastic reconfiguration.

    Epoch-tagged and a-delivered through the oracle's own log, so both
    oracle replicas commit to the same topology change at the same log
    position.  ``kind`` is ``"split"`` (``moved`` nodes leave ``source``
    for the freshly provisioned ``target``) or ``"merge"`` (every node
    of ``source`` moves to ``target`` and ``source`` retires; the moved
    set is computed at delivery time so late creates are not stranded).
    The cutover :class:`PartitionPlan` is derived and multicast at
    delivery — phase 2.
    """

    epoch: int
    kind: str  # "split" | "merge"
    source: str
    target: str
    moved: tuple = ()  # (node, ...) — split only


@dataclass(frozen=True, slots=True)
class DrainComplete:
    """Retiring partition -> {oracle, itself}: every node shipped, every
    reliable send acked.  A-delivery at the retiring group is the totally
    ordered retire point (its replicas flip to ``retired`` at the same
    log position); a-delivery at the oracle completes the merge.
    """

    version: int  # cutover plan version (uid-deterministic across replicas)
    partition: str


# ---------------------------------------------------------------------------
# Direct payloads (one-way sends, receiver deduplicates)
# ---------------------------------------------------------------------------


class ProphecyStatus(enum.Enum):
    OK = "ok"
    NOK = "nok"


@dataclass(frozen=True, slots=True)
class Prophecy:
    """Oracle replica -> client: locations and target for a command."""

    uid: str  # command uid
    attempt: int
    status: ProphecyStatus
    locations: tuple = ()  # ((node, partition), ...)
    target: Optional[str] = None
    version: int = 0
    reason: str = ""


@dataclass(frozen=True, slots=True)
class ServerBusy:
    """Replica -> client: admission refused; back off and retry.

    Sent *instead of* accepting a command into the consensus log when
    the replica's admission queue is past its bound (queue-based load
    leveling).  ``retry_after`` is the server's backpressure hint — the
    client waits at least this long before the retry.  ``reason``
    distinguishes priority shedding of cheap-to-retry traffic
    (``"shed"``) from a queue that is full outright (``"busy"``).
    """

    uid: str  # command uid
    attempt: int
    partition: str
    retry_after: float
    reason: str = "busy"


@dataclass(frozen=True, slots=True)
class VarTransfer:
    """Source partition -> target partition: borrowed variables for a
    multi-partition command.

    ``attempt`` matters: a retried command reuses its uid, and buffering
    by uid alone would let a stale attempt's abort state swallow the new
    attempt's transfers (a cross-attempt deadlock).
    """

    cmd_uid: str
    from_partition: str
    vars: tuple  # ((var, value), ...)
    attempt: int = 0
    exec_entries: tuple = ()  # ((cmd_uid, status, result), ...)

    @property
    def key(self) -> tuple:
        return (self.cmd_uid, self.attempt)


@dataclass(frozen=True, slots=True)
class VarReturn:
    """Target partition -> source partition: borrowed variables coming
    home (with post-execution values).

    ``exec_entries`` carries the target's cached execution result so the
    sources can answer a retried command without re-gathering."""

    cmd_uid: str
    from_partition: str
    vars: tuple
    attempt: int = 0
    exec_entries: tuple = ()  # ((cmd_uid, status, result), ...)

    @property
    def key(self) -> tuple:
        return (self.cmd_uid, self.attempt)


@dataclass(frozen=True, slots=True)
class TransferFailed:
    """A partition involved in a multi-partition command discovered the
    command's location map is stale; everyone involved should abort and
    the client will retry."""

    cmd_uid: str
    from_partition: str
    attempt: int = 0

    @property
    def key(self) -> tuple:
        return (self.cmd_uid, self.attempt)


@dataclass(frozen=True, slots=True)
class PlanTransfer:
    """Old owner -> new owner: a node's variables moving under a
    repartitioning plan.

    ``exec_entries`` carries the old owner's cached execution results for
    commands that touched this node, so a client retry that lands on the
    new owner is answered from the cache instead of re-executing.
    """

    version: int
    node: Any
    from_partition: str
    vars: tuple
    exec_entries: tuple = ()  # ((cmd_uid, status, result), ...)


# ---------------------------------------------------------------------------
# Reliable replica-to-replica channel
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ReliableMsg:
    """Envelope for at-least-once replica-to-replica delivery.

    The receiver always acks (even for duplicates) and dispatches the
    payload once per ``uid``; the sender retransmits unacked envelopes
    periodically.  Used for the transfer/return/abort traffic of
    multi-partition commands, which must survive message loss and
    receiver crashes without diverging the replicas of a partition.
    """

    uid: str
    payload: Any

    def __hash__(self):  # pragma: no cover - payload may be unhashable
        return hash(self.uid)


@dataclass(frozen=True, slots=True)
class ReliableAck:
    """Receiver -> sender: envelope ``uid`` arrived; stop retransmitting."""

    uid: str
