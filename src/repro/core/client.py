"""DynaStar clients.

Closed-loop clients (one outstanding command each, as in the paper's
evaluation): issue a command, wait for the reply, record the end-to-end
latency, issue the next.

The location cache (§4.3) short-circuits the oracle: when every node a
command touches is cached, the client multicasts straight to the involved
partition(s) — choosing the target itself for multi-partition commands.
A ``RETRY`` reply (stale cache) invalidates the involved entries and
falls back to an oracle query; creates and deletes always go through the
oracle.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any, Optional

from repro.core.messages import (
    ExecCommand,
    GlobalCommand,
    OracleQuery,
    Prophecy,
    ProphecyStatus,
)
from repro.multicast.basecast import GroupDirectory
from repro.multicast.messages import MulticastMessage
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.actors import Actor
from repro.sim.monitor import Monitor
from repro.smr.command import Command, CommandKind, Reply, ReplyStatus
from repro.smr.linearizability import History, Operation
from repro.smr.statemachine import AppStateMachine


class Workload:
    """Supplies a client with its next command (None ends the client)."""

    def next_command(self, client: "DynaStarClient") -> Optional[Command]:
        raise NotImplementedError


class ScriptedWorkload(Workload):
    """Plays back a fixed list of commands (used heavily in tests)."""

    def __init__(self, commands):
        self._commands = list(commands)
        self._pos = 0

    def next_command(self, client) -> Optional[Command]:
        if self._pos >= len(self._commands):
            return None
        command = self._commands[self._pos]
        self._pos += 1
        return command


class CallbackWorkload(Workload):
    """Wraps a ``fn(client) -> Optional[Command]`` callable."""

    def __init__(self, fn):
        self._fn = fn

    def next_command(self, client) -> Optional[Command]:
        return self._fn(client)


class DynaStarClient(Actor):
    """A closed-loop client with a location cache.

    When ``request_timeout`` is set, every attempt is covered by a
    timeout with exponential backoff (factor ``backoff_factor``, capped
    at ``max_timeout``): a silent attempt — lost query, lost reply,
    crashed partition — is abandoned and the command retransmitted under
    a fresh attempt number, up to ``max_attempts`` total attempts.
    Server-side result caching makes retransmission safe (exactly-once
    execution).  ``request_timeout=None`` (default) disables timeouts,
    preserving the reliable-network behaviour.
    """

    MAX_ATTEMPTS = 100

    def __init__(
        self,
        name: str,
        app: AppStateMachine,
        directory: GroupDirectory,
        workload: Workload,
        oracle_group: str = "oracle",
        monitor: Optional[Monitor] = None,
        use_cache: bool = True,
        dispatch_via_oracle: bool = False,
        history: Optional[History] = None,
        stop_at: Optional[float] = None,
        target_policy: str = "most_nodes",
        max_attempts: Optional[int] = None,
        request_timeout: Optional[float] = None,
        backoff_factor: float = 2.0,
        max_timeout: Optional[float] = None,
        retry_jitter: float = 0.0,
        rng: Optional[random.Random] = None,
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(name)
        self.target_policy = target_policy
        self.app = app
        self.directory = directory
        self.workload = workload
        self.oracle_group = oracle_group
        self.monitor = monitor or Monitor()
        self.tracer = tracer or NULL_TRACER
        self.use_cache = use_cache
        self.dispatch_via_oracle = dispatch_via_oracle
        self.history = history
        self.stop_at = stop_at
        self.max_attempts = (
            max_attempts if max_attempts is not None else self.MAX_ATTEMPTS
        )
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        self.request_timeout = request_timeout
        self.backoff_factor = backoff_factor
        self.max_timeout = max_timeout
        #: Fractional jitter applied to every timeout delay.  Seeded and
        #: per-client, so a fleet of clients that lost the same partition
        #: spreads its retries instead of retrying in lockstep — while
        #: two runs with the same seed still retry at identical times.
        self.retry_jitter = retry_jitter
        self.rng = rng or random.Random(0)

        self.cache: dict[Any, str] = {}
        self.completed = 0
        self.failed = 0
        self.retries = 0
        self.timeouts = 0
        self.results: dict[str, Any] = {}
        self.done = False

        self._current: Optional[Command] = None
        self._attempt = 0
        self._invoked_at = 0.0
        self._was_multi = False
        self._timeout_timer = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._next()

    def _next(self) -> None:
        if self.done:
            return
        if self.stop_at is not None and self.now >= self.stop_at:
            self.done = True
            return
        command = self.workload.next_command(self)
        if command is None:
            self.done = True
            return
        self._current = command
        self._attempt = 0
        self._invoked_at = self.now
        self._was_multi = False
        if self.tracer.enabled:
            self.tracer.start_trace(
                command.uid, self.now, client=self.name, op=command.op,
                kind=command.kind.name.lower(),
            )
        self._issue()

    # -- request timeouts -----------------------------------------------------

    def _arm_timeout(self) -> None:
        if self.request_timeout is None:
            return
        if self._timeout_timer is not None:
            self._timeout_timer.cancel()
        delay = self.request_timeout * self.backoff_factor**self._attempt
        if self.max_timeout is not None:
            delay = min(delay, self.max_timeout)
        if self.retry_jitter > 0:
            delay *= 1.0 + self.rng.uniform(-self.retry_jitter, self.retry_jitter)
        self._timeout_timer = self.set_timer(delay, self._on_timeout)

    def _cancel_timeout(self) -> None:
        if self._timeout_timer is not None:
            self._timeout_timer.cancel()
            self._timeout_timer = None

    def _on_timeout(self) -> None:
        if self.done or self._current is None:
            return
        self.timeouts += 1
        self.monitor.counter("client_timeouts").inc()
        if self.tracer.enabled:
            self.tracer.event(
                self._current.uid, "timeout", self.now, attempt=self._attempt
            )
        self._attempt += 1
        if self._attempt >= self.max_attempts:
            self._complete(ReplyStatus.NOK, "timed out")
            return
        self._issue()

    # -- issuing -------------------------------------------------------------

    def _issue(self) -> None:
        self._arm_timeout()
        command = self._current
        submit = None
        if self.tracer.enabled:
            submit = self.tracer.begin(
                command.uid, "client-submit", self.now, disc=self._attempt,
                attempt=self._attempt,
            )
        if (
            command.kind != CommandKind.ACCESS
            or not self.use_cache
            or self.dispatch_via_oracle
        ):
            self._query_oracle()
            return
        nodes = self.app.nodes_of(command)
        if all(node in self.cache for node in nodes):
            if submit is not None:
                submit.event("cache-hit", self.now)
            locations = tuple(
                sorted(((n, self.cache[n]) for n in nodes), key=lambda kv: repr(kv[0]))
            )
            self._dispatch(locations, self._choose_target(locations))
        else:
            self._query_oracle()

    def _query_oracle(self) -> None:
        command = self._current
        if self.tracer.enabled:
            self.tracer.begin(
                command.uid, "oracle-lookup", self.now, disc=self._attempt,
                parent=self.tracer.find(
                    command.uid, "client-submit", self._attempt
                ),
                attempt=self._attempt,
            )
        query = OracleQuery(
            command, self.name, self._attempt, dispatch=self.dispatch_via_oracle
        )
        message = MulticastMessage(
            uid=f"q:{command.uid}:a{self._attempt}",
            dests=(self.oracle_group,),
            payload=query,
        )
        self.directory.amcast(self, message)

    def _choose_target(self, locations: tuple) -> str:
        """Same deterministic rule as the oracle: by default the
        partition with the most nodes, smallest name on ties."""
        involved = sorted({p for _, p in locations})
        if self.target_policy == "first":
            return involved[0]
        counts = Counter(p for _, p in locations)
        top = max(counts.values())
        return sorted(p for p, c in counts.items() if c == top)[0]

    def _dispatch(self, locations: tuple, target: str) -> None:
        command = self._current
        involved = tuple(sorted({p for _, p in locations}))
        self._was_multi = len(involved) > 1
        if self.tracer.enabled:
            self.tracer.finish(
                command.uid, "client-submit", self.now, disc=self._attempt,
                target=target, partitions=len(involved),
            )
            self.tracer.begin(
                command.uid, "multicast-order", self.now, disc=self._attempt,
                attempt=self._attempt, target=target, partitions=len(involved),
            )
        if len(involved) == 1:
            payload: Any = ExecCommand(command, self.name, self._attempt)
        else:
            payload = GlobalCommand(
                command, self.name, self._attempt, target, locations
            )
        message = MulticastMessage(
            uid=f"x:{command.uid}:a{self._attempt}",
            dests=involved,
            payload=payload,
        )
        self.directory.amcast(self, message)

    # -- replies -----------------------------------------------------------------

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, Prophecy):
            self._on_prophecy(message)
        elif isinstance(message, Reply):
            self._on_reply(message)

    def _on_prophecy(self, prophecy: Prophecy) -> None:
        command = self._current
        if (
            command is None
            or prophecy.uid != command.uid
            or prophecy.attempt != self._attempt
        ):
            return
        if self.tracer.enabled:
            self.tracer.finish(
                command.uid, "oracle-lookup", self.now, disc=prophecy.attempt,
                status=prophecy.status.name.lower(),
            )
        if prophecy.status == ProphecyStatus.NOK:
            self._complete(ReplyStatus.NOK, prophecy.reason)
            return
        for node, partition in prophecy.locations:
            self.cache[node] = partition
        if command.kind != CommandKind.ACCESS or self.dispatch_via_oracle:
            # The oracle dispatched; the client's submit phase ends here.
            if self.tracer.enabled:
                self.tracer.finish(
                    command.uid, "client-submit", self.now,
                    disc=prophecy.attempt, via_oracle=True,
                )
            return
        self._dispatch(prophecy.locations, prophecy.target)

    def _on_reply(self, reply: Reply) -> None:
        command = self._current
        if command is None or reply.uid != command.uid:
            return
        if reply.status == ReplyStatus.RETRY:
            # Only the current attempt's RETRY matters; a stale one from
            # an attempt we already abandoned must not burn another retry.
            if reply.attempt != self._attempt:
                return
            self.retries += 1
            self.monitor.counter("client_retries").inc()
            if self.tracer.enabled:
                self.tracer.finish(
                    command.uid, "reply", self.now, disc=reply.attempt,
                    status="retry",
                )
                self.tracer.event(
                    command.uid, "retry", self.now,
                    attempt=reply.attempt, partition=reply.partition,
                )
            self._attempt += 1
            if self._attempt >= self.max_attempts:
                self._complete(ReplyStatus.NOK, "too many retries")
                return
            for node in self.app.nodes_of(command):
                self.cache.pop(node, None)
            self._arm_timeout()
            self._query_oracle()
            return
        # OK/NOK is accepted from *any* attempt: a late reply to a
        # timed-out attempt still carries the command's actual outcome
        # (servers answer retransmissions from their result cache).
        if self.tracer.enabled:
            self.tracer.finish(
                command.uid, "reply", self.now, disc=reply.attempt,
                status=reply.status.name.lower(),
            )
        self._complete(reply.status, reply.result)

    def _complete(self, status: ReplyStatus, result: Any) -> None:
        self._cancel_timeout()
        command = self._current
        latency = self.now - self._invoked_at
        self._current = None
        if self.tracer.enabled:
            self.tracer.finish_trace(
                command.uid, self.now,
                status=status.name.lower(), latency=latency,
                attempts=self._attempt + 1, multi=self._was_multi,
            )
        self.results[command.uid] = (status, result)
        if status == ReplyStatus.OK:
            self.completed += 1
            self.monitor.histogram("latency").observe(latency)
            self.monitor.histogram(
                "latency_multi" if self._was_multi else "latency_single"
            ).observe(latency)
            self.monitor.series("completed").record(self.now)
            self.monitor.counter("commands_completed").inc()
            if self.history is not None:
                self.history.record(
                    Operation(
                        client=self.name,
                        command=command,
                        invoked_at=self._invoked_at,
                        returned_at=self.now,
                        result=result,
                    )
                )
        else:
            self.failed += 1
            self.monitor.counter("commands_failed").inc()
        self._next()
