"""DynaStar clients.

Closed-loop clients (one outstanding command each, as in the paper's
evaluation): issue a command, wait for the reply, record the end-to-end
latency, issue the next.

The location cache (§4.3) short-circuits the oracle: when every node a
command touches is cached, the client multicasts straight to the involved
partition(s) — choosing the target itself for multi-partition commands.
A ``RETRY`` reply (stale cache) invalidates the involved entries and
falls back to an oracle query; creates and deletes always go through the
oracle.
"""

from __future__ import annotations

import dataclasses
import random
from collections import Counter
from typing import Any, Optional

from repro.compartment.messages import LocalRead
from repro.core.admission import CircuitBreaker, RetryBudget, TokenBucket
from repro.core.messages import (
    ExecCommand,
    GlobalCommand,
    OracleQuery,
    Prophecy,
    ProphecyStatus,
    ServerBusy,
)
from repro.core.oracle import _stable_hash
from repro.multicast.basecast import GroupDirectory
from repro.multicast.messages import MulticastMessage
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.actors import Actor
from repro.sim.monitor import Monitor
from repro.smr.command import Command, CommandKind, Reply, ReplyStatus
from repro.smr.linearizability import History, Operation
from repro.smr.statemachine import AppStateMachine


class Workload:
    """Supplies a client with its next command (None ends the client)."""

    def next_command(self, client: "DynaStarClient") -> Optional[Command]:
        raise NotImplementedError

    def on_command_failed(
        self, client: "DynaStarClient", command: Command, reason: str
    ) -> None:
        """Terminal-failure hook: ``command`` gave up (timeout budget,
        retry budget, too many retries) and will never complete.  Drivers
        override this to re-plan or record the loss; default is a no-op."""


class ScriptedWorkload(Workload):
    """Plays back a fixed list of commands (used heavily in tests)."""

    def __init__(self, commands):
        self._commands = list(commands)
        self._pos = 0

    def next_command(self, client) -> Optional[Command]:
        if self._pos >= len(self._commands):
            return None
        command = self._commands[self._pos]
        self._pos += 1
        return command


class CallbackWorkload(Workload):
    """Wraps a ``fn(client) -> Optional[Command]`` callable."""

    def __init__(self, fn):
        self._fn = fn

    def next_command(self, client) -> Optional[Command]:
        return self._fn(client)


class DynaStarClient(Actor):
    """A closed-loop client with a location cache.

    When ``request_timeout`` is set, every attempt is covered by a
    timeout with exponential backoff (factor ``backoff_factor``, capped
    at ``max_timeout``): a silent attempt — lost query, lost reply,
    crashed partition — is abandoned and the command retransmitted under
    a fresh attempt number, up to ``max_attempts`` total attempts.
    Server-side result caching makes retransmission safe (exactly-once
    execution).  ``request_timeout=None`` (default) disables timeouts,
    preserving the reliable-network behaviour.
    """

    MAX_ATTEMPTS = 100

    def __init__(
        self,
        name: str,
        app: AppStateMachine,
        directory: GroupDirectory,
        workload: Workload,
        oracle_group: str = "oracle",
        monitor: Optional[Monitor] = None,
        use_cache: bool = True,
        dispatch_via_oracle: bool = False,
        history: Optional[History] = None,
        stop_at: Optional[float] = None,
        target_policy: str = "most_nodes",
        max_attempts: Optional[int] = None,
        request_timeout: Optional[float] = None,
        backoff_factor: float = 2.0,
        max_timeout: Optional[float] = None,
        retry_jitter: float = 0.0,
        rate_limit: Optional[float] = None,
        rate_burst: float = 4.0,
        retry_budget: Optional[float] = None,
        retry_budget_ratio: float = 0.2,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: float = 1.0,
        breaker_jitter: float = 0.0,
        think_time: Optional[float] = None,
        idempotency_keys: bool = False,
        learners_of=None,
        rng: Optional[random.Random] = None,
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(name)
        self.target_policy = target_policy
        self.app = app
        self.directory = directory
        self.workload = workload
        self.oracle_group = oracle_group
        self.monitor = monitor or Monitor()
        self.tracer = tracer or NULL_TRACER
        self.use_cache = use_cache
        self.dispatch_via_oracle = dispatch_via_oracle
        self.history = history
        self.stop_at = stop_at
        self.max_attempts = (
            max_attempts if max_attempts is not None else self.MAX_ATTEMPTS
        )
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        self.request_timeout = request_timeout
        self.backoff_factor = backoff_factor
        self.max_timeout = max_timeout
        #: Fractional jitter applied to every timeout delay.  Seeded and
        #: per-client, so a fleet of clients that lost the same partition
        #: spreads its retries instead of retrying in lockstep — while
        #: two runs with the same seed still retry at identical times.
        self.retry_jitter = retry_jitter
        self.rng = rng or random.Random(0)

        # Overload defenses — all opt-in (None disables), all validated
        # eagerly by the admission constructors (ValueError on bad knobs).
        self.rate_limiter = (
            TokenBucket(rate_limit, rate_burst) if rate_limit is not None else None
        )
        self.retry_budget = (
            RetryBudget(retry_budget, retry_budget_ratio)
            if retry_budget is not None
            else None
        )
        self.breaker = (
            CircuitBreaker(
                breaker_threshold,
                breaker_cooldown,
                jitter=breaker_jitter,
                rng=self.rng,
            )
            if breaker_threshold is not None
            else None
        )
        if think_time is not None and think_time <= 0:
            raise ValueError("think_time must be positive")
        #: Mean think time between commands (seeded exponential).  None
        #: keeps the original closed-loop back-to-back behaviour.
        self.think_time = think_time
        #: Arrival-rate multiplier; the ``overload_burst`` fault raises it
        #: to model a flash crowd and restores it when the burst ends.
        self.load_factor = 1.0
        #: Stamp every command with a client-generated idempotency key.
        #: A give-up-and-resubmit of the same logical operation reuses the
        #: key under a fresh uid, and the servers' key-indexed result
        #: cache answers instead of re-executing.
        self.idempotency_keys = idempotency_keys
        self._ik_seq = 0
        #: Compartmentalized read routing: ``learners_of(partition)``
        #: returns the partition's read-learner names (empty/None keeps
        #: every read on the ordered path).  First attempts of cached,
        #: single-partition, read-only commands go to one learner chosen
        #: by the seeded ``spread`` hash; every failure mode (RETRY,
        #: timeout) falls back to the ordered path at attempt >= 1.
        self.learners_of = learners_of
        self.local_reads = 0

        self.cache: dict[Any, str] = {}
        self.completed = 0
        self.failed = 0
        self.retries = 0
        self.timeouts = 0
        self.busy_rejections = 0
        self.gave_up = 0
        self.results: dict[str, Any] = {}
        self.done = False

        self._current: Optional[Command] = None
        self._attempt = 0
        self._invoked_at = 0.0
        self._was_multi = False
        self._timeout_timer = None
        self._retry_timer = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._next()

    def _next(self) -> None:
        if self.done:
            return
        if self.stop_at is not None and self.now >= self.stop_at:
            self.done = True
            return
        command = self.workload.next_command(self)
        if command is None:
            self.done = True
            return
        if self.idempotency_keys and command.idem_key is None:
            self._ik_seq += 1
            command = dataclasses.replace(
                command, idem_key=f"ik:{self.name}:{self._ik_seq}"
            )
        # Think time models arrival rate (scaled by the flash-crowd
        # multiplier); the token bucket then throttles *new* commands —
        # retries are governed by the retry budget instead, so the
        # limiter cannot starve recovery.
        delay = 0.0
        if self.think_time is not None:
            delay = self.rng.expovariate(self.load_factor / self.think_time)
        if self.rate_limiter is not None:
            delay = max(delay, self.rate_limiter.reserve(self.now))
        if delay > 0:
            self.set_timer(delay, lambda: self._begin(command))
        else:
            self._begin(command)

    def _begin(self, command: Command) -> None:
        if self.done:
            return
        if self.stop_at is not None and self.now >= self.stop_at:
            self.done = True
            return
        self._current = command
        self._attempt = 0
        self._invoked_at = self.now
        self._was_multi = False
        if self.retry_budget is not None:
            self.retry_budget.deposit()
        if self.tracer.enabled:
            self.tracer.start_trace(
                command.uid, self.now, client=self.name, op=command.op,
                kind=command.kind.name.lower(),
            )
        self._issue()

    # -- request timeouts -----------------------------------------------------

    def _arm_timeout(self) -> None:
        if self.request_timeout is None:
            return
        if self._timeout_timer is not None:
            self._timeout_timer.cancel()
        delay = self.request_timeout * self.backoff_factor**self._attempt
        if self.max_timeout is not None:
            delay = min(delay, self.max_timeout)
        if self.retry_jitter > 0:
            delay *= 1.0 + self.rng.uniform(-self.retry_jitter, self.retry_jitter)
        self._timeout_timer = self.set_timer(delay, self._on_timeout)

    def _cancel_timeout(self) -> None:
        if self._timeout_timer is not None:
            self._timeout_timer.cancel()
            self._timeout_timer = None

    def _on_timeout(self) -> None:
        if self.done or self._current is None:
            return
        self.timeouts += 1
        self.monitor.counter("client", event="timeout").inc()
        if self.tracer.enabled:
            self.tracer.event(
                self._current.uid, "timeout", self.now, attempt=self._attempt
            )
        self._attempt += 1
        if self._attempt >= self.max_attempts:
            self._give_up("timed out")
            return
        if self.retry_budget is not None and not self.retry_budget.withdraw():
            self._give_up("retry budget exhausted")
            return
        self._record_overload_signal()
        self._issue()

    # -- overload defenses ------------------------------------------------------

    def _record_overload_signal(self) -> None:
        """Feed one busy/timeout signal to the breaker; when it trips,
        arm the (seeded, deterministic) half-open probe timer."""
        if self.breaker is None:
            return
        cooldown = self.breaker.record_failure()
        if cooldown is not None:
            self.monitor.counter("admission", event="breaker_trip").inc()
            if self.tracer.enabled and self._current is not None:
                self.tracer.event(
                    self._current.uid, "breaker-open", self.now,
                    client=self.name, cooldown=cooldown,
                )
            self.set_timer(cooldown, self._breaker_probe)

    def _breaker_probe(self) -> None:
        if self.breaker is None or self.done:
            return
        self.breaker.half_open()
        if self._current is not None and (
            self._retry_timer is None or not self._retry_timer.active
        ):
            self._issue()

    def _on_busy(self, busy: ServerBusy) -> None:
        command = self._current
        # Only the current attempt's backpressure matters; every replica
        # of the refusing partition sends one, the first wins.
        if (
            command is None
            or busy.uid != command.uid
            or busy.attempt != self._attempt
        ):
            return
        self._cancel_timeout()
        self.busy_rejections += 1
        self.monitor.counter("admission", event="client_busy").inc()
        if self.tracer.enabled:
            self.tracer.event(
                command.uid, "backpressure", self.now,
                attempt=busy.attempt, partition=busy.partition,
                reason=busy.reason,
            )
        self._attempt += 1
        if self._attempt >= self.max_attempts:
            self._give_up("server busy")
            return
        if busy.reason == "retired":
            # Not overload: the cached location points at a partition
            # that drained away.  Drop every entry for it so the retry
            # falls through to the oracle (whose map already moved on),
            # and leave the breaker/retry-budget untouched.
            for node, partition in list(self.cache.items()):
                if partition == busy.partition:
                    del self.cache[node]
            self.monitor.counter("client", event="retired_redirect").inc()
        else:
            if self.retry_budget is not None and not self.retry_budget.withdraw():
                self._give_up("retry budget exhausted")
                return
            self._record_overload_signal()
        # Retry-After-aware backoff: at least the server's hint, growing
        # like the timeout schedule under repeated pushback.
        base = (
            self.request_timeout
            if self.request_timeout is not None
            else busy.retry_after
        )
        delay = base * self.backoff_factor**self._attempt
        if self.max_timeout is not None:
            delay = min(delay, self.max_timeout)
        delay = max(delay, busy.retry_after)
        if self.retry_jitter > 0:
            delay *= 1.0 + self.rng.uniform(0.0, self.retry_jitter)
        self._retry_timer = self.set_timer(delay, self._reissue)

    def _reissue(self) -> None:
        self._retry_timer = None
        if self.done or self._current is None:
            return
        self._issue()

    def _give_up(self, reason: str) -> None:
        """Terminal failure: stop retrying, count it, surface it to the
        workload driver, move on."""
        self.gave_up += 1
        self.monitor.counter("client", event="gave_up").inc()
        command = self._current
        if self.tracer.enabled and command is not None:
            self.tracer.event(
                command.uid, "gave-up", self.now,
                attempt=self._attempt, reason=reason,
            )
        if command is not None:
            self.workload.on_command_failed(self, command, reason)
        self._complete(ReplyStatus.NOK, reason)

    # -- issuing -------------------------------------------------------------

    def _issue(self) -> None:
        if self.breaker is not None and self.breaker.is_open:
            # Hold the command until the breaker half-opens; the probe
            # timer armed at trip time re-issues it.
            self._cancel_timeout()
            return
        self._arm_timeout()
        command = self._current
        submit = None
        if self.tracer.enabled:
            submit = self.tracer.begin(
                command.uid, "client-submit", self.now, disc=self._attempt,
                attempt=self._attempt,
            )
        if (
            command.kind != CommandKind.ACCESS
            or not self.use_cache
            or self.dispatch_via_oracle
        ):
            self._query_oracle()
            return
        nodes = self.app.nodes_of(command)
        if all(node in self.cache for node in nodes):
            if submit is not None:
                submit.event("cache-hit", self.now)
            locations = tuple(
                sorted(((n, self.cache[n]) for n in nodes), key=lambda kv: repr(kv[0]))
            )
            if self._try_local_read(locations):
                return
            self._dispatch(locations, self._choose_target(locations))
        else:
            self._query_oracle()

    def _try_local_read(self, locations: tuple) -> bool:
        """Route a cached, single-partition, read-only first attempt to
        one of the partition's read learners (seeded spread)."""
        if self.learners_of is None or self._attempt != 0:
            return False
        command = self._current
        if not self.app.is_readonly(command):
            return False
        partitions = {p for _, p in locations}
        if len(partitions) != 1:
            return False
        partition = next(iter(partitions))
        learners = tuple(self.learners_of(partition) or ())
        if not learners:
            return False
        target = learners[
            _stable_hash((command.uid, self._attempt)) % len(learners)
        ]
        self._was_multi = False
        self.local_reads += 1
        self.monitor.counter("reads", event="local_dispatch").inc()
        if self.tracer.enabled:
            self.tracer.finish(
                command.uid, "client-submit", self.now, disc=self._attempt,
                target=target, local_read=True,
            )
        self.send(target, LocalRead(command, self.name, self._attempt))
        return True

    def _query_oracle(self) -> None:
        command = self._current
        if self.tracer.enabled:
            self.tracer.begin(
                command.uid, "oracle-lookup", self.now, disc=self._attempt,
                parent=self.tracer.find(
                    command.uid, "client-submit", self._attempt
                ),
                attempt=self._attempt,
            )
        query = OracleQuery(
            command, self.name, self._attempt, dispatch=self.dispatch_via_oracle
        )
        message = MulticastMessage(
            uid=f"q:{command.uid}:a{self._attempt}",
            dests=(self.oracle_group,),
            payload=query,
        )
        self.directory.amcast(self, message)

    def _choose_target(self, locations: tuple) -> str:
        """Same deterministic rule as the oracle: by default the
        partition with the most nodes, smallest name on ties; ``spread``
        breaks ties by hashing (uid, attempt), mirroring
        :meth:`repro.core.oracle.OracleReplica.choose_target`."""
        involved = sorted({p for _, p in locations})
        if self.target_policy == "first":
            return involved[0]
        counts = Counter(p for _, p in locations)
        top = max(counts.values())
        candidates = sorted(p for p, c in counts.items() if c == top)
        if self.target_policy == "spread" and len(candidates) > 1:
            return candidates[
                _stable_hash((self._current.uid, self._attempt))
                % len(candidates)
            ]
        return candidates[0]

    def _dispatch(self, locations: tuple, target: str) -> None:
        command = self._current
        involved = tuple(sorted({p for _, p in locations}))
        self._was_multi = len(involved) > 1
        if self.tracer.enabled:
            self.tracer.finish(
                command.uid, "client-submit", self.now, disc=self._attempt,
                target=target, partitions=len(involved),
            )
            self.tracer.begin(
                command.uid, "multicast-order", self.now, disc=self._attempt,
                attempt=self._attempt, target=target, partitions=len(involved),
            )
        if len(involved) == 1:
            payload: Any = ExecCommand(command, self.name, self._attempt)
        else:
            payload = GlobalCommand(
                command, self.name, self._attempt, target, locations
            )
        message = MulticastMessage(
            uid=f"x:{command.uid}:a{self._attempt}",
            dests=involved,
            payload=payload,
        )
        self.directory.amcast(self, message)

    # -- replies -----------------------------------------------------------------

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, Prophecy):
            self._on_prophecy(message)
        elif isinstance(message, Reply):
            self._on_reply(message)
        elif isinstance(message, ServerBusy):
            self._on_busy(message)

    def _on_prophecy(self, prophecy: Prophecy) -> None:
        command = self._current
        if (
            command is None
            or prophecy.uid != command.uid
            or prophecy.attempt != self._attempt
        ):
            return
        if self.breaker is not None:
            self.breaker.record_success()
        if self.tracer.enabled:
            self.tracer.finish(
                command.uid, "oracle-lookup", self.now, disc=prophecy.attempt,
                status=prophecy.status.name.lower(),
            )
        if prophecy.status == ProphecyStatus.NOK:
            self._complete(ReplyStatus.NOK, prophecy.reason)
            return
        for node, partition in prophecy.locations:
            self.cache[node] = partition
        if command.kind != CommandKind.ACCESS or self.dispatch_via_oracle:
            # The oracle dispatched; the client's submit phase ends here.
            if self.tracer.enabled:
                self.tracer.finish(
                    command.uid, "client-submit", self.now,
                    disc=prophecy.attempt, via_oracle=True,
                )
            return
        self._dispatch(prophecy.locations, prophecy.target)

    def _on_reply(self, reply: Reply) -> None:
        command = self._current
        if command is None or reply.uid != command.uid:
            return
        if self.breaker is not None:
            # Any real server answer — OK, NOK, even a protocol RETRY —
            # means the partition is alive and admitting; close up.
            self.breaker.record_success()
        if reply.status == ReplyStatus.RETRY:
            # Only the current attempt's RETRY matters; a stale one from
            # an attempt we already abandoned must not burn another retry.
            if reply.attempt != self._attempt:
                return
            self.retries += 1
            self.monitor.counter("client", event="retry").inc()
            if self.tracer.enabled:
                self.tracer.finish(
                    command.uid, "reply", self.now, disc=reply.attempt,
                    status="retry",
                )
                self.tracer.event(
                    command.uid, "retry", self.now,
                    attempt=reply.attempt, partition=reply.partition,
                )
            self._attempt += 1
            if self._attempt >= self.max_attempts:
                self._give_up("too many retries")
                return
            for node in self.app.nodes_of(command):
                self.cache.pop(node, None)
            self._arm_timeout()
            self._query_oracle()
            return
        # OK/NOK is accepted from *any* attempt: a late reply to a
        # timed-out attempt still carries the command's actual outcome
        # (servers answer retransmissions from their result cache).
        if self.tracer.enabled:
            self.tracer.finish(
                command.uid, "reply", self.now, disc=reply.attempt,
                status=reply.status.name.lower(),
            )
        self._complete(reply.status, reply.result)

    def _complete(self, status: ReplyStatus, result: Any) -> None:
        self._cancel_timeout()
        if self._retry_timer is not None:
            # A late reply can land mid-backoff; the queued retry must
            # not fire against the *next* command's attempt counter.
            self._retry_timer.cancel()
            self._retry_timer = None
        command = self._current
        latency = self.now - self._invoked_at
        self._current = None
        if self.tracer.enabled:
            self.tracer.finish_trace(
                command.uid, self.now,
                status=status.name.lower(), latency=latency,
                attempts=self._attempt + 1, multi=self._was_multi,
            )
        self.results[command.uid] = (status, result)
        if status == ReplyStatus.OK:
            self.completed += 1
            self.monitor.histogram("latency").observe(latency)
            self.monitor.histogram(
                "latency_multi" if self._was_multi else "latency_single"
            ).observe(latency)
            self.monitor.series("completed").record(self.now)
            self.monitor.counter("commands_completed").inc()
            if self.history is not None:
                self.history.record(
                    Operation(
                        client=self.name,
                        command=command,
                        invoked_at=self._invoked_at,
                        returned_at=self.now,
                        result=result,
                    )
                )
        else:
            self.failed += 1
            self.monitor.counter("commands_failed").inc()
        self._next()
