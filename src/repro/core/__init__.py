"""DynaStar core: location oracle, partition servers, caching clients.

This package implements the paper's contribution (§4-§5):

* :class:`~repro.core.oracle.OracleReplica` — the replicated location
  oracle: location map, on-the-fly workload graph, METIS-style
  repartitioning, prophecies.
* :class:`~repro.core.server.PartitionServer` — partition replicas that
  execute single-partition commands locally and multi-partition commands
  by *borrowing* the needed variables at one target partition and
  returning them after execution.
* :class:`~repro.core.client.DynaStarClient` — closed-loop clients with a
  location cache that only consult the oracle on misses and staleness.
* :class:`~repro.core.system.DynaStarSystem` — builder wiring everything
  onto a simulated network.
"""

from repro.core.admission import (
    AdmissionController,
    CircuitBreaker,
    RetryBudget,
    TokenBucket,
)
from repro.core.messages import (
    CreateVar,
    DeleteVar,
    ExecCommand,
    ExecutionHint,
    GlobalCommand,
    OracleQuery,
    PartitionPlan,
    PlanTransfer,
    Prophecy,
    ServerBusy,
    TransferFailed,
    VarReturn,
    VarTransfer,
)
from repro.core.oracle import OracleReplica
from repro.core.server import PartitionServer
from repro.core.client import DynaStarClient
from repro.core.system import DynaStarSystem, SystemConfig

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "RetryBudget",
    "TokenBucket",
    "ServerBusy",
    "CreateVar",
    "DeleteVar",
    "ExecCommand",
    "ExecutionHint",
    "GlobalCommand",
    "OracleQuery",
    "PartitionPlan",
    "PlanTransfer",
    "Prophecy",
    "TransferFailed",
    "VarReturn",
    "VarTransfer",
    "OracleReplica",
    "PartitionServer",
    "DynaStarClient",
    "DynaStarSystem",
    "SystemConfig",
]
