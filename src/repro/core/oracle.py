"""The DynaStar location oracle.

The oracle is an ordinary replicated partition (§4.1): every request
reaches it through the atomic multicast, so all replicas process the same
sequence of queries, hints, and plans, and their location map, workload
graph and version counters never diverge.

Three responsibilities:

* **Prophecies** — answer "where do the variables of command C live and
  which partition should execute it" (Task 1, Algorithm 2).  The target
  partition is the one holding most of the command's nodes, ties broken
  deterministically.
* **Workload graph** — ingest :class:`ExecutionHint` batches from the
  partitions; vertices accumulate access counts (vertex weight), edges
  accumulate co-access counts (edge weight).
* **Repartitioning** — once enough changes accumulate, run the multilevel
  partitioner (Task 4) and multicast the versioned plan to every
  partition and to itself; its own location map switches when the plan is
  a-delivered (Task 5), which is the §5.2 plan-id ordering trick.

Modes: ``dynastar`` (the full system), ``ssmr`` (static map, never
repartitions), ``dssmr`` (no workload graph; every multi-partition
prophecy permanently migrates the involved nodes to the target — the
naive DS-SMR policy the paper improves upon).
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Any, Optional

from repro.consensus.messages import Submit
from repro.core.admission import ADMIT, AdmissionController
from repro.core.messages import (
    CreateVar,
    DeleteVar,
    DrainComplete,
    ExecCommand,
    ExecutionHint,
    GlobalCommand,
    OracleQuery,
    PartitionPlan,
    PlanTransfer,
    Prophecy,
    ProphecyStatus,
    ReconfigPlan,
    ServerBusy,
)
from repro.elastic.policy import (
    ElasticConfig,
    apply_reconfig,
    decide_reconfig,
    split_assignment,
)
from repro.multicast.basecast import MulticastReplica
from repro.multicast.messages import MulticastMessage, OrderEvent
from repro.obs import audit as audit_mod
from repro.obs.audit import NULL_AUDIT, AuditLog
from repro.partitioning import WorkloadGraph, partition_graph
from repro.partitioning.quality import edge_cut as quality_edge_cut
from repro.partitioning.quality import imbalance_by_label
from repro.sim.monitor import Monitor
from repro.smr.command import Command, CommandKind
from repro.smr.statemachine import AppStateMachine


def _stable_hash(value: Any) -> int:
    """Deterministic hash (Python's ``hash`` is salted per process)."""
    return int.from_bytes(
        hashlib.sha256(repr(value).encode()).digest()[:8], "big"
    )


class OracleReplica(MulticastReplica):
    """One replica of the oracle partition."""

    def __init__(
        self,
        *args,
        app: Optional[AppStateMachine] = None,
        partition_names: Optional[list[str]] = None,
        monitor: Optional[Monitor] = None,
        mode: str = "dynastar",
        repartition_threshold: int = 2000,
        repartition_enabled: bool = True,
        plan_compute_cost: float = 1e-6,
        imbalance: float = 0.20,
        target_policy: str = "most_nodes",
        graph_decay: float = 0.5,
        admission_bound: Optional[int] = None,
        admission_headroom: Optional[int] = None,
        admission_retry_after: float = 0.05,
        admission_ttl: float = 30.0,
        audit: Optional[AuditLog] = None,
        elastic: Optional[ElasticConfig] = None,
        on_provision=None,
        on_retire=None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if target_policy not in ("most_nodes", "first", "hash", "spread"):
            raise ValueError(f"unknown target policy {target_policy!r}")
        if not 0.0 <= graph_decay <= 1.0:
            raise ValueError("graph_decay must be in [0, 1]")
        self.target_policy = target_policy
        #: Weight multiplier applied to the workload graph after each plan
        #: computation: 1.0 never forgets, smaller values favour recent
        #: access patterns (important for adapting to workload shifts).
        self.graph_decay = graph_decay
        self.app = app
        self.partition_names = sorted(partition_names or [])
        self.monitor = monitor or Monitor()
        self.mode = mode
        self.repartition_threshold = repartition_threshold
        self.repartition_enabled = repartition_enabled and mode == "dynastar"
        self.plan_compute_cost = plan_compute_cost
        self.imbalance = imbalance
        #: Decision audit log (shared across replicas; replica 0 records,
        #: same convention as metrics).  NULL_AUDIT costs one attribute
        #: read per decision when auditing is off.
        self.audit = audit if audit is not None else NULL_AUDIT
        #: Ingress admission for client queries (None disables).  A
        #: repartition-storming oracle sheds plain lookups first;
        #: create/delete traffic gets the priority headroom.
        self.admission = (
            AdmissionController(
                admission_bound,
                admission_headroom,
                admission_retry_after,
                admission_ttl,
            )
            if admission_bound is not None
            else None
        )

        self.location: dict[Any, str] = {}
        self.graph = WorkloadGraph()
        self.version = 0
        self.changes = 0
        self.plan_inflight = False
        self.plans_issued = 0

        #: Elastic split/merge policy (None disables elasticity) and the
        #: system-side hooks that provision/retire groups.  Every elastic
        #: input below is log-driven, so both replicas decide identically.
        self.elastic = elastic if mode == "dynastar" else None
        self.on_provision = on_provision
        self.on_retire = on_retire
        self.reconfig_epoch = 0
        self.reconfig_inflight = False
        self.reconfigs_done = 0
        #: Accesses observed since the last policy evaluation, and the
        #: per-partition window weights they came from.
        self.elastic_accesses = 0
        self.elastic_window: Counter = Counter()
        #: Accesses still to observe before the next reconfig may fire.
        self.elastic_cooldown_left = 0
        #: Reconfig computed but not yet multicast (publish-timer crash
        #: window) — republished on recovery, mirroring ``_pending_plan``.
        self._pending_reconfig: Optional[ReconfigPlan] = None
        #: The reconfig whose cutover/drain is still in progress:
        #: {"epoch", "kind", "source", "target", "cutover_version",
        #:  "decided_at"} — drives completion matching and audit.
        self._active_reconfig: Optional[dict] = None

        # Exactly-once for create/delete under client retries: remember
        # what each command did (recorded at query-handling time, i.e. at
        # a consistent log position on every replica) so a repeated query
        # replays the outcome instead of answering NOK "exists"/"missing".
        self._done_creates: dict[str, tuple] = {}
        self._done_deletes: dict[str, tuple] = {}
        # Client idempotency keys: a give-up-and-resubmit arrives under a
        # *fresh* command uid, so the uid-keyed caches above miss.  The
        # key -> original-uid maps bridge that gap (same log-position
        # determinism as the caches they index into).
        self._idem_creates: dict[str, str] = {}
        self._idem_deletes: dict[str, str] = {}
        #: Plan computed but whose publish timer had not fired yet —
        #: republished after a crash so repartitioning cannot wedge.
        self._pending_plan: Optional[PartitionPlan] = None

    @property
    def _records_metrics(self) -> bool:
        """Only replica 0 writes shared metrics, or counts double."""
        return self.index == 0

    # -- bootstrap ---------------------------------------------------------

    def preload_locations(self, assignment: dict) -> None:
        """Install the initial node -> partition map (system builder)."""
        self.location.update(assignment)
        for node in assignment:
            self.graph.ensure_vertex(node)

    # -- ingress admission control ----------------------------------------------

    def on_message(self, sender: str, message: Any) -> None:
        if (
            self.admission is not None
            and isinstance(message, Submit)
            and isinstance(message.value, OrderEvent)
            and not self._admit(sender, message.value.message)
        ):
            return
        super().on_message(sender, message)

    def _admit(self, sender: str, msg: MulticastMessage) -> bool:
        """Same ingress gate as the partition servers: client-originated
        queries are bounced with ``ServerBusy`` before they enter the
        oracle's log; replica-originated retransmits always pass."""
        payload = msg.payload
        if not isinstance(payload, OracleQuery) or payload.client != sender:
            return True
        if msg.uid in self.adelivered_uids or msg.uid in self.pending_msgs:
            return True
        command = payload.command
        if command.uid in self._done_creates or command.uid in self._done_deletes:
            return True  # replays answer from the exactly-once cache
        priority = command.kind != CommandKind.ACCESS
        outcome = self.admission.offer(command.uid, self.now, priority=priority)
        if self._records_metrics:
            self.monitor.series(
                "admission_depth", partition=self.group
            ).record(self.now, self.admission.depth)
        if outcome == ADMIT:
            return True
        # Per-replica decision, one real ServerBusy each: every replica
        # counts its own refusals (cf. PartitionServer._refuse).
        self.monitor.counter(
            "admission", partition=self.group, outcome=outcome
        ).inc()
        if self.tracer.enabled:
            self.tracer.event(
                command.uid, outcome, self.now,
                partition=self.group, replica=self.index,
                attempt=payload.attempt,
            )
        self.send(
            payload.client,
            ServerBusy(
                uid=command.uid,
                attempt=payload.attempt,
                partition=self.group,
                retry_after=self.admission.retry_after,
                reason=outcome,
            ),
        )
        return False

    # -- a-delivery dispatch ---------------------------------------------------

    def adeliver(self, msg: MulticastMessage) -> None:
        payload = msg.payload
        if isinstance(payload, OracleQuery):
            self._on_query(payload)
        elif isinstance(payload, CreateVar):
            self._on_create(payload)
        elif isinstance(payload, DeleteVar):
            self._on_delete(payload)
        elif isinstance(payload, ExecutionHint):
            self._on_hint(payload)
        elif isinstance(payload, PartitionPlan):
            self._on_plan(payload)
        elif isinstance(payload, ReconfigPlan):
            self._on_reconfig_plan(payload)
        elif isinstance(payload, DrainComplete):
            self._on_drain_complete(payload)

    # -- prophecies --------------------------------------------------------------

    def _on_query(self, query: OracleQuery) -> None:
        if self.admission is not None:
            # Answered at this log position (whatever the outcome); the
            # slot frees for the next query.
            self.admission.release(query.command.uid)
        if self._records_metrics:
            self.monitor.series("oracle_queries").record(self.now)
            self.monitor.counter("oracle_queries_total").inc()
            if self.tracer.enabled:
                self.tracer.event_on(
                    query.command.uid, "oracle-lookup", query.attempt,
                    "oracle-processed", self.now, oracle=self.name,
                )
        command = query.command
        if command.kind == CommandKind.CREATE:
            self._handle_create_query(query)
        elif command.kind == CommandKind.DELETE:
            self._handle_delete_query(query)
        else:
            self._handle_access_query(query)

    def _handle_create_query(self, query: OracleQuery) -> None:
        command = query.command
        done = self._done_creates.get(command.uid)
        if done is None and command.idem_key is not None:
            original = self._idem_creates.get(command.idem_key)
            if original is not None:
                done = self._done_creates.get(original)
        if done is not None:
            # Retried create: replay with an attempt-qualified multicast
            # uid so the CreateVar reaches the partition again (which
            # answers from its result cache), instead of NOK "exists".
            var, node, partition = done
            payload = CreateVar(
                command, var, node, partition, query.client, query.attempt
            )
            self._amcast_ordered(
                [self.group, partition],
                payload,
                uid=f"create:{command.uid}:a{query.attempt}",
            )
            self._prophesize(
                query,
                ProphecyStatus.OK,
                locations=((node, partition),),
                target=partition,
            )
            return
        var = command.args[0]
        node = self.app.graph_node_of(var)
        if node in self.location:
            self._prophesize(query, ProphecyStatus.NOK, reason="exists")
            return
        partition = self.partition_names[
            _stable_hash(node) % len(self.partition_names)
        ]
        self._done_creates[command.uid] = (var, node, partition)
        if command.idem_key is not None:
            self._idem_creates[command.idem_key] = command.uid
        payload = CreateVar(
            command, var, node, partition, query.client, query.attempt
        )
        self._amcast_ordered(
            [self.group, partition], payload, uid=f"create:{command.uid}"
        )
        self._prophesize(
            query,
            ProphecyStatus.OK,
            locations=((node, partition),),
            target=partition,
        )

    def _handle_delete_query(self, query: OracleQuery) -> None:
        command = query.command
        done = self._done_deletes.get(command.uid)
        if done is None and command.idem_key is not None:
            original = self._idem_deletes.get(command.idem_key)
            if original is not None:
                done = self._done_deletes.get(original)
        if done is not None:
            var, node, partition = done
            payload = DeleteVar(
                command, var, node, partition, query.client, query.attempt
            )
            self._amcast_ordered(
                [self.group, partition],
                payload,
                uid=f"delete:{command.uid}:a{query.attempt}",
            )
            self._prophesize(
                query,
                ProphecyStatus.OK,
                locations=((node, partition),),
                target=partition,
            )
            return
        var = command.args[0]
        node = self.app.graph_node_of(var)
        partition = self.location.get(node)
        if partition is None:
            self._prophesize(query, ProphecyStatus.NOK, reason="missing")
            return
        self._done_deletes[command.uid] = (var, node, partition)
        if command.idem_key is not None:
            self._idem_deletes[command.idem_key] = command.uid
        payload = DeleteVar(
            command, var, node, partition, query.client, query.attempt
        )
        self._amcast_ordered(
            [self.group, partition], payload, uid=f"delete:{command.uid}"
        )
        self._prophesize(
            query,
            ProphecyStatus.OK,
            locations=((node, partition),),
            target=partition,
        )

    def _handle_access_query(self, query: OracleQuery) -> None:
        command = query.command
        nodes = sorted(self.app.nodes_of(command), key=repr)
        missing = [n for n in nodes if n not in self.location]
        if missing:
            self._prophesize(query, ProphecyStatus.NOK, reason="missing")
            return
        locations = tuple((n, self.location[n]) for n in nodes)
        target = self.choose_target(locations, command.uid, query.attempt)
        if self.mode == "dssmr" and len({p for _, p in locations}) > 1:
            # DS-SMR: the move is permanent; the map changes right away.
            for node, _ in locations:
                self.location[node] = target
            if self._records_metrics:
                self.monitor.counter("dssmr_migrations").inc()
        self._prophesize(
            query, ProphecyStatus.OK, locations=locations, target=target
        )
        if query.dispatch:
            self._dispatch(query, locations, target)

    def choose_target(self, locations: tuple, uid: str = "", attempt: int = 0) -> str:
        """The partition that executes a multi-partition command.

        Default (``most_nodes``, the paper's rule): the partition holding
        most of the command's nodes, ties broken by name — minimizing the
        number of relocated variables.  ``spread`` keeps the most-nodes
        rule but breaks ties with a seeded hash of ``(uid, attempt)``, so
        retried and read-heavy queries fan out across the tied partitions
        instead of always landing on the lexicographically first one —
        deterministic (every replica computes the same target for the
        same query) yet balanced across commands.  ``first`` / ``hash``
        are weaker deterministic policies kept for the ablation
        benchmark.
        """
        involved = sorted({p for _, p in locations})
        if self.target_policy == "first":
            return involved[0]
        if self.target_policy == "hash":
            return involved[_stable_hash(tuple(locations)) % len(involved)]
        counts = Counter(p for _, p in locations)
        top = max(counts.values())
        candidates = sorted(p for p, c in counts.items() if c == top)
        if self.target_policy == "spread" and len(candidates) > 1:
            return candidates[_stable_hash((uid, attempt)) % len(candidates)]
        return candidates[0]

    def _dispatch(self, query: OracleQuery, locations: tuple, target: str) -> None:
        """Base-protocol mode: the oracle forwards the command itself."""
        involved = sorted({p for _, p in locations})
        uid = f"dispatch:{query.command.uid}:a{query.attempt}"
        if len(involved) == 1:
            payload = ExecCommand(query.command, query.client, query.attempt)
        else:
            payload = GlobalCommand(
                query.command, query.client, query.attempt, target, locations
            )
        self._amcast_ordered(involved, payload, uid=uid)

    def _prophesize(
        self,
        query: OracleQuery,
        status: ProphecyStatus,
        locations: tuple = (),
        target: Optional[str] = None,
        reason: str = "",
    ) -> None:
        prophecy = Prophecy(
            uid=query.command.uid,
            attempt=query.attempt,
            status=status,
            locations=locations,
            target=target,
            version=self.version,
            reason=reason,
        )
        self.send(query.client, prophecy)

    # -- create / delete application (Task 2) ----------------------------------------

    def _on_create(self, payload: CreateVar) -> None:
        self.location[payload.node] = payload.partition
        self.graph.ensure_vertex(payload.node)

    def _on_delete(self, payload: DeleteVar) -> None:
        self.location.pop(payload.node, None)
        if payload.node in self.graph:
            self.graph.remove_vertex(payload.node)

    # -- workload graph & repartitioning (Tasks 4 and 5) ------------------------------

    def _on_hint(self, hint: ExecutionHint) -> None:
        if self.mode != "dynastar":
            return
        accesses = 0
        for node, weight in hint.vertices:
            if node in self.location:
                self.graph.add_vertex(node, weight)
                accesses += weight
                if self.elastic is not None:
                    self.elastic_window[self.location[node]] += weight
        for u, v, weight in hint.edges:
            if u in self.location and v in self.location:
                self.graph.add_edge(u, v, weight)
        # "changes" counts observed node-accesses, so the threshold reads
        # as "repartition every N accesses".
        self.changes += accesses
        if self.elastic is not None and accesses:
            self.elastic_accesses += accesses
            if self.elastic_cooldown_left > 0:
                self.elastic_cooldown_left = max(
                    0, self.elastic_cooldown_left - accesses
                )
            self._maybe_reconfigure()
        self._maybe_repartition()

    def _maybe_repartition(self) -> None:
        # The trigger must depend only on log-driven state (changes,
        # plan_inflight) — never on local clocks — or the two oracle
        # replicas could compute *different* plans under the same uid.
        if (
            not self.repartition_enabled
            or self.plan_inflight
            or self.reconfig_inflight
            or self.changes < self.repartition_threshold
        ):
            return
        self.request_repartition(trigger="threshold")

    def request_repartition(self, trigger: str = "explicit") -> None:
        """Compute a new plan and multicast it after a virtual delay
        modelling the partitioner's computation time.

        All replicas compute the identical plan (the inputs come from the
        shared log and the partitioner is seeded by the plan version), and
        the multicast uid is derived from the version, so the plan enters
        every log exactly once no matter how many replicas send it.
        """
        if self.plan_inflight or self.reconfig_inflight or not self.partition_names:
            return
        self.plan_inflight = True
        audited = self.audit.enabled and self._records_metrics
        inputs = (
            {
                "trigger_changes": self.changes,
                "threshold": self.repartition_threshold,
                "vertices": self.graph.num_vertices,
                "edges": self.graph.num_edges,
                "vertex_weight": self.graph.total_vertex_weight,
                "edge_weight": self.graph.total_edge_weight,
                "decay": self.graph_decay,
            }
            if audited
            else None
        )
        self.changes = 0
        new_version = self.version + 1

        result = partition_graph(
            self.graph,
            len(self.partition_names),
            imbalance=self.imbalance,
            seed=new_version,
            restarts=3,
        )
        # Decay history so the NEXT plan is dominated by accesses observed
        # from now on (runs at the same log position on every replica).
        if self.graph_decay < 1.0:
            self.graph.scale_weights(self.graph_decay)
        assignment = self._align_plan_labels(result.assignment)
        # Nodes known to the map but absent from the graph keep their home.
        for node, partition in self.location.items():
            assignment.setdefault(node, partition)

        # Hysteresis: never publish a plan that does not beat the edge-cut
        # of the assignment the system is already running (the partitioner
        # is randomized; on small graphs a restart can still lose to a
        # converged incumbent).  Skipping is deterministic: every replica
        # evaluates the same graph and maps at the same log position.
        new_cut = quality_edge_cut(self.graph, assignment)
        current_cut = quality_edge_cut(self.graph, self.location)
        suppressed = new_cut >= current_cut * 0.98 and self.version > 0
        if audited:
            self.audit.decision(
                t=self.now,
                version=new_version,
                trigger=trigger,
                published=not suppressed,
                inputs=inputs,
                outputs=self._decision_outputs(assignment, current_cut, new_cut),
            )
        if suppressed:
            self.plan_inflight = False
            return

        plan = PartitionPlan(new_version, tuple(sorted(assignment.items(), key=lambda kv: repr(kv[0]))))
        self._pending_plan = plan
        delay = self.plan_compute_cost * max(1, self.graph.num_vertices)
        self.set_timer(delay, lambda: self._publish_plan(plan))

    def _decision_outputs(
        self, assignment: dict, current_cut: float, new_cut: float
    ) -> dict:
        """Audit-only plan summary: cut/imbalance before vs after, which
        partitions gain/lose nodes, and the heaviest moved vertices.
        Runs only when auditing is enabled (off the default path)."""
        k = len(self.partition_names)
        moved = [
            (node, target)
            for node, target in assignment.items()
            if self.location.get(node) not in (None, target)
        ]
        delta: dict[str, dict] = {
            name: {"gained": 0, "lost": 0} for name in self.partition_names
        }
        for node, target in moved:
            source = self.location[node]
            if source in delta:
                delta[source]["lost"] += 1
            if target in delta:
                delta[target]["gained"] += 1
        moved_top = sorted(
            (
                (node, self.graph.vertex_weight(node) if node in self.graph else 0.0)
                for node, _ in moved
            ),
            key=lambda pair: (-pair[1], repr(pair[0])),
        )[:10]
        return {
            "edge_cut_before": current_cut,
            "edge_cut_after": new_cut,
            "imbalance_before": imbalance_by_label(self.graph, self.location, k),
            "imbalance_after": imbalance_by_label(self.graph, assignment, k),
            "vertices_moved": len(moved),
            "moved_top": moved_top,
            "partition_delta": delta,
        }

    def _align_plan_labels(self, raw: dict) -> dict:
        """Map the partitioner's arbitrary part indices onto partition
        names so that as few nodes as possible change home — the paper's
        "minimizes the number of state relocations".  Greedy maximum-
        overlap matching between new parts and current partitions."""
        overlap: dict[int, Counter] = {}
        for node, idx in raw.items():
            current = self.location.get(node)
            if current is not None:
                overlap.setdefault(idx, Counter())[current] += 1
        candidates = []
        for idx, counts in overlap.items():
            for name, count in counts.items():
                candidates.append((count, idx, name))
        candidates.sort(key=lambda t: (-t[0], t[1], t[2]))
        idx_to_name: dict[int, str] = {}
        used: set[str] = set()
        for count, idx, name in candidates:
            if idx in idx_to_name or name in used:
                continue
            idx_to_name[idx] = name
            used.add(name)
        spare = [n for n in self.partition_names if n not in used]
        for idx in range(len(self.partition_names)):
            if idx not in idx_to_name:
                idx_to_name[idx] = spare.pop(0)
        return {node: idx_to_name[idx] for node, idx in raw.items()}

    def _publish_plan(self, plan: PartitionPlan) -> None:
        if self.audit.enabled and self._records_metrics:
            self.audit.record(
                audit_mod.PUBLISHED, self.now,
                version=plan.version, assignments=len(plan.assignment),
            )
        # Retiring partitions already left partition_names (future plans
        # exclude them) but the cutover itself must still reach them.
        dests = [self.group] + self.partition_names
        dests += [p for p in plan.retiring if p not in dests]
        self._amcast_ordered(dests, plan, uid=f"plan:{plan.version}")

    def _on_plan(self, plan: PartitionPlan) -> None:
        if plan.version <= self.version:
            return
        self.version = plan.version
        self.location.update(plan.as_dict())
        self.plan_inflight = False
        self.plans_issued += 1
        if self._pending_plan is not None and self._pending_plan.version <= plan.version:
            self._pending_plan = None
        if self._records_metrics:
            self.monitor.counter("plans_applied").inc()
            self.monitor.series("plans").record(self.now)
            if self.audit.enabled:
                self.audit.record(
                    audit_mod.APPLIED, self.now,
                    version=plan.version, actor="oracle",
                )
        active = self._active_reconfig
        if active is not None and plan.version == active["cutover_version"]:
            self._on_cutover_applied(active)

    # -- elastic reconfiguration (split / merge) ---------------------------------------

    def _maybe_reconfigure(self) -> None:
        """Log-driven split/merge trigger: evaluated every
        ``eval_interval`` observed accesses over the window weights —
        never on local clocks, for the same reason as the repartition
        trigger."""
        cfg = self.elastic
        if (
            cfg is None
            or self.reconfig_inflight
            or self.plan_inflight
            or self.elastic_cooldown_left > 0
            or self.elastic_accesses < cfg.eval_interval
        ):
            return
        window = dict(self.elastic_window)
        self.elastic_accesses = 0
        self.elastic_window.clear()
        node_counts: Counter = Counter(self.location.values())
        decision = decide_reconfig(
            window, node_counts, self.partition_names, cfg
        )
        if decision is None:
            return
        self._request_reconfig(decision, window)

    def _request_reconfig(self, decision, window: dict) -> None:
        """Phase 1: turn a policy verdict into an epoch-tagged
        :class:`ReconfigPlan` and multicast it through the oracle's own
        log after the modeled compute delay.  Both replicas compute the
        identical plan at the same log position and the uid is derived
        from the epoch, so it enters the log exactly once."""
        epoch = self.reconfig_epoch + 1
        if decision.kind == "split":
            moved = split_assignment(
                self.graph,
                self.location,
                decision.source,
                seed=epoch,
                imbalance=self.imbalance,
            )
            if not moved:
                return
            plan = ReconfigPlan(
                epoch=epoch,
                kind="split",
                source=decision.source,
                target=f"e{epoch}",
                moved=moved,
            )
        else:
            plan = ReconfigPlan(
                epoch=epoch,
                kind="merge",
                source=decision.source,
                target=decision.target,
            )
        self.reconfig_inflight = True
        self.elastic_cooldown_left = self.elastic.cooldown
        if self.audit.enabled and self._records_metrics:
            self.audit.record(
                audit_mod.RECONFIG_DECISION, self.now,
                epoch=epoch, op=plan.kind,
                source=plan.source, target=plan.target,
                moved=len(plan.moved),
                window=dict(sorted(window.items())),
                partitions=len(self.partition_names),
            )
        self._pending_reconfig = plan
        delay = self.plan_compute_cost * max(1, self.graph.num_vertices)
        self.set_timer(delay, lambda: self._publish_reconfig(plan))

    def _publish_reconfig(self, plan: ReconfigPlan) -> None:
        self._amcast_ordered(
            [self.group], plan, uid=f"reconfig:{plan.epoch}"
        )

    def _on_reconfig_plan(self, plan: ReconfigPlan) -> None:
        """Phase 1 commit + phase 2 kickoff, at one oracle log position.

        Epoch guard makes redelivery (recovered replica replaying its
        log) a no-op.  The topology change, the provision hook, and the
        cutover-plan publish happen in this single a-delivery so there is
        no observable state between them; crash safety comes from the
        pending-plan republish (cutover) and the retiring servers' drain
        announcements (merge completion)."""
        if plan.epoch <= self.reconfig_epoch:
            return
        self.reconfig_epoch = plan.epoch
        self.reconfig_inflight = True
        if (
            self._pending_reconfig is not None
            and self._pending_reconfig.epoch <= plan.epoch
        ):
            self._pending_reconfig = None

        if plan.kind == "split":
            if plan.target not in self.partition_names:
                self.partition_names.append(plan.target)
                self.partition_names.sort()
            if self.on_provision is not None:
                self.on_provision(plan.target)
            if self.audit.enabled and self._records_metrics:
                self.audit.record(
                    audit_mod.RECONFIG_PROVISION, self.now,
                    epoch=plan.epoch, partition=plan.target,
                    source=plan.source,
                )
        else:
            if plan.source in self.partition_names:
                self.partition_names.remove(plan.source)

        assignment = apply_reconfig(self.location, plan)
        cutover = PartitionPlan(
            self.version + 1,
            tuple(sorted(assignment.items(), key=lambda kv: repr(kv[0]))),
            retiring=(plan.source,) if plan.kind == "merge" else (),
        )
        self._active_reconfig = {
            "epoch": plan.epoch,
            "kind": plan.kind,
            "source": plan.source,
            "target": plan.target,
            "cutover_version": cutover.version,
            "decided_at": self.now,
        }
        self.plan_inflight = True
        self._pending_plan = cutover
        self._publish_plan(cutover)

    def _on_cutover_applied(self, active: dict) -> None:
        """The cutover plan is a-delivered everywhere it matters (it
        shares the totally ordered plan path).  A split completes here;
        a merge stays active until the retiring group drains."""
        if self.audit.enabled and self._records_metrics:
            self.audit.record(
                audit_mod.RECONFIG_CUTOVER, self.now,
                epoch=active["epoch"], op=active["kind"],
                version=active["cutover_version"],
                source=active["source"], target=active["target"],
            )
        if active["kind"] == "split":
            self._complete_reconfig()

    def _on_drain_complete(self, done: DrainComplete) -> None:
        active = self._active_reconfig
        if (
            active is None
            or active["kind"] != "merge"
            or done.partition != active["source"]
        ):
            return  # duplicate or stale announcement
        if self.audit.enabled and self._records_metrics:
            self.audit.record(
                audit_mod.RECONFIG_RETIRED, self.now,
                epoch=active["epoch"], partition=done.partition,
                version=done.version, target=active["target"],
            )
        if self.on_retire is not None:
            self.on_retire(done.partition)
        self._complete_reconfig()

    def _complete_reconfig(self) -> None:
        self._active_reconfig = None
        self.reconfig_inflight = False
        self.reconfigs_done += 1
        if self._records_metrics:
            self.monitor.counter("reconfigs_applied").inc()

    def on_recover(self) -> None:
        super().on_recover()
        # A plan computed before the crash whose publish timer never fired
        # would leave plan_inflight stuck forever; republish it (the
        # version-derived multicast uid deduplicates against any copy the
        # other replica already published).
        pending = self._pending_plan
        if pending is not None and pending.version > self.version:
            self.set_timer(
                self.plan_compute_cost, lambda: self._publish_plan(pending)
            )
        self._republish_pending_reconfig()

    def _republish_pending_reconfig(self) -> None:
        """Liveness guard mirroring the pending-plan republish: a
        reconfig decided before a crash whose publish timer never fired
        would leave ``reconfig_inflight`` wedged.  The epoch-derived uid
        deduplicates against any copy already in the log."""
        pending = self._pending_reconfig
        if pending is not None and pending.epoch > self.reconfig_epoch:
            self.set_timer(
                self.plan_compute_cost,
                lambda: self._publish_reconfig(pending),
            )

    # -- checkpointing ---------------------------------------------------------------------

    def capture_app_state(self) -> dict:
        state = super().capture_app_state()
        state["oracle.location"] = dict(self.location)
        state["oracle.state"] = {
            "graph": self.graph.copy(),
            "version": self.version,
            "changes": self.changes,
            "plan_inflight": self.plan_inflight,
            "plans_issued": self.plans_issued,
            "done_creates": sorted(self._done_creates.items()),
            "done_deletes": sorted(self._done_deletes.items()),
            "idem_creates": sorted(self._idem_creates.items()),
            "idem_deletes": sorted(self._idem_deletes.items()),
            "pending_plan": self._pending_plan,
            "partition_names": list(self.partition_names),
            "reconfig_epoch": self.reconfig_epoch,
            "reconfig_inflight": self.reconfig_inflight,
            "reconfigs_done": self.reconfigs_done,
            "elastic_accesses": self.elastic_accesses,
            "elastic_window": sorted(self.elastic_window.items()),
            "elastic_cooldown_left": self.elastic_cooldown_left,
            "pending_reconfig": self._pending_reconfig,
            "active_reconfig": (
                dict(self._active_reconfig)
                if self._active_reconfig is not None
                else None
            ),
        }
        return state

    def install_app_state(self, sections: dict) -> None:
        super().install_app_state(sections)
        self.location = dict(sections.get("oracle.location", {}))
        state = sections.get("oracle.state", {})
        graph = state.get("graph")
        self.graph = graph.copy() if graph is not None else WorkloadGraph()
        self.version = state.get("version", 0)
        self.changes = state.get("changes", 0)
        self.plan_inflight = state.get("plan_inflight", False)
        self.plans_issued = state.get("plans_issued", 0)
        self._done_creates = dict(state.get("done_creates", ()))
        self._done_deletes = dict(state.get("done_deletes", ()))
        self._idem_creates = dict(state.get("idem_creates", ()))
        self._idem_deletes = dict(state.get("idem_deletes", ()))
        self._pending_plan = state.get("pending_plan")
        self.partition_names = list(
            state.get("partition_names", self.partition_names)
        )
        self.reconfig_epoch = state.get("reconfig_epoch", 0)
        self.reconfig_inflight = state.get("reconfig_inflight", False)
        self.reconfigs_done = state.get("reconfigs_done", 0)
        self.elastic_accesses = state.get("elastic_accesses", 0)
        self.elastic_window = Counter(dict(state.get("elastic_window", ())))
        self.elastic_cooldown_left = state.get("elastic_cooldown_left", 0)
        self._pending_reconfig = state.get("pending_reconfig")
        active = state.get("active_reconfig")
        self._active_reconfig = dict(active) if active is not None else None
        # A checkpoint can describe partitions this (lagging) replica has
        # never seen provisioned; the hook is idempotent system-wide.
        if self.on_provision is not None:
            for name in self.partition_names:
                self.on_provision(name)
        # Same liveness guard as on_recover: a plan computed before the
        # provider's checkpoint whose publish timer never fired here must
        # be (re)published or plan_inflight wedges forever.
        pending = self._pending_plan
        if pending is not None and pending.version > self.version:
            self.set_timer(
                self.plan_compute_cost, lambda: self._publish_plan(pending)
            )
        self._republish_pending_reconfig()

    # -- helpers -------------------------------------------------------------------------

    def _amcast_ordered(self, dests, payload, uid: str) -> None:
        """a-mcast with a deterministic uid so that every oracle replica
        can issue the same multicast and it is delivered once."""
        command = getattr(payload, "command", None)
        attempt = getattr(payload, "attempt", None)
        if command is not None and attempt is not None and self.tracer.enabled:
            # The oracle forwards the command itself (dispatch mode and
            # create/delete): the ordering stage starts here rather than
            # at the client.  Get-or-create: both replicas multicast, one
            # span results.
            self.tracer.begin(
                command.uid, "multicast-order", self.now, disc=attempt,
                via_oracle=True, attempt=attempt,
            )
        message = MulticastMessage(
            uid=uid, dests=tuple(sorted(set(dests))), payload=payload
        )
        self._directory.amcast_local(self, message)
