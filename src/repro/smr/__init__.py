"""State-machine-replication framework shared by DynaStar and baselines.

Defines the command/reply vocabulary, the application state-machine
interface (the paper's ``PRObject`` / ``PartitionStateMachine``
equivalents), the partition-local variable store, and a Wing & Gong
linearizability checker used by the correctness tests.
"""

from repro.smr.command import Command, Reply, ReplyStatus
from repro.smr.statemachine import AppStateMachine, VariableStore, KeyValueApp
from repro.smr.linearizability import History, Operation, check_linearizable

__all__ = [
    "Command",
    "Reply",
    "ReplyStatus",
    "AppStateMachine",
    "VariableStore",
    "KeyValueApp",
    "History",
    "Operation",
    "check_linearizable",
]
