"""Fast value copying for variable transfers.

State-variable values in this repository are compositions of dicts,
lists, sets, tuples and scalars; ``copy_value`` copies those directly —
an order of magnitude faster than :func:`copy.deepcopy`, which dominates
transfer-heavy simulations otherwise.  Unknown types fall back to
``deepcopy`` so correctness never depends on the fast path.
"""

from __future__ import annotations

import copy as _copy

_SCALARS = (int, float, str, bool, bytes, type(None), complex)


def copy_value(value):
    """A deep copy of ``value`` specialized for plain-data shapes."""
    if isinstance(value, _SCALARS):
        return value
    kind = type(value)
    if kind is dict:
        return {k: copy_value(v) for k, v in value.items()}
    if kind is list:
        return [copy_value(v) for v in value]
    if kind is tuple:
        return tuple(copy_value(v) for v in value)
    if kind is set:
        return {copy_value(v) for v in value}
    if kind is frozenset:
        return frozenset(copy_value(v) for v in value)
    return _copy.deepcopy(value)
