"""Fast value copying for variable transfers.

State-variable values in this repository are compositions of dicts,
lists, sets, tuples and scalars; ``copy_value`` copies those directly —
an order of magnitude faster than :func:`copy.deepcopy`, which dominates
transfer-heavy simulations otherwise.  Unknown types fall back to
``deepcopy`` so correctness never depends on the fast path.

The hot-path trick is an *immutability scan*: a container whose elements
are all scalars needs no per-element recursion — a tuple or frozenset of
scalars is immutable all the way down and is returned as-is (the same
answer ``deepcopy`` gives for atomic content), and a list/set/dict of
scalars shallow-copies in one C-level call.  Profiles of the social
workload show >90 % of copied containers hit these paths.
"""

from __future__ import annotations

import copy as _copy

_SCALARS = (int, float, str, bool, bytes, type(None), complex)
#: Exact-type membership test — faster than isinstance on the hot path.
#: Scalar *subclasses* (rare; e.g. enums) miss it and take the deepcopy
#: fallback, which handles them correctly.
_SCALAR_TYPES = frozenset(_SCALARS)


def copy_value(value):
    """A deep copy of ``value`` specialized for plain-data shapes."""
    kind = type(value)
    if kind in _SCALAR_TYPES:
        return value
    if kind is dict:
        scalars = _SCALAR_TYPES
        for v in value.values():
            if type(v) not in scalars:
                return {
                    k: (v if type(v) in scalars else copy_value(v))
                    for k, v in value.items()
                }
        return dict(value)
    if kind is list:
        scalars = _SCALAR_TYPES
        for v in value:
            if type(v) not in scalars:
                return [v if type(v) in scalars else copy_value(v) for v in value]
        return value.copy()
    if kind is tuple:
        scalars = _SCALAR_TYPES
        for v in value:
            if type(v) not in scalars:
                return tuple(
                    v if type(v) in scalars else copy_value(v) for v in value
                )
        return value  # immutable all the way down: no copy needed
    if kind is set:
        scalars = _SCALAR_TYPES
        for v in value:
            if type(v) not in scalars:
                return {copy_value(v) for v in value}
        return set(value)
    if kind is frozenset:
        scalars = _SCALAR_TYPES
        for v in value:
            if type(v) not in scalars:
                return frozenset(copy_value(v) for v in value)
        return value  # immutable all the way down
    return _copy.deepcopy(value)
