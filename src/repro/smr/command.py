"""Commands and replies.

A :class:`Command` is the unit of work a client submits: an application
operation plus its arguments.  The set of state variables it accesses is
a function of the command alone (the paper's ``vars(C)``), provided by
the application state machine, so routing can be decided before
execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class CommandKind(enum.Enum):
    """The three DynaStar command classes (§4.1)."""

    CREATE = "create"
    ACCESS = "access"
    DELETE = "delete"


@dataclass(frozen=True, slots=True)
class Command:
    """An application command.

    ``uid`` must be globally unique (clients use ``"{client}:{seq}"``).
    ``op`` names the application operation; ``args`` are its arguments.
    ``kind`` distinguishes create/delete from ordinary access commands,
    which the oracle treats differently.

    ``idem_key`` is an optional client-generated idempotency key: unlike
    the uid (fresh per submission), the key survives a give-up-and-
    resubmit, so the server result caches can answer a resubmitted
    command under a *new* uid from the original execution — exactly-once
    across reconfigurations and replica failover.
    """

    uid: str
    op: str
    args: tuple = ()
    kind: CommandKind = CommandKind.ACCESS
    idem_key: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.op}{self.args}#{self.uid}"


class ReplyStatus(enum.Enum):
    OK = "ok"
    NOK = "nok"  # command cannot be executed (missing/duplicate variable)
    RETRY = "retry"  # addressed partition not responsible; refresh cache


@dataclass(frozen=True, slots=True)
class Reply:
    """A server's (or the oracle's) answer to a client command.

    ``attempt`` echoes the client's dispatch attempt so stale replies
    from an earlier attempt are ignored; replicated servers all reply and
    the client deduplicates by (uid, attempt).
    """

    uid: str
    status: ReplyStatus
    result: Any = None
    attempt: int = 0
    partition: str = ""
