"""Application state-machine interface and partition-local variable store.

An application (Chirper, TPC-C, or a plain key-value store) implements
:class:`AppStateMachine`:

* ``variables_of(command)`` — the paper's ``vars(C)``: which state
  variables a command reads/writes, computable without executing it.
* ``graph_node_of(var)`` — the workload-graph granularity mapping (§5.3):
  TPC-C maps rows to their district/warehouse node, Chirper maps each
  user's objects to the user node.  Location (and relocation) is tracked
  per *node*; variables move with their node, or individually when
  borrowed.
* ``execute(command, store)`` — deterministic execution against a
  :class:`VariableStore`.

Determinism contract: ``execute`` must depend only on the command and the
store contents — no wall clock, no unseeded randomness — so that every
replica of a partition computes identical results.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.smr.fastcopy import copy_value
from typing import Any, Callable, Hashable, Iterable, Optional

from repro.smr.command import Command


@dataclass(frozen=True)
class NodeWildcard:
    """A ``variables_of`` entry meaning "every variable of this node".

    Used by commands whose concrete read keys depend on state (e.g.
    TPC-C Delivery scans for the oldest undelivered order).  Routing uses
    the node; when the node must be borrowed for a multi-partition
    command, the source ships all of the node's variables.
    """

    node: Hashable


@dataclass(frozen=True)
class CommandFootprint:
    """Pre-computed read/write sets of one command, at both granularities.

    Concrete variable ids are compared exactly; :class:`NodeWildcard`
    entries are compared at graph-node granularity, against the *other*
    footprint's full node set — a wildcard may touch any variable of its
    node, so any command touching that node conflicts with it (unless
    both sides only read).
    """

    read_vars: frozenset
    write_vars: frozenset
    read_nodes: frozenset  # nodes of read entries (wildcard or concrete)
    write_nodes: frozenset  # nodes of write entries (wildcard or concrete)
    read_wildcards: frozenset  # nodes with a read NodeWildcard
    write_wildcards: frozenset  # nodes with a write NodeWildcard


def footprint_of(app: "AppStateMachine", command: Command) -> CommandFootprint:
    """Compute ``command``'s conflict footprint under ``app``'s signature."""
    read_vars, write_vars = set(), set()
    read_nodes, write_nodes = set(), set()
    read_wild, write_wild = set(), set()
    reads = frozenset(app.read_variables_of(command))
    exempt = frozenset(app.conflict_free_variables_of(command))
    for entry in app.variables_of(command):
        if entry in exempt:
            continue
        is_read = entry in reads
        if isinstance(entry, NodeWildcard):
            (read_wild if is_read else write_wild).add(entry.node)
            (read_nodes if is_read else write_nodes).add(entry.node)
        else:
            (read_vars if is_read else write_vars).add(entry)
            node = app.graph_node_of(entry)
            (read_nodes if is_read else write_nodes).add(node)
    return CommandFootprint(
        read_vars=frozenset(read_vars),
        write_vars=frozenset(write_vars),
        read_nodes=frozenset(read_nodes),
        write_nodes=frozenset(write_nodes),
        read_wildcards=frozenset(read_wild),
        write_wildcards=frozenset(write_wild),
    )


def footprints_conflict(a: CommandFootprint, b: CommandFootprint) -> bool:
    """True iff the two commands must keep their log order.

    Write/write or write/read overlap on concrete variables conflicts;
    wildcard entries conflict at node granularity against everything the
    other command touches in that node.  Read/read overlap never
    conflicts.
    """
    if a.write_vars & (b.read_vars | b.write_vars):
        return True
    if b.write_vars & a.read_vars:
        return True
    # Wildcard writes clash with any touch of the node; wildcard reads
    # clash only with the other side's writes to the node.
    if a.write_wildcards & (b.read_nodes | b.write_nodes):
        return True
    if b.write_wildcards & (a.read_nodes | a.write_nodes):
        return True
    if a.read_wildcards & b.write_nodes:
        return True
    if b.read_wildcards & a.write_nodes:
        return True
    return False


class VariableStore:
    """The variables a partition currently holds.

    Values are deep-copied on insertion from a transfer so partitions
    never alias each other's state (the simulator shares one address
    space; a real deployment would serialize).
    """

    def __init__(self) -> None:
        self._data: dict[Hashable, Any] = {}
        self._written: Optional[set] = None
        self._removed: Optional[set] = None
        self._observer: Optional[Callable[[Hashable, bool], None]] = None

    def set_observer(self, observer: Optional[Callable[[Hashable, bool], None]]) -> None:
        """Install a mutation observer called as ``observer(var, removed)``
        on every write/remove (used by the compartmentalized learner feed
        — every mutation path funnels through ``_note_write``/
        ``_note_remove``, so one hook covers puts, takes, transfers and
        plan moves alike)."""
        self._observer = observer

    # -- mutation tracking (used by servers to learn inserts/deletes) ----

    def begin_tracking(self) -> None:
        """Start recording which variables are written or removed."""
        self._written = set()
        self._removed = set()

    def end_tracking(self) -> tuple[set, set]:
        """Stop recording; returns (written, removed) variable sets."""
        written, removed = self._written or set(), self._removed or set()
        self._written = None
        self._removed = None
        return written, removed

    def _note_write(self, var: Hashable) -> None:
        if self._written is not None:
            self._written.add(var)
            self._removed.discard(var)
        if self._observer is not None:
            self._observer(var, False)

    def _note_remove(self, var: Hashable) -> None:
        if self._removed is not None:
            self._removed.add(var)
            self._written.discard(var)
        if self._observer is not None:
            self._observer(var, True)

    def __contains__(self, var: Hashable) -> bool:
        return var in self._data

    def __len__(self) -> int:
        return len(self._data)

    def get(self, var: Hashable) -> Any:
        return self._data[var]

    def get_or_none(self, var: Hashable) -> Any:
        return self._data.get(var)

    def put(self, var: Hashable, value: Any) -> None:
        self._data[var] = value
        self._note_write(var)

    def remove(self, var: Hashable) -> Any:
        value = self._data.pop(var)
        self._note_remove(var)
        return value

    def discard(self, var: Hashable) -> None:
        if var in self._data:
            del self._data[var]
            self._note_remove(var)

    def take(self, var: Hashable) -> Any:
        """Remove and return a deep copy (used when lending variables)."""
        value = copy_value(self._data.pop(var))
        self._note_remove(var)
        return value

    def insert_copy(self, var: Hashable, value: Any) -> None:
        self._data[var] = copy_value(value)
        self._note_write(var)

    def snapshot(self, vars: Iterable[Hashable]) -> dict:
        """Deep-copied {var: value} for the requested variables."""
        return {v: copy_value(self._data[v]) for v in vars if v in self._data}

    def variables(self) -> list:
        return list(self._data)

    def items(self):
        return self._data.items()


class AppStateMachine:
    """Base class for replicated applications."""

    def variables_of(self, command: Command) -> frozenset:
        """The state variables ``command`` reads or writes (``vars(C)``).

        Entries may be concrete variable ids or :class:`NodeWildcard`
        markers for commands whose concrete keys depend on state.
        """
        raise NotImplementedError

    def read_variables_of(self, command: Command) -> frozenset:
        """The subset of ``variables_of`` the command only *reads*.

        Entries may be concrete variable ids or :class:`NodeWildcard`
        markers, and must be a subset of ``variables_of(command)``.
        Two commands whose footprints only overlap on read entries
        commute, which the parallel intra-partition scheduler exploits
        (P-SMR-style).  The safe default is the empty set — everything
        is treated as a write, so applications that do not declare read
        sets keep strictly serial conflict semantics.
        """
        return frozenset()

    def write_variables_of(self, command: Command) -> frozenset:
        """``variables_of`` minus the declared read-only entries.

        An entry that a command both reads and writes must stay out of
        ``read_variables_of`` (writes win — conservative).
        """
        return frozenset(self.variables_of(command)) - frozenset(
            self.read_variables_of(command)
        )

    def conflict_free_variables_of(self, command: Command) -> frozenset:
        """Entries of ``variables_of`` to exclude from the conflict
        footprint entirely (P-SMR-style declared conflict relations).

        Use for semantic commutativity the variable-level predicate is
        too coarse for: the command reads only fields of these variables
        that no other command's writes observably change — e.g. TPC-C's
        New-Order reads the warehouse row only for its immutable tax
        rate, while Payment's writes to the same row touch only the ytd
        counter New-Order never looks at.  Routing and borrowing still
        use the full ``variables_of``.  Default: none (every declared
        variable participates in conflict detection)."""
        return frozenset()

    def graph_node_of(self, var: Hashable) -> Hashable:
        """Workload-graph node a variable belongs to (defaults to itself)."""
        return var

    def nodes_of(self, command: Command) -> frozenset:
        """Graph nodes touched by ``command`` (wildcards map to their node)."""
        nodes = set()
        for entry in self.variables_of(command):
            if isinstance(entry, NodeWildcard):
                nodes.add(entry.node)
            else:
                nodes.add(self.graph_node_of(entry))
        return frozenset(nodes)

    def concrete_variables_of(self, command: Command) -> set:
        """``variables_of`` minus the wildcards."""
        return {
            v
            for v in self.variables_of(command)
            if not isinstance(v, NodeWildcard)
        }

    def wildcard_nodes_of(self, command: Command) -> set:
        """Nodes whose full variable set the command may touch."""
        return {
            v.node
            for v in self.variables_of(command)
            if isinstance(v, NodeWildcard)
        }

    def borrow_variables(self, command: Command, node, store, node_vars):
        """Which of wildcard ``node``'s variables to ship when lending it
        for ``command``.

        Called on the partition that *owns* the node, with its live
        ``store`` and the node's current variable set ``node_vars``, in
        SMR order — so the selection is deterministic and sees exactly
        the state the command will execute against.  Return an iterable
        of variable ids, or ``None`` to ship the whole node (the safe
        default).  Applications override this to keep borrows
        fine-grained ("only those objects will be moved on demand,
        rather than the whole district" — §5.3).
        """
        return None

    def execute(self, command: Command, store: VariableStore) -> Any:
        """Apply ``command`` to ``store`` and return its result."""
        raise NotImplementedError

    def is_readonly(self, command: Command) -> bool:
        """True iff ``execute`` never mutates the store for ``command``.

        Read-only commands are eligible for lease-checked local reads on
        a partition's learner replicas (compartmentalized mode).  The
        safe default is ``False`` — such commands simply take the
        ordered path."""
        return False

    def initial_variables(self) -> dict:
        """{var: initial value} used to preload partitions."""
        return {}

    def initial_value_of(self, var: Hashable) -> Any:
        """Initial value for a variable created by a ``create`` command."""
        return None


class KeyValueApp(AppStateMachine):
    """A minimal multi-key read/write/transfer application.

    Used throughout the unit tests and the quickstart example: small
    enough to reason about, rich enough to produce single- and
    multi-partition commands.

    Operations:

    * ``("read", key)`` -> value, or ``None`` when the key is missing
      (e.g. a read racing a ``delete`` of the same key)
    * ``("write", key, value)`` -> old value
    * ``("sum", key1, ..., keyN)`` -> sum of the values; missing keys
      count as 0
    * ``("transfer", src, dst, amount)`` -> (new_src, new_dst); raises
      ``KeyError`` (-> NOK reply) before mutating anything if either
      endpoint is missing
    """

    def __init__(self, initial: Optional[dict] = None):
        self._initial = dict(initial or {})

    def initial_variables(self) -> dict:
        return dict(self._initial)

    def initial_value_of(self, var: Hashable) -> Any:
        return 0

    def variables_of(self, command: Command) -> frozenset:
        op = command.op
        if op in ("read", "write"):
            return frozenset({command.args[0]})
        if op == "sum":
            return frozenset(command.args)
        if op == "transfer":
            return frozenset(command.args[:2])
        if op in ("create", "delete"):
            return frozenset({command.args[0]})
        raise ValueError(f"unknown op {op!r}")

    def is_readonly(self, command: Command) -> bool:
        return command.op in ("read", "sum")

    def read_variables_of(self, command: Command) -> frozenset:
        if command.op in ("read", "sum"):
            return self.variables_of(command)
        return frozenset()

    def execute(self, command: Command, store: VariableStore) -> Any:
        op = command.op
        if op == "read":
            # Deterministic miss value: a read racing a delete of the
            # same key is an application-level miss, not a replica crash.
            return store.get_or_none(command.args[0])
        if op == "write":
            key, value = command.args
            old = store.get_or_none(key)
            store.put(key, value)
            return old
        if op == "sum":
            return sum(store.get_or_none(k) or 0 for k in command.args)
        if op == "transfer":
            src, dst, amount = command.args
            # Validate both endpoints before the first mutation so a
            # missing key yields a clean NOK instead of a half-applied
            # transfer.
            if src not in store:
                raise KeyError(src)
            if dst not in store:
                raise KeyError(dst)
            store.put(src, store.get(src) - amount)
            store.put(dst, store.get(dst) + amount)
            return (store.get(src), store.get(dst))
        if op == "create":
            store.put(command.args[0], self.initial_value_of(command.args[0]))
            return True
        if op == "delete":
            store.discard(command.args[0])
            return True
        raise ValueError(f"unknown op {op!r}")
