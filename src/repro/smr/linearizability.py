"""Wing & Gong linearizability checker.

Given a concurrent history of client operations (invocation time,
response time, command, observed result) and a sequential specification
(an :class:`~repro.smr.statemachine.AppStateMachine` plus initial state),
the checker searches for a legal sequential order that respects real-time
precedence and reproduces every observed result.

The search is exponential in the worst case but is pruned by memoizing
(visited operation subsets, state fingerprint) pairs, which handles the
few-hundred-operation histories the correctness tests generate.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Optional

from repro.smr.command import Command
from repro.smr.statemachine import AppStateMachine, VariableStore


@dataclass(frozen=True)
class Operation:
    """One completed client operation in the history."""

    client: str
    command: Command
    invoked_at: float
    returned_at: float
    result: Any


class History:
    """A concurrent execution history under construction."""

    def __init__(self) -> None:
        self.operations: list[Operation] = []

    def record(self, op: Operation) -> None:
        if op.returned_at < op.invoked_at:
            raise ValueError("operation returned before it was invoked")
        self.operations.append(op)

    def __len__(self) -> int:
        return len(self.operations)


def _state_fingerprint(store: VariableStore) -> tuple:
    return tuple(sorted((repr(k), repr(v)) for k, v in store.items()))


def check_linearizable(
    history: History,
    app: AppStateMachine,
    initial: Optional[dict] = None,
    max_states: int = 2_000_000,
) -> bool:
    """True iff ``history`` is linearizable w.r.t. ``app``'s sequential
    specification starting from ``initial`` (defaults to the app's own
    initial variables)."""
    ops = list(history.operations)
    if not ops:
        return True
    ops.sort(key=lambda o: (o.invoked_at, o.returned_at))
    n = len(ops)

    base = VariableStore()
    for var, value in (initial if initial is not None else app.initial_variables()).items():
        base.insert_copy(var, value)

    # Iterative DFS over (remaining frozenset, store); memoize failures.
    seen: set[tuple] = set()
    states_visited = 0

    def candidates(remaining: frozenset) -> list[int]:
        """Operations minimal in the real-time partial order: those that
        were invoked before every remaining operation returned."""
        min_return = min(ops[i].returned_at for i in remaining)
        return sorted(
            (i for i in remaining if ops[i].invoked_at <= min_return),
            key=lambda i: ops[i].invoked_at,
        )

    def dfs(remaining: frozenset, store: VariableStore) -> bool:
        nonlocal states_visited
        states_visited += 1
        if states_visited > max_states:
            raise RuntimeError("linearizability search exceeded state budget")
        if not remaining:
            return True
        key = (remaining, _state_fingerprint(store))
        if key in seen:
            return False
        for i in candidates(remaining):
            op = ops[i]
            trial = VariableStore()
            for var, value in store.items():
                trial.insert_copy(var, value)
            try:
                result = app.execute(op.command, trial)
            except (KeyError, ValueError):
                continue  # not legal at this point
            if result != op.result:
                continue
            if dfs(remaining - {i}, trial):
                return True
        seen.add(key)
        return False

    return dfs(frozenset(range(n)), base)
