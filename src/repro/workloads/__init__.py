"""Benchmark workloads: the Chirper social network (§5.4) and TPC-C (§5.3)."""
