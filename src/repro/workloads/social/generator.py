"""Synthetic social-graph generation (Higgs Twitter dataset substitute).

The experiments depend on two structural properties of the Higgs graph:

* **power-law in-degree** — a few celebrities have enormous follower
  counts, so their posts are multi-partition commands touching many
  nodes;
* **community structure / reciprocity** — most edges connect users who
  are close in the graph, so a good partitioner can co-locate most
  follower relationships.

Preferential attachment with reciprocal follow-backs reproduces both.
``load_snap_edge_list`` ingests the real dataset when available
(``higgs-social_network.edgelist`` format: one ``follower followee``
pair per line).
"""

from __future__ import annotations

import random
from typing import Iterable, Optional


class SocialGraph:
    """Directed follower graph: ``following[u]`` = users u follows,
    ``followers[u]`` = users following u."""

    def __init__(self) -> None:
        self.following: dict[int, set[int]] = {}
        self.followers: dict[int, set[int]] = {}

    def add_user(self, user: int) -> None:
        self.following.setdefault(user, set())
        self.followers.setdefault(user, set())

    def add_follow(self, follower: int, followee: int) -> None:
        if follower == followee:
            return
        self.add_user(follower)
        self.add_user(followee)
        self.following[follower].add(followee)
        self.followers[followee].add(follower)

    def remove_follow(self, follower: int, followee: int) -> None:
        self.following.get(follower, set()).discard(followee)
        self.followers.get(followee, set()).discard(follower)

    @property
    def num_users(self) -> int:
        return len(self.following)

    @property
    def num_edges(self) -> int:
        return sum(len(f) for f in self.following.values())

    def users(self) -> list[int]:
        return list(self.following)

    def in_degree(self, user: int) -> int:
        return len(self.followers[user])

    def max_in_degree(self) -> int:
        return max((len(f) for f in self.followers.values()), default=0)

    def users_by_popularity(self) -> list[int]:
        """Users sorted most-followed first (rank 1 = top celebrity)."""
        return sorted(self.followers, key=lambda u: -len(self.followers[u]))


def generate_social_graph(
    n_users: int,
    avg_follows: float = 20.0,
    reciprocity: float = 0.25,
    seed: int = 0,
) -> SocialGraph:
    """Preferential-attachment follower graph.

    Each new user follows ``~avg_follows`` existing users chosen
    proportionally to their current popularity (in-degree + 1); each
    follow is reciprocated with probability ``reciprocity``.  The result
    has a power-law in-degree tail like the Higgs network (whose mean
    degree is ~32; we default lower so small simulations stay fast —
    pass ``avg_follows=32`` for Higgs-like density).
    """
    if n_users < 1:
        raise ValueError("need at least one user")
    rng = random.Random(seed)
    graph = SocialGraph()
    graph.add_user(0)
    # Repeated-nodes list: sampling uniformly from it approximates
    # degree-proportional selection (standard BA trick, O(1) per draw).
    attachment: list[int] = [0]

    for user in range(1, n_users):
        graph.add_user(user)
        n_follows = max(1, min(user, int(rng.expovariate(1.0 / avg_follows)) + 1))
        chosen: set[int] = set()
        attempts = 0
        while len(chosen) < n_follows and attempts < n_follows * 4:
            attempts += 1
            target = attachment[rng.randrange(len(attachment))]
            if target != user:
                chosen.add(target)
        for target in chosen:
            graph.add_follow(user, target)
            attachment.append(target)
            attachment.append(user)
            if rng.random() < reciprocity:
                graph.add_follow(target, user)
                attachment.append(user)
    return graph


def load_snap_edge_list(path: str, max_users: Optional[int] = None) -> SocialGraph:
    """Load a SNAP-format directed edge list (``follower followee`` per
    line, ``#`` comments ignored) — e.g. the real Higgs social network."""
    graph = SocialGraph()
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            follower, followee = int(parts[0]), int(parts[1])
            if max_users is not None and (
                follower >= max_users or followee >= max_users
            ):
                continue
            graph.add_follow(follower, followee)
    return graph
