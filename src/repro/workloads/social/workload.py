"""Chirper client workloads (§6.4).

Clients pick an *active user* per command with a Zipfian distribution
(ρ = 0.95, as in the paper), mapped onto the popularity ranking so the
most-followed users are also the most active — which is what makes posts
touch many partitions and the load skew across partitions (Table 1).

Two mixes from the paper: ``"timeline"`` (reads only) and ``"mix"``
(85 % timeline / 15 % post).  A :class:`CelebrityEvent` reproduces the
Fig 6 dynamic workload: at a given virtual time a new celebrity appears,
users start following them, and the celebrity posts frequently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.client import Workload
from repro.sim.randomness import ZipfGenerator
from repro.smr.command import Command, CommandKind
from repro.workloads.social.generator import SocialGraph


@dataclass
class CelebrityEvent:
    """The Fig 6 scenario: a celebrity joins at ``time``."""

    time: float
    celebrity: int
    follow_prob: float = 0.4
    celebrity_post_prob: float = 0.25


class ChirperWorkload(Workload):
    """Shared by all clients of one experiment (each client's commands are
    numbered independently; the social-graph view is common)."""

    def __init__(
        self,
        graph: SocialGraph,
        mix: str = "mix",
        rho: float = 0.95,
        seed: int = 0,
        post_fraction: float = 0.15,
        follow_fraction: float = 0.0,
        commands_per_client: Optional[int] = None,
        event: Optional[CelebrityEvent] = None,
        rank_by: str = "random",
    ):
        if mix not in ("timeline", "mix"):
            raise ValueError("mix must be 'timeline' or 'mix'")
        if rank_by not in ("random", "popularity"):
            raise ValueError("rank_by must be 'random' or 'popularity'")
        if post_fraction + follow_fraction > 1.0:
            raise ValueError("post + follow fractions exceed 1")
        self.graph = graph
        self.mix = mix
        self.post_fraction = post_fraction if mix == "mix" else 0.0
        #: Fraction of commands that follow/unfollow a random pair —
        #: two-node commands that can move objects (§5.4).
        self.follow_fraction = follow_fraction if mix == "mix" else 0.0
        self.commands_per_client = commands_per_client
        self.event = event
        self.rng = random.Random(seed)
        # The paper selects "a random node as the active user" Zipfian:
        # activity skew is decorrelated from follower count by default.
        # rank_by="popularity" makes celebrities the most active instead
        # (a much harsher workload: every hot post fans out widely).
        if rank_by == "popularity":
            self._ranked = graph.users_by_popularity()
        else:
            self._ranked = sorted(graph.users())
            self.rng.shuffle(self._ranked)
        self._zipf = ZipfGenerator(len(self._ranked), rho, self.rng)
        self._issued: dict[str, int] = {}
        self._event_started = False
        self._celebrity_created = False

        self.stats = {"timeline": 0, "post": 0, "follow": 0, "create": 0}

    # -- helpers -----------------------------------------------------------

    def _pick_user(self) -> int:
        return self._ranked[self._zipf.draw_index()]

    def _uid(self, client) -> str:
        seq = self._issued.get(client.name, 0)
        self._issued[client.name] = seq + 1
        return f"{client.name}:{seq}"

    def _post_command(self, uid: str, user: int) -> Command:
        followers = tuple(sorted(self.graph.followers.get(user, ())))
        text = f"chirp #{uid[:40]}"
        self.stats["post"] += 1
        return Command(uid, "post", (user, text, followers))

    # -- the generator ---------------------------------------------------------

    def next_command(self, client) -> Optional[Command]:
        issued = self._issued.get(client.name, 0)
        if (
            self.commands_per_client is not None
            and issued >= self.commands_per_client
        ):
            return None
        uid = self._uid(client)

        event = self.event
        if event is not None and client.now >= event.time:
            if not self._event_started:
                self._event_started = True
            if not self._celebrity_created:
                self._celebrity_created = True
                self.graph.add_user(event.celebrity)
                self.stats["create"] += 1
                return Command(
                    uid, "create", (event.celebrity,), kind=CommandKind.CREATE
                )
            roll = self.rng.random()
            if roll < event.follow_prob:
                follower = self._pick_user()
                if event.celebrity not in self.graph.following.get(follower, ()):
                    self.graph.add_follow(follower, event.celebrity)
                    self.stats["follow"] += 1
                    return Command(uid, "follow", (follower, event.celebrity))
            elif roll < event.follow_prob + event.celebrity_post_prob:
                return self._post_command(uid, event.celebrity)

        roll = self.rng.random()
        if roll < self.post_fraction:
            return self._post_command(uid, self._pick_user())
        if roll < self.post_fraction + self.follow_fraction:
            return self._follow_command(uid)
        user = self._pick_user()
        self.stats["timeline"] += 1
        return Command(uid, "timeline", (user,))

    def _follow_command(self, uid: str) -> Command:
        """Follow (or, half the time, unfollow an existing edge) between
        the active user and a random other user."""
        follower = self._pick_user()
        following = self.graph.following.get(follower, set())
        if following and self.rng.random() < 0.5:
            followee = self.rng.choice(sorted(following))
            self.graph.remove_follow(follower, followee)
            self.stats["follow"] += 1
            return Command(uid, "unfollow", (follower, followee))
        followee = self._pick_user()
        while followee == follower:
            followee = self._pick_user()
        self.graph.add_follow(follower, followee)
        self.stats["follow"] += 1
        return Command(uid, "follow", (follower, followee))
