"""Chirper: the Twitter-like social network service of §5.4.

The paper uses the Higgs Twitter dataset (456 631 nodes, ~14.8 M edges);
this package substitutes a seeded preferential-attachment generator that
reproduces the dataset's power-law degree skew and reciprocity, at a
configurable scale — plus a loader for real SNAP edge lists when the
dataset is available.
"""

from repro.workloads.social.generator import SocialGraph, generate_social_graph, load_snap_edge_list
from repro.workloads.social.chirper import ChirperApp, user_var
from repro.workloads.social.workload import ChirperWorkload, CelebrityEvent

__all__ = [
    "SocialGraph",
    "generate_social_graph",
    "load_snap_edge_list",
    "ChirperApp",
    "user_var",
    "ChirperWorkload",
    "CelebrityEvent",
]
