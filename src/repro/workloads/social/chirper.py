"""The Chirper application state machine (§5.4).

Each user is one state variable (and one workload-graph node) holding
their profile: follower/following sets and a bounded timeline.  Posting
writes the message to the timeline of every follower — a potentially
multi-partition command; reading the timeline touches only the user's
own node; follow/unfollow touch two nodes.

Posts are capped at 140 characters, like the paper's service.

Operations (the follower list for a post is frozen into the command by
the workload generator, so ``vars(C)`` is static):

* ``("post", user, text, followers_tuple)``
* ``("timeline", user)`` -> list of (author, text) newest first
* ``("follow", follower, followee)``
* ``("unfollow", follower, followee)``
"""

from __future__ import annotations

from typing import Hashable

from repro.smr.command import Command
from repro.smr.statemachine import AppStateMachine, VariableStore
from repro.workloads.social.generator import SocialGraph

#: Timeline entries kept per user (bounds memory in long runs).
TIMELINE_LIMIT = 50

#: Paper constraint: 140-character messages.
POST_LIMIT = 140


def user_var(user: int) -> tuple:
    """The state-variable id for a user."""
    return ("user", user)


def _new_profile() -> dict:
    return {"followers": set(), "following": set(), "timeline": [], "posts": 0}


class ChirperApp(AppStateMachine):
    """Chirper on DynaStar: one variable == one user == one graph node."""

    def __init__(self, graph: SocialGraph | None = None):
        self._graph = graph or SocialGraph()

    # -- bootstrap -------------------------------------------------------

    def initial_variables(self) -> dict:
        variables = {}
        for user in self._graph.users():
            profile = _new_profile()
            profile["followers"] = set(self._graph.followers[user])
            profile["following"] = set(self._graph.following[user])
            variables[user_var(user)] = profile
        return variables

    def initial_value_of(self, var: Hashable) -> dict:
        return _new_profile()

    # -- routing ------------------------------------------------------------

    def variables_of(self, command: Command) -> frozenset:
        op = command.op
        if op == "post":
            user, _text, followers = command.args
            return frozenset({user_var(user)} | {user_var(f) for f in followers})
        if op == "timeline":
            return frozenset({user_var(command.args[0])})
        if op in ("follow", "unfollow"):
            a, b = command.args
            return frozenset({user_var(a), user_var(b)})
        if op in ("create", "delete"):
            return frozenset({user_var(command.args[0])})
        raise ValueError(f"unknown chirper op {op!r}")

    def is_readonly(self, command: Command) -> bool:
        return command.op == "timeline"

    def read_variables_of(self, command: Command) -> frozenset:
        # Only timelines are pure reads; post mutates the author (post
        # count) and every follower timeline, follow/unfollow mutate
        # both profiles — all writes.
        if command.op == "timeline":
            return self.variables_of(command)
        return frozenset()

    # -- execution -----------------------------------------------------------

    def execute(self, command: Command, store: VariableStore):
        op = command.op
        if op == "post":
            return self._post(command, store)
        if op == "timeline":
            # Deterministic miss: a timeline read racing the user's
            # delete returns None instead of crashing the replica.
            profile = store.get_or_none(user_var(command.args[0]))
            if profile is None:
                return None
            return list(reversed(profile["timeline"]))
        if op == "follow":
            return self._follow(command, store, add=True)
        if op == "unfollow":
            return self._follow(command, store, add=False)
        if op == "create":
            store.put(user_var(command.args[0]), _new_profile())
            return True
        if op == "delete":
            store.discard(user_var(command.args[0]))
            return True
        raise ValueError(f"unknown chirper op {op!r}")

    def _post(self, command: Command, store: VariableStore):
        user, text, followers = command.args
        if len(text) > POST_LIMIT:
            raise ValueError(f"post exceeds {POST_LIMIT} characters")
        if user_var(user) not in store:
            # Author deleted since the command was issued: a clean NOK
            # before any follower timeline is touched.
            raise KeyError(user_var(user))
        author = store.get(user_var(user))
        author["posts"] += 1
        store.put(user_var(user), author)
        entry = (user, text)
        delivered = 0
        for follower in followers:
            var = user_var(follower)
            if var not in store:
                continue  # follower deleted since the command was issued
            profile = store.get(var)
            profile["timeline"].append(entry)
            if len(profile["timeline"]) > TIMELINE_LIMIT:
                del profile["timeline"][: -TIMELINE_LIMIT]
            store.put(var, profile)
            delivered += 1
        return delivered

    def _follow(self, command: Command, store: VariableStore, add: bool):
        follower, followee = command.args
        fv, ev = user_var(follower), user_var(followee)
        # Validate both profiles before mutating either (no half-applied
        # follow edge when one side was deleted).
        if fv not in store:
            raise KeyError(fv)
        if ev not in store:
            raise KeyError(ev)
        follower_profile = store.get(fv)
        followee_profile = store.get(ev)
        if add:
            follower_profile["following"].add(followee)
            followee_profile["followers"].add(follower)
        else:
            follower_profile["following"].discard(followee)
            followee_profile["followers"].discard(follower)
        store.put(fv, follower_profile)
        store.put(ev, followee_profile)
        return True
