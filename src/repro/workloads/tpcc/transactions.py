"""The five TPC-C transactions as a DynaStar application state machine.

Command encodings (built by :class:`~repro.workloads.tpcc.workload.TPCCWorkload`):

* ``("new_order", w, d, c, lines)`` — ``lines`` is a tuple of
  ``(item_id, supply_w, quantity)``; ~1 % of commands carry an invalid
  item id and abort (checked *before* any write, so an abort is a no-op).
* ``("payment", w, d, c_w, c_d, c, amount)``
* ``("order_status", w, d, c)`` — read-only
* ``("delivery", w, carrier)`` — pops the oldest undelivered order of
  every district of ``w``
* ``("stock_level", w, d, threshold)`` — read-only

Routing (``variables_of``) declares warehouse/district/customer/stock
rows concretely; order/order-line/new-order/history rows are reached
through their district node (``NodeWildcard``) because their keys depend
on state (e.g. Delivery's oldest order).  Inserted rows are detected via
store tracking and travel back to their home partition automatically.
"""

from __future__ import annotations

from typing import Hashable

from repro.smr.command import Command
from repro.smr.statemachine import AppStateMachine, NodeWildcard, VariableStore
from repro.workloads.tpcc.loader import build_initial_variables
from repro.workloads.tpcc.schema import (
    TPCCConfig,
    customer_key,
    district_key,
    district_node,
    history_key,
    item_exists,
    item_price,
    new_order_key,
    node_of_row,
    order_key,
    order_line_key,
    stock_key,
    warehouse_key,
    warehouse_node,
)


class TPCCApp(AppStateMachine):
    """TPC-C with district-granularity workload-graph nodes."""

    def __init__(self, config: TPCCConfig | None = None):
        self.config = config or TPCCConfig()

    # -- bootstrap ---------------------------------------------------------

    def initial_variables(self) -> dict:
        return build_initial_variables(self.config)

    # -- routing --------------------------------------------------------------

    def graph_node_of(self, var: Hashable):
        return node_of_row(var)

    def variables_of(self, command: Command) -> frozenset:
        op = command.op
        if op == "new_order":
            w, d, c, lines = command.args
            vars_ = {
                warehouse_key(w),
                district_key(w, d),
                customer_key(w, d, c),
            }
            for item_id, supply_w, _qty in lines:
                vars_.add(stock_key(supply_w, item_id))
            return frozenset(vars_)
        if op == "payment":
            w, d, c_w, c_d, c, _amount = command.args
            return frozenset(
                {
                    warehouse_key(w),
                    district_key(w, d),
                    customer_key(c_w, c_d, c),
                }
            )
        if op == "order_status":
            w, d, c = command.args
            return frozenset(
                {customer_key(w, d, c), NodeWildcard(district_node(w, d))}
            )
        if op == "delivery":
            w, _carrier = command.args
            return frozenset(
                NodeWildcard(district_node(w, d))
                for d in range(1, self.config.districts_per_warehouse + 1)
            )
        if op == "stock_level":
            w, d, _threshold = command.args
            return frozenset(
                {
                    NodeWildcard(district_node(w, d)),
                    NodeWildcard(warehouse_node(w)),
                }
            )
        raise ValueError(f"unknown TPC-C op {op!r}")

    # -- fine-grained borrowing (§5.3: move objects, not whole districts) -----------

    def borrow_variables(self, command: Command, node, store, node_vars):
        """Select exactly the rows a wildcard-declared transaction needs,
        computed on the owning partition's live state."""
        op = command.op
        if op == "order_status":
            w, d, c = command.args
            vars_ = [customer_key(w, d, c), district_key(w, d)]
            ckey = customer_key(w, d, c)
            if ckey in store:
                o_id = store.get(ckey)["last_o_id"]
                vars_.extend(self._order_rows(store, w, d, o_id))
            return vars_
        if op == "delivery":
            w, _carrier = command.args
            _tag, _w, d = node
            vars_ = [district_key(w, d)]
            dkey = district_key(w, d)
            if dkey in store and store.get(dkey)["undelivered"]:
                o_id = store.get(dkey)["undelivered"][0]
                vars_.extend(self._order_rows(store, w, d, o_id))
                vars_.append(new_order_key(w, d, o_id))
                okey = order_key(w, d, o_id)
                if okey in store:
                    vars_.append(
                        customer_key(w, d, store.get(okey)["c_id"])
                    )
            return vars_
        if op == "stock_level":
            w, d, _threshold = command.args
            if node == warehouse_node(w):
                # all stock rows of the warehouse (bounded by n_items)
                return [v for v in node_vars if v[0] == "S"]
            # district side: district row + the last 20 orders' rows
            vars_ = [district_key(w, d)]
            dkey = district_key(w, d)
            if dkey in store:
                last = store.get(dkey)["next_o_id"]
                for o_id in range(max(1, last - 20), last):
                    vars_.extend(self._order_rows(store, w, d, o_id))
            return vars_
        return None  # ship the whole node for anything unanticipated

    @staticmethod
    def _order_rows(store: VariableStore, w: int, d: int, o_id: int) -> list:
        """The order row and its order lines, if present."""
        rows = []
        okey = order_key(w, d, o_id)
        if o_id and okey in store:
            rows.append(okey)
            for n in range(1, store.get(okey)["ol_cnt"] + 1):
                rows.append(order_line_key(w, d, o_id, n))
        return rows

    def is_readonly(self, command: Command) -> bool:
        return command.op in ("order_status", "stock_level")

    def read_variables_of(self, command: Command) -> frozenset:
        op = command.op
        if op in ("order_status", "stock_level"):
            return self.variables_of(command)
        if op == "new_order":
            # The warehouse row is only read (tax rate); district,
            # customer and stock rows are all mutated.  Undeclared
            # inserts (order / order-line / new-order rows) stay under
            # the district node, which the written district row already
            # places in the write footprint.
            w, _d, _c, _lines = command.args
            return frozenset({warehouse_key(w)})
        return frozenset()

    def conflict_free_variables_of(self, command: Command) -> frozenset:
        if command.op == "new_order":
            # New-Order reads the warehouse row only for its tax rate,
            # which no transaction ever changes; Payment's writes to the
            # row touch only the ytd counter New-Order never observes.
            # Excluding it keeps the district-parallel New-Order stream
            # from serializing behind every same-warehouse Payment.
            w, _d, _c, _lines = command.args
            return frozenset({warehouse_key(w)})
        return frozenset()

    # -- execution ----------------------------------------------------------------

    def execute(self, command: Command, store: VariableStore):
        op = command.op
        if op == "new_order":
            return self._new_order(command, store)
        if op == "payment":
            return self._payment(command, store)
        if op == "order_status":
            return self._order_status(command, store)
        if op == "delivery":
            return self._delivery(command, store)
        if op == "stock_level":
            return self._stock_level(command, store)
        raise ValueError(f"unknown TPC-C op {op!r}")

    # -- New-Order (45 %) ------------------------------------------------------------

    def _new_order(self, command: Command, store: VariableStore):
        w, d, c, lines = command.args
        # Abort-before-write: the spec's 1% "unused item" rollback.
        for item_id, _sw, _qty in lines:
            if not item_exists(item_id, self.config):
                raise ValueError("TPCC_ABORT_INVALID_ITEM")
        # Validate every row the transaction touches before the first
        # mutation: a missing stock row discovered mid-loop must not
        # leave a half-applied order behind.
        for key in (warehouse_key(w), district_key(w, d), customer_key(w, d, c)):
            if key not in store:
                raise KeyError(key)
        for item_id, supply_w, _qty in lines:
            if stock_key(supply_w, item_id) not in store:
                raise KeyError(stock_key(supply_w, item_id))

        warehouse = store.get(warehouse_key(w))
        district = store.get(district_key(w, d))
        customer = store.get(customer_key(w, d, c))

        o_id = district["next_o_id"]
        district["next_o_id"] = o_id + 1
        district["undelivered"].append(o_id)
        store.put(district_key(w, d), district)

        all_local = all(sw == w for _i, sw, _q in lines)
        store.put(
            order_key(w, d, o_id),
            {
                "c_id": c,
                "carrier_id": None,
                "ol_cnt": len(lines),
                "all_local": all_local,
            },
        )
        store.put(new_order_key(w, d, o_id), {})
        customer["last_o_id"] = o_id
        store.put(customer_key(w, d, c), customer)

        total = 0.0
        for n, (item_id, supply_w, qty) in enumerate(lines, start=1):
            stock = store.get(stock_key(supply_w, item_id))
            if stock["quantity"] >= qty + 10:
                stock["quantity"] -= qty
            else:
                stock["quantity"] = stock["quantity"] - qty + 91
            stock["ytd"] += qty
            stock["order_cnt"] += 1
            if supply_w != w:
                stock["remote_cnt"] += 1
            store.put(stock_key(supply_w, item_id), stock)
            amount = qty * item_price(item_id)
            total += amount
            store.put(
                order_line_key(w, d, o_id, n),
                {
                    "i_id": item_id,
                    "supply_w": supply_w,
                    "qty": qty,
                    "amount": amount,
                    "delivery_d": None,
                },
            )
        total *= (1.0 - customer["discount"]) * (
            1.0 + warehouse["tax"] + district["tax"]
        )
        return {"o_id": o_id, "total": round(total, 2)}

    # -- Payment (43 %) -------------------------------------------------------------------

    def _payment(self, command: Command, store: VariableStore):
        w, d, c_w, c_d, c, amount = command.args
        # Validate all three rows before mutating any — the customer may
        # live on a borrowed remote district that failed to ship it.
        for key in (
            warehouse_key(w),
            district_key(w, d),
            customer_key(c_w, c_d, c),
        ):
            if key not in store:
                raise KeyError(key)
        warehouse = store.get(warehouse_key(w))
        warehouse["ytd"] += amount
        store.put(warehouse_key(w), warehouse)

        district = store.get(district_key(w, d))
        district["ytd"] += amount
        store.put(district_key(w, d), district)

        customer = store.get(customer_key(c_w, c_d, c))
        customer["balance"] -= amount
        customer["ytd_payment"] += amount
        customer["payment_cnt"] += 1
        store.put(customer_key(c_w, c_d, c), customer)
        store.put(
            history_key(c_w, c_d, c, customer["payment_cnt"]),
            {"amount": amount, "w": w, "d": d},
        )
        return {"balance": round(customer["balance"], 2)}

    # -- Order-Status (4 %) ---------------------------------------------------------------------

    def _order_status(self, command: Command, store: VariableStore):
        w, d, c = command.args
        customer = store.get_or_none(customer_key(w, d, c))
        if customer is None:
            return None  # deterministic miss (customer row unavailable)
        o_id = customer["last_o_id"]
        if o_id == 0 or order_key(w, d, o_id) not in store:
            return {"balance": round(customer["balance"], 2), "order": None}
        order = store.get(order_key(w, d, o_id))
        lines = []
        for n in range(1, order["ol_cnt"] + 1):
            key = order_line_key(w, d, o_id, n)
            if key in store:
                line = store.get(key)
                lines.append((line["i_id"], line["qty"], line["amount"]))
        return {
            "balance": round(customer["balance"], 2),
            "order": {"o_id": o_id, "carrier": order["carrier_id"], "lines": lines},
        }

    # -- Delivery (4 %) --------------------------------------------------------------------------

    def _delivery(self, command: Command, store: VariableStore):
        w, carrier = command.args
        delivered = []
        for d in range(1, self.config.districts_per_warehouse + 1):
            district = store.get_or_none(district_key(w, d))
            if district is None or not district["undelivered"]:
                continue
            # Validate the order and customer rows before popping the
            # undelivered entry: a missing row must leave the district
            # untouched (retried deliveries find it again) instead of
            # crashing mid-mutation with the order half-delivered.
            o_id = district["undelivered"][0]
            order = store.get_or_none(order_key(w, d, o_id))
            if order is None:
                continue
            customer = store.get_or_none(customer_key(w, d, order["c_id"]))
            if customer is None:
                continue
            district["undelivered"].pop(0)
            store.put(district_key(w, d), district)
            store.discard(new_order_key(w, d, o_id))
            order["carrier_id"] = carrier
            store.put(order_key(w, d, o_id), order)
            total = 0.0
            for n in range(1, order["ol_cnt"] + 1):
                line = store.get_or_none(order_line_key(w, d, o_id, n))
                if line is None:
                    continue
                line["delivery_d"] = carrier  # stands in for a timestamp
                store.put(order_line_key(w, d, o_id, n), line)
                total += line["amount"]
            customer["balance"] += total
            customer["delivery_cnt"] += 1
            store.put(customer_key(w, d, order["c_id"]), customer)
            delivered.append((d, o_id))
        return {"delivered": delivered}

    # -- Stock-Level (4 %) ------------------------------------------------------------------------

    def _stock_level(self, command: Command, store: VariableStore):
        w, d, threshold = command.args
        district = store.get_or_none(district_key(w, d))
        if district is None:
            return None  # deterministic miss (district row unavailable)
        last = district["next_o_id"]
        low_items = set()
        for o_id in range(max(1, last - 20), last):
            key = order_key(w, d, o_id)
            if key not in store:
                continue
            order = store.get(key)
            for n in range(1, order["ol_cnt"] + 1):
                ol_key = order_line_key(w, d, o_id, n)
                if ol_key not in store:
                    continue
                item_id = store.get(ol_key)["i_id"]
                s_key = stock_key(w, item_id)
                if s_key in store and store.get(s_key)["quantity"] < threshold:
                    low_items.add(item_id)
        return {"low_stock": len(low_items)}
