"""TPC-C schema: row keys, graph nodes, scale configuration.

Row-key conventions (all tuples, first element a table tag):

* ``("W", w)`` — warehouse row                  -> node ``("W", w)``
* ``("D", w, d)`` — district row                -> node ``("D", w, d)``
* ``("C", w, d, c)`` — customer row             -> node ``("D", w, d)``
* ``("O", w, d, o)`` — order row                -> node ``("D", w, d)``
* ``("NO", w, d, o)`` — new-order row           -> node ``("D", w, d)``
* ``("OL", w, d, o, n)`` — order-line row       -> node ``("D", w, d)``
* ``("H", w, d, c, seq)`` — history row         -> node ``("D", w, d)``
* ``("S", w, i)`` — stock row                   -> node ``("W", w)``

Warehouses and districts are the workload-graph nodes (§5.3); all other
rows ride along with their district/warehouse.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TPCCConfig:
    """Scale knobs.  Spec values: 10 districts, 3 000 customers/district,
    100 000 items — we default far smaller for simulation speed; the
    cross-partition *rates* (the behaviour under test) are unaffected."""

    n_warehouses: int = 4
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    n_items: int = 200
    initial_stock: int = 1000
    #: Fraction of new-order lines supplied by a remote warehouse (spec: 1 %).
    remote_order_line_prob: float = 0.01
    #: Fraction of payments for a customer of a remote warehouse (spec: 15 %).
    remote_payment_prob: float = 0.15
    #: Fraction of new-orders aborted due to an invalid item (spec: 1 %).
    invalid_item_prob: float = 0.01


# -- row keys ---------------------------------------------------------------


def warehouse_key(w: int) -> tuple:
    return ("W", w)


def district_key(w: int, d: int) -> tuple:
    return ("D", w, d)


def customer_key(w: int, d: int, c: int) -> tuple:
    return ("C", w, d, c)


def order_key(w: int, d: int, o: int) -> tuple:
    return ("O", w, d, o)


def new_order_key(w: int, d: int, o: int) -> tuple:
    return ("NO", w, d, o)


def order_line_key(w: int, d: int, o: int, n: int) -> tuple:
    return ("OL", w, d, o, n)


def stock_key(w: int, i: int) -> tuple:
    return ("S", w, i)


def history_key(w: int, d: int, c: int, seq: int) -> tuple:
    return ("H", w, d, c, seq)


# -- graph nodes (§5.3 granularity) --------------------------------------------


def warehouse_node(w: int) -> tuple:
    return ("W", w)


def district_node(w: int, d: int) -> tuple:
    return ("D", w, d)


def node_of_row(key: tuple) -> tuple:
    """Workload-graph node a row belongs to."""
    table = key[0]
    if table in ("W", "S"):
        return warehouse_node(key[1])
    return district_node(key[1], key[2])


# -- the immutable ITEM catalog ---------------------------------------------------


def item_price(item_id: int) -> float:
    """Deterministic item price (the spec draws uniformly in [1, 100])."""
    return 1.0 + (item_id * 37 % 9901) / 100.0


def item_exists(item_id: int, config: TPCCConfig) -> bool:
    return 1 <= item_id <= config.n_items


# -- initial row contents -----------------------------------------------------------


def new_warehouse_row(w: int) -> dict:
    return {"ytd": 0.0, "tax": 0.05 + (w % 10) / 100.0}


def new_district_row(w: int, d: int) -> dict:
    return {
        "ytd": 0.0,
        "tax": 0.05 + (d % 10) / 100.0,
        "next_o_id": 1,
        "undelivered": [],  # FIFO of order ids awaiting Delivery
    }


def new_customer_row(w: int, d: int, c: int) -> dict:
    return {
        "balance": -10.0,
        "ytd_payment": 10.0,
        "payment_cnt": 1,
        "delivery_cnt": 0,
        "discount": (c % 50) / 100.0,
        "credit": "GC" if c % 10 else "BC",
        "last_o_id": 0,
    }


def new_stock_row(w: int, i: int, quantity: int) -> dict:
    return {"quantity": quantity, "ytd": 0, "order_cnt": 0, "remote_cnt": 0}
