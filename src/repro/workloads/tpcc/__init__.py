"""TPC-C on DynaStar (§5.3).

Every table row is a DynaStar state variable; the workload graph is kept
at district/warehouse granularity exactly as the paper describes: rows of
a district (customers, orders, order lines, new-orders, history) belong
to the district node, stock rows belong to the warehouse node, and a
transaction touching a district and a warehouse adds an edge between
those two nodes.

The ITEM table is an immutable catalog in TPC-C (never written); we keep
it as deterministic application constants rather than replicated state,
which sidesteps the undefined "which partition owns the item table"
question without changing any transaction's cross-partition behaviour.

The scale is configurable (``TPCCConfig``) and defaults well below the
spec's 3 000 customers/district so simulations stay laptop-sized; the
access *skew* (1 % remote new-order lines, 15 % remote payments) follows
the spec and is what generates cross-warehouse edges.
"""

from repro.workloads.tpcc.schema import (
    TPCCConfig,
    warehouse_key,
    district_key,
    customer_key,
    order_key,
    new_order_key,
    order_line_key,
    stock_key,
    history_key,
    item_price,
    warehouse_node,
    district_node,
)
from repro.workloads.tpcc.loader import build_initial_variables
from repro.workloads.tpcc.transactions import TPCCApp
from repro.workloads.tpcc.workload import TPCCWorkload, TRANSACTION_MIX

__all__ = [
    "TPCCConfig",
    "TPCCApp",
    "TPCCWorkload",
    "TRANSACTION_MIX",
    "build_initial_variables",
    "warehouse_key",
    "district_key",
    "customer_key",
    "order_key",
    "new_order_key",
    "order_line_key",
    "stock_key",
    "history_key",
    "item_price",
    "warehouse_node",
    "district_node",
]
