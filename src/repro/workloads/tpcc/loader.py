"""Initial TPC-C database population."""

from __future__ import annotations

from repro.workloads.tpcc.schema import (
    TPCCConfig,
    customer_key,
    district_key,
    new_customer_row,
    new_district_row,
    new_stock_row,
    new_warehouse_row,
    stock_key,
    warehouse_key,
)


def build_initial_variables(config: TPCCConfig) -> dict:
    """All rows of a freshly-loaded TPC-C database at ``config`` scale."""
    variables: dict = {}
    for w in range(1, config.n_warehouses + 1):
        variables[warehouse_key(w)] = new_warehouse_row(w)
        for i in range(1, config.n_items + 1):
            variables[stock_key(w, i)] = new_stock_row(w, i, config.initial_stock)
        for d in range(1, config.districts_per_warehouse + 1):
            variables[district_key(w, d)] = new_district_row(w, d)
            for c in range(1, config.customers_per_district + 1):
                variables[customer_key(w, d, c)] = new_customer_row(w, d, c)
    return variables


def count_rows(config: TPCCConfig) -> int:
    """Row count of the initial database (used by capacity planning and
    the loader tests)."""
    per_warehouse = (
        1
        + config.n_items
        + config.districts_per_warehouse * (1 + config.customers_per_district)
    )
    return config.n_warehouses * per_warehouse
