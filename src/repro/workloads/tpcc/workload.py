"""TPC-C transaction mix generator.

The standard mix from the spec (and §5.3): New-Order 45 %, Payment 43 %,
Delivery 4 %, Order-Status 4 %, Stock-Level 4 %.  Each client is bound
to a home warehouse round-robin (the paper deploys one warehouse per
partition and scales clients per partition); remote accesses follow the
spec: 1 % of order lines from a remote warehouse, 15 % of payments for a
remote customer — these are what create warehouse-to-district edges
across partitions.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.client import Workload
from repro.sim.randomness import weighted_choice
from repro.smr.command import Command
from repro.workloads.tpcc.schema import TPCCConfig

#: (transaction, weight) — §5.3 / the TPC-C specification.
TRANSACTION_MIX = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("delivery", 0.04),
    ("order_status", 0.04),
    ("stock_level", 0.04),
)


class TPCCWorkload(Workload):
    """Shared transaction generator for all clients of an experiment."""

    def __init__(
        self,
        config: TPCCConfig,
        seed: int = 0,
        commands_per_client: Optional[int] = None,
        home_warehouse: Optional[int] = None,
    ):
        self.config = config
        self.rng = random.Random(seed)
        self.commands_per_client = commands_per_client
        self.home_warehouse = home_warehouse
        self._issued: dict[str, int] = {}
        self._homes: dict[str, int] = {}
        self._next_home = 0
        self.stats = {name: 0 for name, _ in TRANSACTION_MIX}

    # -- helpers ------------------------------------------------------------

    def _home_of(self, client) -> int:
        if self.home_warehouse is not None:
            return self.home_warehouse
        if client.name not in self._homes:
            self._homes[client.name] = 1 + (self._next_home % self.config.n_warehouses)
            self._next_home += 1
        return self._homes[client.name]

    def _uid(self, client) -> str:
        seq = self._issued.get(client.name, 0)
        self._issued[client.name] = seq + 1
        return f"{client.name}:{seq}"

    def _random_remote_warehouse(self, home: int) -> int:
        if self.config.n_warehouses == 1:
            return home
        while True:
            w = self.rng.randint(1, self.config.n_warehouses)
            if w != home:
                return w

    # -- transaction builders ----------------------------------------------------

    def _build_new_order(self, uid: str, w: int) -> Command:
        cfg = self.config
        d = self.rng.randint(1, cfg.districts_per_warehouse)
        c = self.rng.randint(1, cfg.customers_per_district)
        n_lines = self.rng.randint(5, 15)
        lines = []
        for _ in range(n_lines):
            item = self.rng.randint(1, cfg.n_items)
            supply_w = w
            if self.rng.random() < cfg.remote_order_line_prob:
                supply_w = self._random_remote_warehouse(w)
            qty = self.rng.randint(1, 10)
            lines.append((item, supply_w, qty))
        if self.rng.random() < cfg.invalid_item_prob:
            # invalid item id triggers the spec's 1% rollback
            lines[-1] = (cfg.n_items + 1, w, 1)
        return Command(uid, "new_order", (w, d, c, tuple(lines)))

    def _build_payment(self, uid: str, w: int) -> Command:
        cfg = self.config
        d = self.rng.randint(1, cfg.districts_per_warehouse)
        c_w, c_d = w, d
        if self.rng.random() < cfg.remote_payment_prob:
            c_w = self._random_remote_warehouse(w)
            c_d = self.rng.randint(1, cfg.districts_per_warehouse)
        c = self.rng.randint(1, cfg.customers_per_district)
        amount = round(self.rng.uniform(1.0, 5000.0), 2)
        return Command(uid, "payment", (w, d, c_w, c_d, c, amount))

    def _build_order_status(self, uid: str, w: int) -> Command:
        cfg = self.config
        d = self.rng.randint(1, cfg.districts_per_warehouse)
        c = self.rng.randint(1, cfg.customers_per_district)
        return Command(uid, "order_status", (w, d, c))

    def _build_delivery(self, uid: str, w: int) -> Command:
        return Command(uid, "delivery", (w, self.rng.randint(1, 10)))

    def _build_stock_level(self, uid: str, w: int) -> Command:
        d = self.rng.randint(1, self.config.districts_per_warehouse)
        return Command(uid, "stock_level", (w, d, self.rng.randint(10, 20)))

    # -- the generator -----------------------------------------------------------

    def next_command(self, client) -> Optional[Command]:
        issued = self._issued.get(client.name, 0)
        if (
            self.commands_per_client is not None
            and issued >= self.commands_per_client
        ):
            return None
        uid = self._uid(client)
        home = self._home_of(client)
        names = [name for name, _ in TRANSACTION_MIX]
        weights = [weight for _, weight in TRANSACTION_MIX]
        kind = weighted_choice(self.rng, names, weights)
        self.stats[kind] += 1
        builder = getattr(self, f"_build_{kind}")
        return builder(uid, home)
