"""One run, one report: join traces, metrics, audit log, and health
samples into a single partition-health run report.

Usage::

    python -m repro.obs.report ARTIFACT_DIR [--format text|json] [--out F]

``ARTIFACT_DIR`` is a directory of run artifacts as written by
``repro.experiments.harness.export_run_artifacts`` (or the quickstart's
``--obs`` flag).  Each artifact is optional — the report covers whatever
is present:

* ``trace.jsonl``   — causal spans (``repro.obs.trace``)
* ``metrics.json``  — monitor snapshot (``Monitor.snapshot()``)
* ``audit.jsonl``   — oracle decision audit log (``repro.obs.audit``)
* ``health.jsonl``  — partition-health samples (``repro.obs.health``)

The report sections:

* **run** — completion counters and steady throughput from metrics;
* **partitions** — per-partition load timeline summary (total/peak/mean
  per health window, command mix, final queue depths);
* **repartitions** — one entry per oracle decision, joining each
  published decision's lifecycle records into a cost attribution:
  partition compute (decision → publish), plan multicast (publish →
  a-delivery), relocation quiesce (a-delivery → last in-flight node
  settled), with edge-cut before/after and vertices moved; suppressed
  (hysteresis) decisions are listed too, each as its own entry;
* **moved** — top moved variables across all plans, by graph weight;
* **reconfig** — one entry per elastic split/merge epoch, joining the
  decision, provision, cutover, drain and retire audit records into a
  cost attribution (cutover latency, handoff objects/bytes from the
  relocation records at the cutover version, drain latency for merges),
  plus the ``reconfig{event=..}`` counters (commands NACKed / redirected
  during drains, topology changes) and the partition-count trajectory;
* **overload** — admission/backpressure/retry counters grouped from the
  labeled-metric namespace;
* **reads** — compartmentalized read-path breakdown: local (lease-read)
  vs ordered read executions, lease lifecycle counters (grants,
  renewals, expiries, probe outcomes), and per-learner read counts;
* **graph** — edge-cut / cut-fraction / imbalance trajectory endpoints.

``build_report`` is a pure function of the loaded artifacts, and JSON
output is dumped with sorted keys — seeded runs produce byte-identical
reports, which CI relies on.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, TextIO

from repro.obs import audit as audit_mod
from repro.obs.analyze import TraceSet, stage_breakdown
from repro.obs.health import load_health_jsonl

#: Default artifact filenames inside a run directory.
TRACE_FILE = "trace.jsonl"
METRICS_FILE = "metrics.json"
AUDIT_FILE = "audit.jsonl"
HEALTH_FILE = "health.jsonl"


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def load_artifacts(
    directory: str,
    trace: Optional[str] = None,
    metrics: Optional[str] = None,
    audit: Optional[str] = None,
    health: Optional[str] = None,
) -> dict:
    """Load whatever artifacts exist; explicit paths override the
    directory convention.  Returns ``{"trace": TraceSet|None,
    "metrics": dict|None, "audit": [records], "health": [records]}``."""

    def _resolve(explicit: Optional[str], default_name: str) -> Optional[str]:
        if explicit:
            return explicit
        candidate = os.path.join(directory, default_name)
        return candidate if os.path.exists(candidate) else None

    out: dict = {"trace": None, "metrics": None, "audit": [], "health": []}
    path = _resolve(trace, TRACE_FILE)
    if path:
        out["trace"] = TraceSet.from_jsonl(path)
    path = _resolve(metrics, METRICS_FILE)
    if path:
        with open(path) as fh:
            out["metrics"] = json.load(fh)
    path = _resolve(audit, AUDIT_FILE)
    if path:
        out["audit"] = audit_mod.load_audit_jsonl(path)
    path = _resolve(health, HEALTH_FILE)
    if path:
        out["health"] = load_health_jsonl(path)
    return out


# ---------------------------------------------------------------------------
# report sections (pure functions of loaded artifacts)
# ---------------------------------------------------------------------------


def _run_section(metrics: Optional[dict]) -> dict:
    if not metrics:
        return {}
    counters = metrics.get("counters", {})
    section = {
        "completed": counters.get("commands_completed", 0),
        "failed": counters.get("commands_failed", 0),
        "plans_applied": counters.get("plans_applied", 0),
        "oracle_queries": counters.get("oracle_queries_total", 0),
    }
    hist = metrics.get("histograms", {}).get("latency")
    if hist:
        section["latency"] = hist
    return section


def _partition_section(health: list) -> dict:
    if not health:
        return {}
    per: dict = {}
    for sample in health:
        for name, entry in sample.get("partitions", {}).items():
            agg = per.setdefault(
                name,
                {
                    "executed": 0,
                    "multi": 0,
                    "peak_window": 0,
                    "peak_queue_depth": 0,
                    "windows": 0,
                },
            )
            agg["executed"] += entry["executed"]
            agg["multi"] += entry["multi"]
            agg["windows"] += 1
            agg["peak_window"] = max(agg["peak_window"], entry["executed"])
            agg["peak_queue_depth"] = max(
                agg["peak_queue_depth"], entry["queue_depth"]
            )
    for name, agg in per.items():
        agg["mean_window"] = (
            agg["executed"] / agg["windows"] if agg["windows"] else 0.0
        )
    total = sum(s.get("mix", {}).get("executed", 0) for s in health)
    multi = sum(s.get("mix", {}).get("multi", 0) for s in health)
    last = health[-1]
    return {
        "per_partition": per,
        "windows": len(health),
        "mix": {
            "executed": total,
            "multi": multi,
            "single": total - multi,
            "multi_fraction": (multi / total) if total else 0.0,
        },
        "final_queue_depths": {
            name: entry["queue_depth"]
            for name, entry in last.get("partitions", {}).items()
        },
    }


def _reconfig_versions(audit: list) -> set:
    """Plan versions that belong to elastic cutovers, not repartitions."""
    return {
        record["version"]
        for record in audit
        if record["kind"] == audit_mod.RECONFIG_CUTOVER
        and record.get("version") is not None
    }


def _repartition_section(audit: list) -> list:
    """One event per oracle decision, cost-attributed from lifecycle
    records sharing its plan version.

    Suppressed (hysteresis) decisions never bump the oracle version, so
    several may carry the same candidate version number — each still
    gets its own entry; only the published decision of a version owns
    that version's publish/apply/quiesce records.  Versions that belong
    to elastic cutovers are excluded — the **reconfig** section owns
    their lifecycle records.
    """
    if not audit:
        return []
    cutover_versions = _reconfig_versions(audit)
    lifecycle: dict = {}
    decisions = []
    for record in audit:
        if record["kind"] == audit_mod.DECISION:
            decisions.append(record)
        elif record["kind"].startswith("reconfig-"):
            continue
        elif record.get("version") is not None:
            if record["version"] in cutover_versions:
                continue
            lifecycle.setdefault(record["version"], []).append(record)
    events = []
    for decision in sorted(decisions, key=lambda r: r["seq"]):
        version = decision["version"]
        event: dict = {
            "version": version,
            "t": decision["t"],
            "trigger": decision.get("trigger"),
            "published": decision.get("published"),
            "inputs": decision.get("inputs", {}),
            "outputs": decision.get("outputs", {}),
        }
        records = (
            lifecycle.pop(version, []) if decision.get("published") else []
        )
        published = next(
            (r for r in records if r["kind"] == audit_mod.PUBLISHED), None
        )
        applied = [r for r in records if r["kind"] == audit_mod.APPLIED]
        quiesced = [r for r in records if r["kind"] == audit_mod.QUIESCE]
        relocations = [r for r in records if r["kind"] == audit_mod.RELOCATION]
        timing: dict = {}
        if published:
            timing["compute"] = published["t"] - decision["t"]
        if published and applied:
            timing["multicast"] = max(r["t"] for r in applied) - published["t"]
        if applied and quiesced:
            timing["quiesce"] = max(r["t"] for r in quiesced) - max(
                r["t"] for r in applied
            )
        if timing:
            timing["total"] = sum(timing.values())
            event["timing"] = timing
        if relocations:
            event["relocated_objects"] = sum(
                r.get("objects_out", 0) for r in relocations
            )
        events.append(event)
    # lifecycle records whose version has no decision (partial logs)
    for version in sorted(lifecycle):
        events.append({"version": version, "published": True})
    return events


def _moved_section(audit: list, top_n: int = 10) -> list:
    """Top moved variables across all published plans, by total weight."""
    totals: dict = {}
    for record in audit:
        if record["kind"] != audit_mod.DECISION or not record.get("published"):
            continue
        for vertex, weight in record.get("outputs", {}).get("moved_top", []):
            key = json.dumps(vertex, sort_keys=True)
            entry = totals.setdefault(key, {"vertex": vertex, "weight": 0.0, "moves": 0})
            entry["weight"] += weight
            entry["moves"] += 1
    ranked = sorted(
        totals.values(), key=lambda e: (-e["weight"], json.dumps(e["vertex"]))
    )
    return ranked[:top_n]


def _parse_labels(blob: str) -> dict:
    """``event=nacked,partition=p0`` → dict (monitor label rendering)."""
    out = {}
    for pair in blob.split(","):
        if "=" in pair:
            key, _, value = pair.partition("=")
            out[key] = value
    return out


def _reconfig_section(audit: list, metrics: Optional[dict]) -> dict:
    """One entry per elastic reconfiguration epoch, joining the
    decision → provision → cutover → drain → retire lifecycle records,
    with handoff cost pulled from the relocation records at the cutover
    version and drain-window client impact from the ``reconfig{..}``
    counters."""
    lifecycle = [r for r in audit if r["kind"].startswith("reconfig-")]
    counters = (metrics or {}).get("counters", {})
    drain_counters: dict = {}
    for key, value in counters.items():
        if key.startswith("reconfig{") and key.endswith("}"):
            labels = _parse_labels(key[len("reconfig{") : -1])
            event = labels.get("event")
            if event:
                drain_counters[event] = drain_counters.get(event, 0) + value
    if not lifecycle and not drain_counters:
        return {}

    relocations: dict = {}
    for record in audit:
        if record["kind"] == audit_mod.RELOCATION:
            relocations.setdefault(record["version"], []).append(record)
    drains = {
        r["version"]: r
        for r in lifecycle
        if r["kind"] == audit_mod.RECONFIG_DRAIN
    }

    epochs: dict = {}
    for record in sorted(lifecycle, key=lambda r: r["seq"]):
        epoch = record.get("epoch")
        if epoch is None:
            continue  # drain records join via their cutover version below
        entry = epochs.setdefault(epoch, {"epoch": epoch})
        kind = record["kind"]
        if kind == audit_mod.RECONFIG_DECISION:
            entry["decided_at"] = record["t"]
            entry["op"] = record.get("op")
            entry["source"] = record.get("source")
            entry["target"] = record.get("target")
            entry["moved"] = record.get("moved")
            entry["window"] = record.get("window", {})
        elif kind == audit_mod.RECONFIG_PROVISION:
            entry["provisioned_at"] = record["t"]
        elif kind == audit_mod.RECONFIG_CUTOVER:
            entry["cutover_at"] = record["t"]
            entry["cutover_version"] = record.get("version")
            entry.setdefault("op", record.get("op"))
            entry.setdefault("source", record.get("source"))
            entry.setdefault("target", record.get("target"))
        elif kind == audit_mod.RECONFIG_RETIRED:
            entry["retired_at"] = record["t"]

    events = []
    for epoch in sorted(epochs):
        entry = epochs[epoch]
        decided = entry.get("decided_at")
        cutover = entry.get("cutover_at")
        if decided is not None and cutover is not None:
            entry["cutover_latency"] = cutover - decided
        version = entry.get("cutover_version")
        if version is not None:
            moved = relocations.get(version, [])
            if moved:
                entry["handoff_objects"] = sum(
                    r.get("objects_out", 0) for r in moved
                )
                entry["handoff_bytes"] = sum(
                    r.get("bytes_out", 0) for r in moved
                )
            drain = drains.get(version)
            if drain is not None:
                entry["drained_at"] = drain["t"]
                if cutover is not None:
                    entry["drain_latency"] = drain["t"] - cutover
        events.append(entry)

    section: dict = {"epochs": events}
    if drain_counters:
        section["counters"] = dict(sorted(drain_counters.items()))
    series = (metrics or {}).get("series", {}).get("partition_count")
    if series:
        section["partition_count"] = {
            "points": len(series),
            "first": series[0],
            "last": series[-1],
        }
    gauge = (metrics or {}).get("gauges", {}).get("partition_count")
    if gauge is not None:
        section["final_partition_count"] = gauge
    return section


def check_reconfig(report: dict) -> list:
    """CI assertion: the run actually reconfigured.  Returns a list of
    failure strings (empty = pass): at least one epoch reached cutover,
    and the partition count changed (topology_change counter fired)."""
    failures = []
    reconfig = report.get("reconfig") or {}
    epochs = reconfig.get("epochs") or []
    if not epochs:
        failures.append("no reconfiguration epochs in audit log")
    elif not any("cutover_version" in e for e in epochs):
        failures.append("no reconfiguration epoch reached cutover")
    counters = reconfig.get("counters") or {}
    if not counters.get("topology_change"):
        failures.append(
            "partition count never changed (topology_change counter is 0)"
        )
    return failures


def _reads_section(metrics: Optional[dict]) -> dict:
    """Compartmentalized read-path breakdown from the labeled counters
    (``reads{event=..}``, ``lease{event=..}``, ``learner_reads{..}``).
    Empty when the run never exercised the read path."""
    if not metrics:
        return {}
    counters = metrics.get("counters", {})
    local: dict = {}
    ordered = 0
    lease: dict = {}
    per_learner: dict = {}
    for key, value in counters.items():
        if key.startswith("reads{") and key.endswith("}"):
            event = _parse_labels(key[len("reads{") : -1]).get("event")
            if event == "ordered":
                ordered += value
            elif event:
                local[event] = local.get(event, 0) + value
        elif key.startswith("lease{") and key.endswith("}"):
            event = _parse_labels(key[len("lease{") : -1]).get("event")
            if event:
                lease[event] = lease.get(event, 0) + value
        elif key.startswith("learner_reads{") and key.endswith("}"):
            learner = _parse_labels(key[len("learner_reads{") : -1]).get(
                "learner"
            )
            if learner:
                per_learner[learner] = per_learner.get(learner, 0) + value
    if not local and not ordered and not lease and not per_learner:
        return {}
    served = local.get("local_ok", 0) + local.get("local_nok", 0)
    total = served + ordered
    return {
        "local": dict(sorted(local.items())),
        "ordered": ordered,
        "local_served": served,
        "local_fraction": (served / total) if total else 0.0,
        "lease": dict(sorted(lease.items())),
        "per_learner": dict(sorted(per_learner.items())),
    }


def check_reads(report: dict) -> list:
    """CI assertion: the run actually served lease-checked local reads.
    Returns a list of failure strings (empty = pass): at least one local
    read completed OK, a lease was granted, and the per-learner read
    breakdown is non-empty (reads actually landed on learner actors)."""
    failures = []
    reads = report.get("reads") or {}
    if not reads:
        failures.append("no read-path counters in metrics")
        return failures
    if not reads.get("local", {}).get("local_ok"):
        failures.append("no local read completed OK (reads{event=local_ok})")
    if not reads.get("lease", {}).get("granted"):
        failures.append("no lease was ever granted (lease{event=granted})")
    if not reads.get("per_learner"):
        failures.append("no per-learner read counts (learner_reads{..})")
    return failures


def _overload_section(metrics: Optional[dict]) -> dict:
    """Admission / backpressure / retry counters from the labeled
    namespace (``admission{event=..}``, ``client{event=..}``)."""
    if not metrics:
        return {}
    counters = metrics.get("counters", {})
    section: dict = {"admission": {}, "client": {}}
    for key, value in counters.items():
        for base in ("admission", "client"):
            prefix = base + "{"
            if key.startswith(prefix) and key.endswith("}"):
                section[base][key[len(prefix) : -1]] = value
    if "server_busy" in counters:
        section["server_busy"] = counters["server_busy"]
    return section


def _graph_section(health: list) -> dict:
    points = [
        (s["t"], s["graph"]) for s in health if "graph" in s
    ]
    if not points:
        return {}
    cuts = [g["edge_cut"] for _, g in points]
    imb = [g["imbalance"] for _, g in points]
    first_t, first = points[0]
    last_t, last = points[-1]
    return {
        "first": {"t": first_t, **first},
        "last": {"t": last_t, **last},
        "edge_cut": {"min": min(cuts), "max": max(cuts)},
        "imbalance": {"min": min(imb), "max": max(imb)},
    }


def build_report(artifacts: dict) -> dict:
    """Assemble the full report dict from loaded artifacts."""
    report = {
        "run": _run_section(artifacts.get("metrics")),
        "partitions": _partition_section(artifacts.get("health") or []),
        "repartitions": _repartition_section(artifacts.get("audit") or []),
        "moved": _moved_section(artifacts.get("audit") or []),
        "reconfig": _reconfig_section(
            artifacts.get("audit") or [], artifacts.get("metrics")
        ),
        "overload": _overload_section(artifacts.get("metrics")),
        "reads": _reads_section(artifacts.get("metrics")),
        "graph": _graph_section(artifacts.get("health") or []),
    }
    traces = artifacts.get("trace")
    if traces is not None and traces.spans:
        stages = stage_breakdown(traces)
        stages["slowest"] = stages["slowest"][:5]
        report["stages"] = stages
    return report


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}ms"


def render_text(report: dict, out: TextIO) -> None:
    w = out.write
    run = report.get("run") or {}
    if run:
        w("== Run ==\n")
        w(
            f"  completed={run.get('completed', 0)}"
            f" failed={run.get('failed', 0)}"
            f" plans_applied={run.get('plans_applied', 0)}"
            f" oracle_queries={run.get('oracle_queries', 0)}\n"
        )
        latency = run.get("latency")
        if latency:
            w(
                f"  latency mean={_fmt_ms(latency.get('mean', 0.0))}"
                f" p95={_fmt_ms(latency.get('p95', 0.0))}\n"
            )
    parts = report.get("partitions") or {}
    if parts:
        w(f"== Partition load ({parts['windows']} windows) ==\n")
        for name in sorted(parts["per_partition"]):
            agg = parts["per_partition"][name]
            w(
                f"  {name}: executed={agg['executed']}"
                f" multi={agg['multi']}"
                f" mean/window={agg['mean_window']:.1f}"
                f" peak/window={agg['peak_window']}"
                f" peak_queue={agg['peak_queue_depth']}\n"
            )
        mix = parts.get("mix") or {}
        if mix:
            w(
                f"  mix: single={mix.get('single', 0)} multi={mix.get('multi', 0)}"
                f" multi_fraction={mix.get('multi_fraction', 0.0):.3f}\n"
            )
    events = report.get("repartitions") or []
    if events:
        w(f"== Repartitions ({len(events)}) ==\n")
        for event in events:
            line = f"  v{event['version']}"
            if "t" in event:
                line += f" t={event['t']:.3f}"
            line += f" trigger={event.get('trigger', '?')}"
            if event.get("published") is False:
                line += " SUPPRESSED"
            outputs = event.get("outputs") or {}
            if "edge_cut_before" in outputs:
                line += (
                    f" cut {outputs['edge_cut_before']:.1f}"
                    f"->{outputs.get('edge_cut_after', 0.0):.1f}"
                )
            if "vertices_moved" in outputs:
                line += f" moved={outputs['vertices_moved']}"
            timing = event.get("timing") or {}
            if timing:
                line += " [" + " ".join(
                    f"{stage}={_fmt_ms(timing[stage])}"
                    for stage in ("compute", "multicast", "quiesce", "total")
                    if stage in timing
                ) + "]"
            w(line + "\n")
    moved = report.get("moved") or []
    if moved:
        w("== Top moved variables ==\n")
        for entry in moved:
            w(
                f"  {entry['vertex']!r}: weight={entry['weight']:.1f}"
                f" moves={entry['moves']}\n"
            )
    reconfig = report.get("reconfig") or {}
    if reconfig:
        epochs = reconfig.get("epochs") or []
        w(f"== Reconfigurations ({len(epochs)} epochs) ==\n")
        for entry in epochs:
            line = (
                f"  epoch {entry['epoch']}: {entry.get('op', '?')}"
                f" {entry.get('source', '?')}"
            )
            if entry.get("target"):
                line += f" -> {entry['target']}"
            if "cutover_version" in entry:
                line += f" v{entry['cutover_version']}"
            if "cutover_latency" in entry:
                line += f" cutover={_fmt_ms(entry['cutover_latency'])}"
            if "drain_latency" in entry:
                line += f" drain={_fmt_ms(entry['drain_latency'])}"
            if "handoff_objects" in entry:
                line += (
                    f" handoff={entry['handoff_objects']}obj"
                    f"/{entry.get('handoff_bytes', 0)}B"
                )
            w(line + "\n")
        counters = reconfig.get("counters") or {}
        if counters:
            w(
                "  clients: "
                + " ".join(
                    f"{name}={counters[name]}" for name in sorted(counters)
                )
                + "\n"
            )
        pc = reconfig.get("partition_count")
        if pc:
            first_t, first_n = pc["first"]
            last_t, last_n = pc["last"]
            w(
                f"  partition_count: {first_n:.0f} (t={first_t:.1f})"
                f" -> {last_n:.0f} (t={last_t:.1f})\n"
            )
    overload = report.get("overload") or {}
    if overload.get("admission") or overload.get("client") or overload.get("server_busy"):
        w("== Overload / admission ==\n")
        for base in ("admission", "client"):
            for event_name in sorted(overload.get(base, {})):
                w(f"  {base}.{event_name}={overload[base][event_name]}\n")
        if "server_busy" in overload:
            w(f"  server_busy={overload['server_busy']}\n")
    reads = report.get("reads") or {}
    if reads:
        w("== Reads ==\n")
        local = reads.get("local") or {}
        w(
            f"  local: served={reads.get('local_served', 0)}"
            f" ordered={reads.get('ordered', 0)}"
            f" local_fraction={reads.get('local_fraction', 0.0):.3f}\n"
        )
        if local:
            w(
                "  local events: "
                + " ".join(f"{name}={local[name]}" for name in sorted(local))
                + "\n"
            )
        lease = reads.get("lease") or {}
        if lease:
            w(
                "  lease: "
                + " ".join(f"{name}={lease[name]}" for name in sorted(lease))
                + "\n"
            )
        for learner in sorted(reads.get("per_learner") or {}):
            w(f"  {learner}: reads={reads['per_learner'][learner]}\n")
    graph = report.get("graph") or {}
    if graph:
        w("== Graph quality ==\n")
        first, last = graph["first"], graph["last"]
        w(
            f"  edge_cut {first['edge_cut']:.1f} -> {last['edge_cut']:.1f}"
            f" (min={graph['edge_cut']['min']:.1f}"
            f" max={graph['edge_cut']['max']:.1f})\n"
        )
        w(
            f"  imbalance {first['imbalance']:.3f} -> {last['imbalance']:.3f}"
            f" (min={graph['imbalance']['min']:.3f}"
            f" max={graph['imbalance']['max']:.3f})\n"
        )
        w(
            f"  graph size {first['vertices']}v/{first['edges']}e"
            f" -> {last['vertices']}v/{last['edges']}e\n"
        )
    stages = report.get("stages")
    if stages:
        w(f"== Trace stages ({stages['traces']} traces) ==\n")
        e2e = stages["end_to_end"]
        w(
            f"  end-to-end: mean={_fmt_ms(e2e['mean'])}"
            f" p95={_fmt_ms(e2e['p95'])}\n"
        )
        for summary in stages.get("critical", []):
            w(
                f"  {summary['stage']}: mean={_fmt_ms(summary['mean'])}"
                f" total={summary['total']:.3f}s\n"
            )


def render_json(report: dict, out: TextIO) -> None:
    json.dump(report, out, sort_keys=True, indent=2)
    out.write("\n")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Join run artifacts into a partition-health report.",
    )
    parser.add_argument("directory", help="run artifact directory")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument("--out", default=None, help="write to file (default stdout)")
    parser.add_argument("--trace", default=None, help="override trace path")
    parser.add_argument("--metrics", default=None, help="override metrics path")
    parser.add_argument("--audit", default=None, help="override audit-log path")
    parser.add_argument("--health", default=None, help="override health path")
    parser.add_argument(
        "--check-reconfig",
        action="store_true",
        help="exit non-zero unless the run shows an elastic reconfiguration "
        "(an epoch reaching cutover and a partition-count change)",
    )
    parser.add_argument(
        "--check-reads",
        action="store_true",
        help="exit non-zero unless the run served lease-checked local "
        "reads (a lease granted, local_ok > 0, per-learner counts present)",
    )
    args = parser.parse_args(argv)

    if not os.path.isdir(args.directory):
        print(f"error: not a directory: {args.directory}", file=sys.stderr)
        return 2
    artifacts = load_artifacts(
        args.directory,
        trace=args.trace,
        metrics=args.metrics,
        audit=args.audit,
        health=args.health,
    )
    if all(
        not artifacts[key] for key in ("trace", "metrics", "audit", "health")
    ):
        print(
            f"error: no artifacts found in {args.directory} "
            f"(expected any of {TRACE_FILE}, {METRICS_FILE}, {AUDIT_FILE}, {HEALTH_FILE})",
            file=sys.stderr,
        )
        return 2
    report = build_report(artifacts)
    render = render_json if args.fmt == "json" else render_text
    if args.out:
        with open(args.out, "w") as fh:
            render(report, fh)
    else:
        render(report, sys.stdout)
    if args.check_reconfig:
        failures = check_reconfig(report)
        if failures:
            for failure in failures:
                print(f"check-reconfig: {failure}", file=sys.stderr)
            return 1
        print("check-reconfig: ok", file=sys.stderr)
    if args.check_reads:
        failures = check_reads(report)
        if failures:
            for failure in failures:
                print(f"check-reads: {failure}", file=sys.stderr)
            return 1
        print("check-reads: ok", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
