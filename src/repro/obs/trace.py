"""Causal span tracing on the virtual clock.

A *trace* is the life of one command: ``trace_id`` is the command uid,
the root span (named :data:`ROOT_SPAN`) covers invoke -> reply at the
client, and every protocol stage the command passes through — oracle
lookup, multicast ordering, the borrow/return variable exchange,
execution, the reply — is a child span with virtual-clock start/end
times.  Because the whole system is simulated in one process, a single
:class:`Tracer` is shared by every actor: one actor can open a span and
another can close it, which is exactly how cross-actor stages (dispatch
-> a-delivery, reply send -> reply receipt) are measured.

Design constraints, in order:

* **Near-zero overhead when disabled.**  Every public method starts with
  an ``enabled`` check and returns immediately; a disabled tracer
  allocates nothing per call.  :data:`NULL_TRACER` is the shared
  disabled instance used as the default everywhere.
* **Deterministic.**  Span ids come from a per-tracer counter, times
  from the virtual clock, and no wall-clock or object identity leaks
  into the record, so two seeded runs of the same workload (and the
  same chaos schedule) export byte-identical JSONL.
* **Idempotent hand-offs.**  Stages are keyed ``(trace_id, name,
  disc)`` where ``disc`` discriminates attempts (and, for returns, the
  source partition).  :meth:`Tracer.begin` is get-or-create, so
  whichever replica reaches a stage first stamps its start;
  :meth:`Tracer.finish` closes the span once and leaves a tombstone so
  a lagging replica re-entering the stage later cannot resurrect it.
"""

from __future__ import annotations

import json
from typing import Any, Optional, TextIO, Union

#: Name of the per-command root span.
ROOT_SPAN = "command"

_JSON_SCALARS = (bool, int, float, str, type(None))


def _clean(value: Any) -> Any:
    """A JSON-safe, deterministic rendering of a tag/attr value."""
    if isinstance(value, _JSON_SCALARS):
        return value
    return repr(value)


def _clean_dict(attrs: dict) -> dict:
    return {k: _clean(v) for k, v in attrs.items()}


class Span:
    """One interval of a trace: a protocol stage with start/end times.

    ``end`` stays ``None`` while the span is open.  ``finish`` is
    first-wins: replicated actors may all try to close a span and only
    the earliest close sticks.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "tags",
        "events",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: int,
        name: str,
        start: float,
        parent_id: Optional[int] = None,
        tags: Optional[dict] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.tags = tags or {}
        self.events: list[tuple] = []  # (t, name, attrs)

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def event(self, name: str, t: float, **attrs: Any) -> None:
        self.events.append((t, name, _clean_dict(attrs)))

    def finish(self, t: float, **tags: Any) -> None:
        if self.end is not None:
            return
        self.end = t
        if tags:
            self.tags.update(_clean_dict(tags))

    def to_record(self) -> dict:
        return {
            "kind": "span",
            "seq": self.span_id,
            "trace": self.trace_id,
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "tags": self.tags,
            "events": [
                {"t": t, "name": name, "attrs": attrs}
                for t, name, attrs in self.events
            ],
        }

    @classmethod
    def from_record(cls, record: dict) -> "Span":
        span = cls(
            trace_id=record["trace"],
            span_id=record["id"],
            name=record["name"],
            start=record["start"],
            parent_id=record.get("parent"),
            tags=dict(record.get("tags", {})),
        )
        span.end = record.get("end")
        span.events = [
            (e["t"], e["name"], e.get("attrs", {}))
            for e in record.get("events", ())
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.start:.6f}..{self.end:.6f}" if self.finished else "open"
        return f"<Span {self.name} trace={self.trace_id} {state}>"


class Tracer:
    """Registry of spans and structured events for one experiment."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: list[Span] = []
        self.records: list[dict] = []  # global (trace-less) events
        self._seq = 0
        self._open: dict[tuple, Span] = {}
        self._open_by_trace: dict[str, list[tuple]] = {}
        self._closed: set[tuple] = set()

    # -- span lifecycle -----------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def start_trace(self, trace_id: str, t: float, **tags: Any) -> Optional[Span]:
        """Open the root span of a new trace (the command's lifetime)."""
        return self.begin(trace_id, ROOT_SPAN, t, **tags)

    def begin(
        self,
        trace_id: str,
        name: str,
        t: float,
        disc: Any = None,
        parent: Optional[Span] = None,
        **tags: Any,
    ) -> Optional[Span]:
        """Get-or-create the open span ``(trace_id, name, disc)``.

        The first caller stamps the start time; later callers get the
        same object.  A key that was already finished is tombstoned and
        returns ``None`` — a lagging replica reaching a completed stage
        must not restart it.
        """
        if not self.enabled:
            return None
        key = (trace_id, name, disc)
        span = self._open.get(key)
        if span is not None:
            return span
        if key in self._closed:
            return None
        parent_id = parent.span_id if parent is not None else None
        if parent_id is None and name != ROOT_SPAN:
            root = self._open.get((trace_id, ROOT_SPAN, None))
            if root is not None:
                parent_id = root.span_id
        span = Span(
            trace_id,
            self._next_seq(),
            name,
            t,
            parent_id=parent_id,
            tags=_clean_dict(tags),
        )
        self.spans.append(span)
        self._open[key] = span
        self._open_by_trace.setdefault(trace_id, []).append(key)
        return span

    def find(self, trace_id: str, name: str, disc: Any = None) -> Optional[Span]:
        """The currently open span for a key, or None."""
        if not self.enabled:
            return None
        return self._open.get((trace_id, name, disc))

    def finish(
        self, trace_id: str, name: str, t: float, disc: Any = None, **tags: Any
    ) -> Optional[Span]:
        """Close the open span for a key (no-op when there is none)."""
        if not self.enabled:
            return None
        key = (trace_id, name, disc)
        span = self._open.pop(key, None)
        if span is None:
            return None
        self._closed.add(key)
        keys = self._open_by_trace.get(trace_id)
        if keys is not None:
            try:
                keys.remove(key)
            except ValueError:  # pragma: no cover - defensive
                pass
        span.finish(t, **tags)
        return span

    def finish_trace(self, trace_id: str, t: float, **tags: Any) -> Optional[Span]:
        """Close the root span — and force-close any stage span still
        open (an abandoned attempt, a stage cut short by a fault), so a
        completed trace never leaks open intervals."""
        if not self.enabled:
            return None
        for key in list(self._open_by_trace.get(trace_id, ())):
            _, name, disc = key
            if name == ROOT_SPAN:
                continue
            self.finish(trace_id, name, t, disc=disc, unfinished=True)
        root = self.finish(trace_id, ROOT_SPAN, t, **tags)
        self._open_by_trace.pop(trace_id, None)
        return root

    # -- events -------------------------------------------------------------

    def event_on(
        self,
        trace_id: str,
        name: str,
        disc: Any,
        event_name: str,
        t: float,
        **attrs: Any,
    ) -> bool:
        """Attach an event to the open span for a key; True on success."""
        if not self.enabled:
            return False
        span = self._open.get((trace_id, name, disc))
        if span is None:
            return False
        span.event(event_name, t, **attrs)
        return True

    def event(self, trace_id: str, event_name: str, t: float, **attrs: Any) -> bool:
        """Attach an event to the trace's root span (retries, timeouts,
        aborts — anything that explains the command's shape)."""
        return self.event_on(trace_id, ROOT_SPAN, None, event_name, t, **attrs)

    def record(self, name: str, t: float, **attrs: Any) -> None:
        """A global, trace-less event (injected faults, leader changes)."""
        if not self.enabled:
            return
        self.records.append(
            {
                "kind": "event",
                "seq": self._next_seq(),
                "name": name,
                "t": t,
                "attrs": _clean_dict(attrs),
            }
        )

    # -- introspection ------------------------------------------------------

    def traces(self) -> dict[str, list[Span]]:
        """Spans grouped by trace id, in creation order."""
        out: dict[str, list[Span]] = {}
        for span in self.spans:
            out.setdefault(span.trace_id, []).append(span)
        return out

    def trace(self, trace_id: str) -> list[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def reset(self) -> None:
        self.spans.clear()
        self.records.clear()
        self._open.clear()
        self._open_by_trace.clear()
        self._closed.clear()
        self._seq = 0

    # -- export -------------------------------------------------------------

    def to_records(self) -> list[dict]:
        """Every span and global event as dicts, in one deterministic
        causal order (creation sequence)."""
        records = [span.to_record() for span in self.spans]
        records.extend(self.records)
        records.sort(key=lambda r: r["seq"])
        return records

    def export_jsonl(self, out: Union[str, TextIO]) -> int:
        """Write the structured event log as JSON lines; returns the
        number of records written.  ``out`` is a path or a file object."""
        records = self.to_records()
        if isinstance(out, str):
            with open(out, "w") as fh:
                self._write(fh, records)
        else:
            self._write(out, records)
        return len(records)

    @staticmethod
    def _write(fh: TextIO, records: list[dict]) -> None:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")


def load_jsonl(source: Union[str, TextIO]) -> tuple[list[Span], list[dict]]:
    """Read an exported event log back into (spans, global events)."""
    if isinstance(source, str):
        with open(source) as fh:
            lines = fh.readlines()
    else:
        lines = source.readlines()
    spans: list[Span] = []
    events: list[dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") == "span":
            spans.append(Span.from_record(record))
        else:
            events.append(record)
    return spans, events


#: Shared disabled tracer — the default wherever tracing is optional.
NULL_TRACER = Tracer(enabled=False)
