"""Observability: command tracing, trace analysis, latency explainer,
partition-health telemetry, oracle decision audit, run reports.

``repro.obs.trace``    — :class:`Tracer` / :class:`Span`, JSONL export.
``repro.obs.analyze``  — span-tree assembly, integrity checks, per-stage
                         latency breakdowns, critical-path attribution.
``repro.obs.explain``  — ``python -m repro.obs.explain TRACE.jsonl``.
``repro.obs.audit``    — :class:`AuditLog` of oracle repartition
                         decisions with cost attribution.
``repro.obs.health``   — :class:`PartitionHealthSampler` windowed
                         partition-health telemetry on the virtual clock.
``repro.obs.report``   — ``python -m repro.obs.report RUN_DIR`` joining
                         traces, metrics, audit log, and health samples.
"""

from repro.obs.trace import NULL_TRACER, ROOT_SPAN, Span, Tracer, load_jsonl
from repro.obs.analyze import (
    StageStats,
    TraceSet,
    check_integrity,
    critical_path,
    stage_breakdown,
)
from repro.obs.audit import NULL_AUDIT, AuditLog, load_audit_jsonl
from repro.obs.health import PartitionHealthSampler, load_health_jsonl

__all__ = [
    "NULL_TRACER",
    "ROOT_SPAN",
    "Span",
    "Tracer",
    "load_jsonl",
    "StageStats",
    "TraceSet",
    "check_integrity",
    "critical_path",
    "stage_breakdown",
    "NULL_AUDIT",
    "AuditLog",
    "load_audit_jsonl",
    "PartitionHealthSampler",
    "load_health_jsonl",
]
