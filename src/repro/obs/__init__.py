"""Observability: command tracing, trace analysis, latency explainer.

``repro.obs.trace``    — :class:`Tracer` / :class:`Span`, JSONL export.
``repro.obs.analyze``  — span-tree assembly, integrity checks, per-stage
                         latency breakdowns, critical-path attribution.
``repro.obs.explain``  — ``python -m repro.obs.explain TRACE.jsonl``.
"""

from repro.obs.trace import NULL_TRACER, ROOT_SPAN, Span, Tracer, load_jsonl
from repro.obs.analyze import (
    StageStats,
    TraceSet,
    check_integrity,
    critical_path,
    stage_breakdown,
)

__all__ = [
    "NULL_TRACER",
    "ROOT_SPAN",
    "Span",
    "Tracer",
    "load_jsonl",
    "StageStats",
    "TraceSet",
    "check_integrity",
    "critical_path",
    "stage_breakdown",
]
