"""``python -m repro.obs.explain TRACE.jsonl`` — latency breakdown report.

Reads a JSONL trace export (``Tracer.export_jsonl``) and prints:

* end-to-end latency statistics over all completed traces,
* per-stage critical-path attribution (sums to end-to-end),
* per-stage raw durations (overlapping; "how long does this stage take"),
* the slowest-N traces with their attribution,
* any recorded global events (faults, leader elections), summarised.

Exit status is 0 on success, 1 when ``--expect-stages`` names a stage
absent from the log, 2 when ``--check-integrity`` finds violations —
so CI can assert instrumentation has not rotted.

``--format json`` emits the same breakdown as one JSON document on
stdout (guard diagnostics go to stderr; exit codes are unchanged), so
CI and ``repro.obs.report`` can consume it without screen-scraping.
The default text output is untouched.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.obs.analyze import (
    TraceSet,
    check_integrity,
    stage_breakdown,
    stage_names,
)


def _fmt(value: float) -> str:
    return f"{value:10.4f}"


def _print_stage_table(title: str, rows: list[dict], out) -> None:
    print(title, file=out)
    header = f"  {'stage':<18} {'count':>6} {'mean':>10} {'p50':>10} {'p95':>10} {'p99':>10} {'total':>10}"
    print(header, file=out)
    print("  " + "-" * (len(header) - 2), file=out)
    for row in rows:
        print(
            f"  {row['stage']:<18} {row['count']:>6}"
            f" {_fmt(row['mean'])} {_fmt(row['p50'])}"
            f" {_fmt(row['p95'])} {_fmt(row['p99'])} {_fmt(row['total'])}",
            file=out,
        )
    print(file=out)


def explain(traces: TraceSet, slowest: int = 5, out=None) -> dict:
    """Print the full report for a TraceSet; returns the breakdown."""
    out = out or sys.stdout
    report = stage_breakdown(traces)

    e2e = report["end_to_end"]
    print(
        f"traces: {report['traces']} completed"
        f" ({len(traces)} total, {len(traces.events)} global events)",
        file=out,
    )
    print(
        f"end-to-end latency: mean={e2e['mean']:.4f}"
        f" p50={e2e['p50']:.4f} p95={e2e['p95']:.4f} p99={e2e['p99']:.4f}",
        file=out,
    )
    print(file=out)

    _print_stage_table(
        "critical-path attribution (stage shares sum to end-to-end):",
        report["critical"],
        out,
    )
    _print_stage_table(
        "stage durations (overlapping spans, not additive):",
        report["durations"],
        out,
    )

    if slowest > 0 and report["slowest"]:
        print(f"slowest {min(slowest, len(report['slowest']))} traces:", file=out)
        for row in report["slowest"][:slowest]:
            shares = ", ".join(
                f"{name}={share:.4f}"
                for name, share in sorted(
                    row["critical"].items(), key=lambda kv: -kv[1]
                )
            )
            print(
                f"  {row['trace']}: latency={row['latency']:.4f} [{shares}]",
                file=out,
            )
        print(file=out)

    if traces.events:
        counts: dict[str, int] = {}
        for event in traces.events:
            counts[event["name"]] = counts.get(event["name"], 0) + 1
        summary = ", ".join(
            f"{name}×{n}" for name, n in sorted(counts.items())
        )
        print(f"global events: {summary}", file=out)

    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.explain",
        description="Per-stage latency breakdown from a JSONL trace export.",
    )
    parser.add_argument("trace", help="path to a Tracer.export_jsonl file")
    parser.add_argument(
        "--slowest",
        type=int,
        default=5,
        metavar="N",
        help="show the N slowest traces (default 5, 0 to disable)",
    )
    parser.add_argument(
        "--expect-stages",
        default=None,
        metavar="A,B,C",
        help="comma-separated stage names that must appear in the log; "
        "exit 1 if any is missing (CI instrumentation guard)",
    )
    parser.add_argument(
        "--check-integrity",
        action="store_true",
        help="run span-tree integrity checks; exit 2 on violations",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="output format (default text; json emits one document)",
    )
    args = parser.parse_args(argv)

    traces = TraceSet.from_jsonl(args.trace)
    if args.fmt == "json":
        report = stage_breakdown(traces)
        report["slowest"] = report["slowest"][: max(0, args.slowest)]
        report["traces_total"] = len(traces)
        event_counts: dict[str, int] = {}
        for event in traces.events:
            event_counts[event["name"]] = event_counts.get(event["name"], 0) + 1
        report["events"] = event_counts
    else:
        report = explain(traces, slowest=args.slowest)

    status = 0
    if args.expect_stages:
        expected = {s.strip() for s in args.expect_stages.split(",") if s.strip()}
        present = stage_names(traces)
        missing = sorted(expected - present)
        if args.fmt == "json":
            report["missing_stages"] = missing
        if missing:
            print(f"MISSING stages: {', '.join(missing)}", file=sys.stderr)
            status = 1
        elif args.fmt != "json":
            print(f"all {len(expected)} expected stages present")

    if args.check_integrity:
        problems = check_integrity(traces)
        if args.fmt == "json":
            report["integrity"] = problems
        if problems:
            for problem in problems:
                print(f"INTEGRITY: {problem}", file=sys.stderr)
            status = 2
        elif args.fmt != "json":
            print("span-tree integrity: ok")

    if args.fmt == "json":
        json.dump(report, sys.stdout, sort_keys=True, indent=2)
        sys.stdout.write("\n")

    return status


if __name__ == "__main__":
    sys.exit(main())
