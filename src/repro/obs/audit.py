"""The oracle decision audit log: *why* did a repartition fire?

DynaStar's value proposition is the oracle's dynamic repartitioning
loop, yet a trace only shows its *effects* (plans a-delivered, variables
moving).  The :class:`AuditLog` records the loop's *decisions* as
structured records:

* ``repartition-decision`` — the trigger (accumulated access changes
  crossing the threshold, or an explicit request), the workload-graph
  inputs (vertex/edge counts, decayed weights), and the outputs: edge
  cut and imbalance before/after, how many vertices change home, the
  heaviest moved vertices, and the per-partition gained/lost delta.
  Hysteresis-suppressed plans are recorded too (``published: false``) —
  "why did nothing happen" is as auditable as "why did it".
* ``plan-published`` / ``plan-applied`` — the plan's multicast send and
  a-delivery times, bracketing the ordering cost.
* ``relocation`` / ``relocation-quiesce`` — per-partition: how many
  objects a plan shipped out, how many nodes arrived in transit, and
  when the last in-flight node settled (the quiesce point after which
  no command blocks on plan-driven relocation).
* ``reconfig-*`` — the elastic split/merge lifecycle per epoch: the
  policy decision, the provision of the new group, the cutover plan
  application, the retiring group's drain point, and the retirement —
  enough to attribute cutover latency and handoff cost per decision
  (see the report CLI's ``reconfig`` section).

Design constraints mirror :class:`repro.obs.trace.Tracer`:

* **Near-zero overhead when disabled.**  Every public method starts
  with an ``enabled`` check; :data:`NULL_AUDIT` is the shared disabled
  instance used as the default everywhere.
* **Deterministic.**  Record ids come from a per-log counter, times
  from the virtual clock; values are rendered through the same
  JSON-safe cleaner as trace tags, so seeded runs export byte-identical
  JSONL.  Replicated actors record on replica 0 only (the metrics
  convention), so replication does not double records.
"""

from __future__ import annotations

import json
from typing import Any, Optional, TextIO, Union

from repro.obs.trace import _clean

#: Record kinds, in lifecycle order for one plan version.
DECISION = "repartition-decision"
PUBLISHED = "plan-published"
APPLIED = "plan-applied"
RELOCATION = "relocation"
QUIESCE = "relocation-quiesce"

#: Elastic reconfiguration lifecycle, in order for one epoch: the policy
#: verdict (split/merge decided), the new group provisioned and joined,
#: the directory cutover plan applied, the retiring group's drain point,
#: and the merge's final retirement.
RECONFIG_DECISION = "reconfig-decision"
RECONFIG_PROVISION = "reconfig-provision"
RECONFIG_CUTOVER = "reconfig-cutover"
RECONFIG_DRAIN = "reconfig-drain"
RECONFIG_RETIRED = "reconfig-retired"


class AuditLog:
    """Append-only structured log of oracle repartitioning decisions."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: list[dict] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self.records)

    # -- recording ----------------------------------------------------------

    def record(self, kind: str, t: float, **fields: Any) -> Optional[dict]:
        """Append one record; returns it (or None when disabled).

        ``fields`` values are cleaned to JSON scalars (``repr`` for
        anything else) at record time, so later mutation of the caller's
        objects cannot change history.
        """
        if not self.enabled:
            return None
        record = {"kind": kind, "seq": self._seq, "t": t}
        self._seq += 1
        for key, value in fields.items():
            record[key] = _clean_value(value)
        self.records.append(record)
        return record

    def decision(
        self,
        t: float,
        version: int,
        trigger: str,
        published: bool,
        inputs: dict,
        outputs: dict,
        **fields: Any,
    ) -> Optional[dict]:
        """Record one repartition decision (published or suppressed)."""
        if not self.enabled:
            return None
        return self.record(
            DECISION,
            t,
            version=version,
            trigger=trigger,
            published=published,
            inputs=inputs,
            outputs=outputs,
            **fields,
        )

    # -- introspection ------------------------------------------------------

    def by_kind(self, kind: str) -> list[dict]:
        return [r for r in self.records if r["kind"] == kind]

    def decisions(self) -> list[dict]:
        return self.by_kind(DECISION)

    def reset(self) -> None:
        self.records.clear()
        self._seq = 0

    # -- export -------------------------------------------------------------

    def to_records(self) -> list[dict]:
        """Every record, in deterministic creation order."""
        return list(self.records)

    def export_jsonl(self, out: Union[str, TextIO]) -> int:
        """Write the audit log as JSON lines; returns the record count.
        ``out`` is a path or a file object."""
        records = self.to_records()
        if isinstance(out, str):
            with open(out, "w") as fh:
                _write(fh, records)
        else:
            _write(out, records)
        return len(records)


def _clean_value(value: Any) -> Any:
    """Deep-clean a field value: dicts/lists/tuples recurse, everything
    else goes through the tracer's scalar cleaner."""
    if isinstance(value, dict):
        return {str(k): _clean_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean_value(v) for v in value]
    return _clean(value)


def _write(fh: TextIO, records: list[dict]) -> None:
    for record in records:
        fh.write(json.dumps(record, sort_keys=True))
        fh.write("\n")


def load_audit_jsonl(source: Union[str, TextIO]) -> list[dict]:
    """Read an exported audit log back into a record list."""
    if isinstance(source, str):
        with open(source) as fh:
            lines = fh.readlines()
    else:
        lines = source.readlines()
    records = []
    for line in lines:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


#: Shared disabled audit log — the default wherever auditing is optional.
NULL_AUDIT = AuditLog(enabled=False)
