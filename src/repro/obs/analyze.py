"""Turn raw span logs into answers: where does command latency go?

Three views over a set of traces:

* **Stage durations** — for each span name, count/mean/p50/p95/p99 of
  the span's own duration.  Spans overlap (a ``multicast-order`` span
  contains the ordering protocol's queueing), so these do *not* sum to
  the end-to-end latency; they answer "how long does this stage take
  when it runs".
* **Critical-path attribution** — each trace's root interval is cut at
  every span boundary and each resulting segment is charged to exactly
  one span (the most specific one covering it).  Attributed time sums
  *exactly* to the end-to-end latency, so a p50/p95 table over these
  shares answers "which stage is the bottleneck".  Time covered by no
  stage span is charged to :data:`UNTRACED`.
* **Slowest-N** — the worst traces by end-to-end latency, with their
  per-stage attribution, for drilling into outliers.

The "most specific covering span" rule: among spans covering a segment,
pick the one with the latest start; break ties by tree depth (deeper
wins), then by span id.  A child always starts at or after its parent,
so this charges time to the innermost active stage — the same intuition
as flame-graph leaf attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.obs.trace import ROOT_SPAN, Span, load_jsonl

#: Pseudo-stage charged with root-interval time no stage span covers.
UNTRACED = "(untraced)"


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (matches ``Histogram.percentile``)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class StageStats:
    """Summary statistics for one stage over a set of traces."""

    name: str
    samples: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    def percentile(self, q: float) -> float:
        return _percentile(self.samples, q)

    def summary(self) -> dict:
        return {
            "stage": self.name,
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "total": self.total,
        }


class TraceSet:
    """All spans of a run, indexed by trace, with per-trace root lookup."""

    def __init__(self, spans: Sequence[Span], events: Sequence[dict] = ()):
        self.spans = list(spans)
        self.events = list(events)
        self.by_trace: dict[str, list[Span]] = {}
        for span in self.spans:
            self.by_trace.setdefault(span.trace_id, []).append(span)

    @classmethod
    def from_jsonl(cls, source) -> "TraceSet":
        spans, events = load_jsonl(source)
        return cls(spans, events)

    @classmethod
    def from_tracer(cls, tracer) -> "TraceSet":
        return cls(list(tracer.spans), list(tracer.records))

    def root(self, trace_id: str) -> Optional[Span]:
        for span in self.by_trace.get(trace_id, ()):
            if span.name == ROOT_SPAN:
                return span
        return None

    def complete_traces(self) -> list[str]:
        """Trace ids whose root span is finished."""
        out = []
        for trace_id in self.by_trace:
            root = self.root(trace_id)
            if root is not None and root.finished:
                out.append(trace_id)
        return out

    def __len__(self) -> int:
        return len(self.by_trace)


# -- integrity ---------------------------------------------------------------


def check_integrity(traces: TraceSet) -> list[str]:
    """Structural invariants every completed trace must satisfy.

    Returns a list of human-readable violations (empty = all good):
    exactly one root span per trace; every non-root span's parent exists
    in the same trace (no orphans); every finished span has ``end >=
    start``; every finished child lies within ``[root.start, root.end]``.
    """
    problems: list[str] = []
    for trace_id, spans in sorted(traces.by_trace.items()):
        roots = [s for s in spans if s.name == ROOT_SPAN]
        if len(roots) != 1:
            problems.append(f"{trace_id}: {len(roots)} root spans (want 1)")
            continue
        root = roots[0]
        ids = {s.span_id for s in spans}
        for span in spans:
            if span is not root and span.parent_id not in ids:
                problems.append(
                    f"{trace_id}: span {span.name!r} has orphan parent "
                    f"{span.parent_id!r}"
                )
            if span.finished and span.end < span.start:
                problems.append(
                    f"{trace_id}: span {span.name!r} ends before it starts "
                    f"({span.end} < {span.start})"
                )
        if not root.finished:
            continue
        for span in spans:
            if span is root or not span.finished:
                continue
            if span.start < root.start or span.end > root.end:
                problems.append(
                    f"{trace_id}: span {span.name!r} "
                    f"[{span.start}, {span.end}] escapes root "
                    f"[{root.start}, {root.end}]"
                )
    return problems


# -- critical path -----------------------------------------------------------


def _depths(spans: list[Span]) -> dict[int, int]:
    by_id = {s.span_id: s for s in spans}
    depths: dict[int, int] = {}

    def depth(span: Span) -> int:
        if span.span_id in depths:
            return depths[span.span_id]
        if span.parent_id is None or span.parent_id not in by_id:
            d = 0
        else:
            d = depth(by_id[span.parent_id]) + 1
        depths[span.span_id] = d
        return d

    for span in spans:
        depth(span)
    return depths


def critical_path(traces: TraceSet, trace_id: str) -> dict[str, float]:
    """Charge every instant of a trace's root interval to one stage.

    The root interval is segmented at all clipped span boundaries; each
    segment goes to the most specific covering stage span (latest start,
    then deepest, then largest id).  The returned per-stage totals sum
    exactly to the root duration; uncovered time is :data:`UNTRACED`.
    """
    spans = traces.by_trace.get(trace_id, [])
    root = traces.root(trace_id)
    if root is None or not root.finished:
        return {}
    lo, hi = root.start, root.end
    if hi <= lo:
        return {}

    depths = _depths(spans)
    # Stage spans, clipped to the root interval; unfinished spans were
    # force-closed at trace completion so in practice all are finished.
    clipped = []
    for span in spans:
        if span is root or not span.finished:
            continue
        start = max(span.start, lo)
        end = min(span.end, hi)
        if end > start:
            clipped.append((start, end, span))

    cuts = sorted({lo, hi, *(c[0] for c in clipped), *(c[1] for c in clipped)})
    shares: dict[str, float] = {}
    for seg_lo, seg_hi in zip(cuts, cuts[1:]):
        covering = [c for c in clipped if c[0] <= seg_lo and c[1] >= seg_hi]
        if covering:
            _, _, winner = max(
                covering,
                key=lambda c: (c[0], depths[c[2].span_id], c[2].span_id),
            )
            name = winner.name
        else:
            name = UNTRACED
        shares[name] = shares.get(name, 0.0) + (seg_hi - seg_lo)
    return shares


# -- breakdowns --------------------------------------------------------------


def stage_breakdown(traces: TraceSet) -> dict:
    """The full latency breakdown over all completed traces.

    Returns a dict with:

    * ``traces`` — number of completed traces analysed
    * ``end_to_end`` — StageStats summary of root-span latency
    * ``durations`` — list of per-stage duration summaries (overlapping)
    * ``critical`` — list of per-stage critical-path attribution
      summaries; these shares sum to end-to-end per trace
    * ``slowest`` — trace ids ordered worst-first with latency and
      attribution, for outlier drill-down
    """
    complete = traces.complete_traces()
    e2e = StageStats("end-to-end")
    durations: dict[str, StageStats] = {}
    critical: dict[str, StageStats] = {}
    slowest: list[dict] = []

    for trace_id in complete:
        root = traces.root(trace_id)
        e2e.add(root.duration)
        for span in traces.by_trace[trace_id]:
            if span is root or not span.finished:
                continue
            durations.setdefault(span.name, StageStats(span.name)).add(
                span.duration
            )
        shares = critical_path(traces, trace_id)
        for name, share in shares.items():
            critical.setdefault(name, StageStats(name)).add(share)
        slowest.append(
            {
                "trace": trace_id,
                "latency": root.duration,
                "tags": dict(root.tags),
                "critical": shares,
            }
        )

    slowest.sort(key=lambda r: (-r["latency"], r["trace"]))

    def ordered(stats: dict[str, StageStats]) -> list[dict]:
        return [
            stats[name].summary()
            for name in sorted(stats, key=lambda n: -stats[n].total)
        ]

    return {
        "traces": len(complete),
        "end_to_end": e2e.summary(),
        "durations": ordered(durations),
        "critical": ordered(critical),
        "slowest": slowest,
    }


def stage_names(traces: TraceSet) -> set[str]:
    """Every distinct stage (non-root span) name present."""
    return {s.name for s in traces.spans if s.name != ROOT_SPAN}
