"""Windowed partition-health telemetry on the virtual clock.

The :class:`PartitionHealthSampler` ticks every ``period`` virtual
seconds and records, per window:

* **per-partition load** — commands executed in the window, the
  single- vs multi-partition command mix, execution-queue depth,
  admission-controller depth, owned-node / stored-variable counts, and
  nodes still in transit under a repartitioning plan;
* **graph quality** — the oracle's live workload graph scored against
  its live location map: edge cut, cut fraction, and load imbalance
  (via ``repro.partitioning.quality``), plus vertex/edge counts and the
  oracle's accumulated change counter;
* **hot keys** — the top-N heaviest workload-graph vertices
  (:func:`repro.partitioning.quality.weighted_hot_vertices`).

Samples are plain JSON-safe dicts kept in order (`samples`) and also
fed into the shared :class:`~repro.sim.monitor.Monitor` as labeled
series (``health_load{partition=..}``, ``health_edge_cut`` …) so the
figure machinery can plot them like any other metric.

Design constraints:

* **Zero cost when disabled.**  A system without health sampling never
  constructs a sampler and never schedules a tick — there is no
  per-event hook anywhere; the sampler *reads* actor state, it is never
  called by actors.
* **Deterministic.**  Ticks run at fixed virtual times, reads are pure,
  and values are cleaned to JSON scalars at sample time, so seeded runs
  export byte-identical JSONL.  The sampler samples replica 0 of each
  group (falling back to the first live replica under crashes — a
  deterministic choice given a seeded fault schedule).
"""

from __future__ import annotations

import json
from typing import Any, Optional, TextIO, Union

from repro.obs.trace import _clean
from repro.partitioning.quality import (
    cut_fraction,
    edge_cut,
    imbalance_by_label,
    weighted_hot_vertices,
)


class PartitionHealthSampler:
    """Periodic sampler over a running ``DynaStarSystem`` (duck-typed:
    anything exposing ``sim``, ``monitor``, ``partition_names``,
    ``servers(p)`` and ``oracle_replicas()`` works)."""

    def __init__(
        self,
        system,
        period: float = 1.0,
        top_n: int = 5,
    ):
        if period <= 0:
            raise ValueError("sample period must be positive")
        self.system = system
        self.period = period
        self.top_n = top_n
        self.samples: list[dict] = []
        self._last_executed: dict[str, int] = {}
        self._last_multi: dict[str, int] = {}
        self._started = False

    # -- scheduling ---------------------------------------------------------

    def start(self) -> None:
        """Arm the first tick (idempotent)."""
        if self._started:
            return
        self._started = True
        self.system.sim.schedule(self.period, self._tick)

    def _tick(self) -> None:
        self.sample()
        self.system.sim.schedule(self.period, self._tick)

    # -- sampling -----------------------------------------------------------

    def _live_replica(self, replicas):
        for replica in replicas:
            if not replica.crashed:
                return replica
        return None

    def sample(self) -> Optional[dict]:
        """Take one sample now; returns the record (None if nothing is
        reachable — e.g. every replica of every group crashed)."""
        system = self.system
        now = system.sim.now
        monitor = system.monitor
        record: dict = {"t": now, "partitions": {}}

        total_exec = 0
        total_multi = 0
        for name in system.partition_names:
            server = self._live_replica(system.servers(name))
            if server is None:
                continue
            executed = server.executed_count
            multi = server.multi_partition_count
            d_exec = executed - self._last_executed.get(name, 0)
            d_multi = multi - self._last_multi.get(name, 0)
            self._last_executed[name] = executed
            self._last_multi[name] = multi
            total_exec += d_exec
            total_multi += d_multi
            entry = {
                "executed": d_exec,
                "multi": d_multi,
                "single": d_exec - d_multi,
                "queue_depth": len(server.queue),
                "admission_depth": (
                    server.admission.depth if server.admission is not None else 0
                ),
                "owned_nodes": len(server.owned_nodes),
                "variables": len(server.store),
                "in_transit": len(server.in_transit),
            }
            record["partitions"][name] = entry
            monitor.series("health_load", partition=name).record(now, d_exec)
            monitor.series("health_multi", partition=name).record(now, d_multi)
            monitor.series("health_queue_depth", partition=name).record(
                now, entry["queue_depth"]
            )

        record["mix"] = {
            "executed": total_exec,
            "multi": total_multi,
            "single": total_exec - total_multi,
            "multi_fraction": (total_multi / total_exec) if total_exec else 0.0,
        }

        oracle = self._live_replica(system.oracle_replicas())
        if oracle is not None:
            graph = oracle.graph
            location = oracle.location
            k = max(1, len(system.partition_names))
            cut = edge_cut(graph, location)
            quality = {
                "version": oracle.version,
                "changes": oracle.changes,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "edge_cut": cut,
                "cut_fraction": cut_fraction(graph, location),
                "imbalance": imbalance_by_label(graph, location, k),
            }
            record["graph"] = quality
            record["hot"] = [
                [_clean(v), w] for v, w in weighted_hot_vertices(graph, self.top_n)
            ]
            monitor.series("health_edge_cut").record(now, cut)
            monitor.series("health_imbalance").record(now, quality["imbalance"])

        self.samples.append(record)
        return record

    # -- export -------------------------------------------------------------

    def to_records(self) -> list[dict]:
        return list(self.samples)

    def export_jsonl(self, out: Union[str, TextIO]) -> int:
        """Write the samples as JSON lines; returns the sample count."""
        records = self.to_records()
        if isinstance(out, str):
            with open(out, "w") as fh:
                self._write(fh, records)
        else:
            self._write(out, records)
        return len(records)

    @staticmethod
    def _write(fh: TextIO, records: list[dict]) -> None:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")


def load_health_jsonl(source: Union[str, TextIO]) -> list[dict]:
    """Read exported health samples back into a record list."""
    if isinstance(source, str):
        with open(source) as fh:
            lines = fh.readlines()
    else:
        lines = source.readlines()
    records = []
    for line in lines:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
