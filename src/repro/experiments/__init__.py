"""Experiment harness: regenerates every table and figure of the paper.

Each ``figures.fig*`` function is a self-contained experiment returning a
plain dict (series and summary rows) and printable through
:mod:`repro.experiments.reporting`.  The pytest-benchmark wrappers in
``benchmarks/`` call these with laptop-scale defaults; pass larger
``scale`` values to approach the paper's deployment sizes.
"""

from repro.experiments.harness import (
    RunResult,
    build_chirper_system,
    build_tpcc_system,
    run_clients,
    social_optimized_placement,
    steady_rate,
    warehouse_aligned_placement,
)
from repro.experiments import figures, reporting

__all__ = [
    "RunResult",
    "build_chirper_system",
    "build_tpcc_system",
    "run_clients",
    "social_optimized_placement",
    "steady_rate",
    "warehouse_aligned_placement",
    "figures",
    "reporting",
]
