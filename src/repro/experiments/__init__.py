"""Experiment harness: regenerates every table and figure of the paper.

Each ``figures.fig*`` function is a self-contained experiment returning a
plain dict (series and summary rows) and printable through
:mod:`repro.experiments.reporting`.  The pytest-benchmark wrappers in
``benchmarks/`` call these with laptop-scale defaults; pass larger
``scale`` values to approach the paper's deployment sizes.
"""

from repro.experiments.harness import (
    RunResult,
    build_chirper_system,
    build_tpcc_system,
    run_clients,
    social_optimized_placement,
    steady_rate,
    warehouse_aligned_placement,
)
from repro.experiments import figures, reporting

__all__ = [
    "FlashCrowdConfig",
    "build_flash_crowd",
    "run_flash_crowd",
    "RunResult",
    "build_chirper_system",
    "build_tpcc_system",
    "run_clients",
    "social_optimized_placement",
    "steady_rate",
    "warehouse_aligned_placement",
    "figures",
    "reporting",
]


def __getattr__(name):
    # Lazy so `python -m repro.experiments.overload` does not import the
    # module twice (once via the package, once as __main__).
    if name in ("FlashCrowdConfig", "build_flash_crowd", "run_flash_crowd"):
        from repro.experiments import overload

        return getattr(overload, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
