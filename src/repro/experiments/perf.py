"""Wall-clock benchmark harness: the repo's perf trajectory.

Runs pinned, seeded scenarios and writes a ``BENCH_<date>.json`` with
events/sec, wall-clock seconds, and peak RSS per scenario::

    python -m repro.experiments.perf            # full scale (~2 min)
    python -m repro.experiments.perf --quick    # CI smoke scale (~30 s)

Scenarios
---------
* ``social_macro`` — the Chirper social network on DynaStar (the
  headline macro scenario; the optimization acceptance bar is measured
  here).
* ``tpcc`` — TPC-C with warehouse-aligned partitions.
* ``chaos`` — Chirper under message loss, crashes, link cuts, and
  client-timeout retries.
* ``read_heavy`` — the compartmentalized read-path scenario (proxy
  leaders + 3 read learners + leader leases) next to its leader-only
  baseline; records the read-throughput scaling ratio.
* ``micro.*`` — event dispatch, ``Network.send``, ``Monitor`` counter
  increments, ``fastcopy.copy_value``, and the disabled-path cost of
  the observability hooks in isolation.

Determinism gate
----------------
Every optimization to the simulation hot path must be a *pure
mechanical speedup*: seeded runs must produce byte-identical trace
JSONL and identical metric dumps.  The harness proves this two ways:

* **repeat gate** — each gated scenario runs twice in-process; the two
  trace exports and metric dumps must be byte-identical or the harness
  exits nonzero (this is what CI enforces).
* **baseline comparison** — trace/metric SHA-256 digests are compared
  against ``benchmarks/perf/baseline.json`` (recorded before the
  optimization pass) and the match is recorded in the output, proving
  the optimized hot path replays the exact same simulation.  Use
  ``--strict-baseline`` to also fail on a mismatch (off by default:
  digests are only comparable on the interpreter that recorded them).

``--rebaseline`` rewrites the current mode's section of the baseline
file from this run.  Timing comparisons are only meaningful against a
baseline recorded on the same machine.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import io
import json
import platform
import resource
import sys
import time
from pathlib import Path

from repro.experiments.harness import (
    build_chirper_system,
    build_tpcc_system,
    make_social_graph,
    tpcc_workload,
    warehouse_aligned_placement,
)
from repro.faults import ChaosConfig, ChaosInjector, generate_for_system
from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.monitor import Monitor
from repro.sim.network import Network
from repro.smr.fastcopy import copy_value
from repro.workloads.social import ChirperWorkload

#: Bump when scenario definitions change incompatibly (invalidates
#: baseline comparisons).
SCHEMA_VERSION = 1

#: Pinned seeds — the whole point is replayable runs.
SOCIAL_SEED = 11
WORKLOAD_SEED = 3
SYSTEM_SEED = 1
CHAOS_SEED = 77


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB (Linux semantics)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _timed(fn):
    """Run ``fn`` and return (result, wall_clock_seconds)."""
    gc.collect()
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


# ---------------------------------------------------------------------------
# Macro scenarios
# ---------------------------------------------------------------------------


def _social_system(quick: bool, tracing: bool = False, gate: bool = False):
    n_users = 120 if (quick or gate) else 300
    graph = make_social_graph(n_users, seed=SOCIAL_SEED)
    system = build_chirper_system(
        2,
        graph,
        mode="dynastar",
        seed=SYSTEM_SEED,
        repartition_threshold=4000,
    )
    system.config.tracing = tracing
    system.tracer.enabled = tracing
    workload = ChirperWorkload(graph, mix="mix", seed=WORKLOAD_SEED)
    return system, workload


def run_social_macro(quick: bool) -> dict:
    system, workload = _social_system(quick)
    n_clients = 4 if quick else 8
    duration = 4.0 if quick else 10.0
    for _ in range(n_clients):
        system.add_client(workload, stop_at=duration)
    _, wall = _timed(lambda: system.run(until=duration))
    return {
        "wall_clock_s": wall,
        "events": system.sim.events_processed,
        "events_per_sec": system.sim.events_processed / wall,
        "commands_completed": system.total_completed(),
        "peak_rss_kb": _peak_rss_kb(),
    }


def run_tpcc(quick: bool) -> dict:
    system, tpcc_config = build_tpcc_system(2, mode="dynastar", seed=SYSTEM_SEED)
    workload = tpcc_workload(tpcc_config, seed=WORKLOAD_SEED)
    n_clients = 4 if quick else 8
    duration = 4.0 if quick else 10.0
    for _ in range(n_clients):
        system.add_client(workload, stop_at=duration)
    _, wall = _timed(lambda: system.run(until=duration))
    return {
        "wall_clock_s": wall,
        "events": system.sim.events_processed,
        "events_per_sec": system.sim.events_processed / wall,
        "commands_completed": system.total_completed(),
        "peak_rss_kb": _peak_rss_kb(),
    }


#: Service time for the lane scenarios: high enough that execution (not
#: protocol round-trips) dominates, so the lane count is what moves the
#: completion numbers.
LANES_SERVICE_TIME = 0.004

#: Lane counts compared by the ablation (1 = the serial baseline).
LANE_COUNTS = (1, 2, 4)


def _lanes_tpcc_system(lanes: int, quick: bool):
    """Warehouse-aligned TPC-C (minimal multi-partition traffic) with a
    modeled service time: the intra-partition execution ablation rig."""
    from repro.workloads.tpcc import TPCCConfig

    tpcc_config = TPCCConfig(n_warehouses=2)
    system, tpcc_config = build_tpcc_system(
        2,
        mode="dynastar",
        placement=warehouse_aligned_placement(tpcc_config),
        seed=SYSTEM_SEED,
        tpcc_config=tpcc_config,
        service_time=LANES_SERVICE_TIME,
        execution_lanes=lanes,
    )
    return system, tpcc_config


def run_tpcc_lanes(quick: bool) -> dict:
    """The TPC-C macro with 4 execution lanes (dependency-aware parallel
    intra-partition execution)."""
    system, tpcc_config = _lanes_tpcc_system(4, quick)
    workload = tpcc_workload(tpcc_config, seed=WORKLOAD_SEED)
    n_clients = 12 if quick else 24
    duration = 4.0 if quick else 10.0
    for _ in range(n_clients):
        system.add_client(workload, stop_at=duration)
    _, wall = _timed(lambda: system.run(until=duration))
    return {
        "wall_clock_s": wall,
        "events": system.sim.events_processed,
        "events_per_sec": system.sim.events_processed / wall,
        "commands_completed": system.total_completed(),
        "peak_rss_kb": _peak_rss_kb(),
    }


def run_social_lanes(quick: bool) -> dict:
    """The social macro with 4 execution lanes and a modeled service
    time.  Posts and follows are writes over a skewed graph, so unlike
    the near-disjoint TPC-C district streams this measures lane scaling
    in the presence of real conflicts (timeline fan-in)."""
    n_users = 120 if quick else 300
    graph = make_social_graph(n_users, seed=SOCIAL_SEED)
    system = build_chirper_system(
        2,
        graph,
        mode="dynastar",
        seed=SYSTEM_SEED,
        repartition_threshold=4000,
        service_time=LANES_SERVICE_TIME,
        execution_lanes=4,
    )
    workload = ChirperWorkload(graph, mix="mix", seed=WORKLOAD_SEED)
    n_clients = 8 if quick else 16
    duration = 4.0 if quick else 10.0
    for _ in range(n_clients):
        system.add_client(workload, stop_at=duration)
    _, wall = _timed(lambda: system.run(until=duration))
    return {
        "wall_clock_s": wall,
        "events": system.sim.events_processed,
        "events_per_sec": system.sim.events_processed / wall,
        "commands_completed": system.total_completed(),
        "peak_rss_kb": _peak_rss_kb(),
    }


def run_lanes_ablation(quick: bool) -> dict:
    """Commands completed in a fixed virtual duration at each lane
    count, on identical seeded offered load.  Virtual-time completion
    counts are deterministic (unlike wall clock), so the speedup ratios
    are exact and replayable — this is what ``--check-lanes`` gates on.
    """
    duration = 4.0 if quick else 8.0
    n_clients = 12 if quick else 24
    results: dict = {}
    for lanes in LANE_COUNTS:
        system, tpcc_config = _lanes_tpcc_system(lanes, quick)
        workload = tpcc_workload(tpcc_config, seed=WORKLOAD_SEED)
        for _ in range(n_clients):
            system.add_client(workload, stop_at=duration)
        _, wall = _timed(lambda: system.run(until=duration))
        results[f"lanes{lanes}"] = {
            "commands_completed": system.total_completed(),
            "wall_clock_s": wall,
        }
    base = results["lanes1"]["commands_completed"]
    for lanes in LANE_COUNTS[1:]:
        entry = results[f"lanes{lanes}"]
        entry["speedup_vs_serial"] = (
            entry["commands_completed"] / base if base else None
        )
    return results


def _chaos_system(quick: bool, tracing: bool = False):
    n_users = 80 if quick else 150
    graph = make_social_graph(n_users, seed=SOCIAL_SEED)
    system = build_chirper_system(
        2,
        graph,
        mode="dynastar",
        seed=SYSTEM_SEED,
    )
    cfg = system.config
    cfg.tracing = tracing
    system.tracer.enabled = tracing
    cfg.loss_probability = 0.02
    system.net.loss_probability = 0.02
    cfg.client_timeout = 0.25
    cfg.client_timeout_cap = 2.0
    duration = 4.0 if quick else 8.0
    chaos = ChaosConfig(duration=duration * 0.75, start_after=0.5)
    schedule = generate_for_system(system, chaos, seed=CHAOS_SEED)
    ChaosInjector(system, schedule).arm()
    workload = ChirperWorkload(graph, mix="mix", seed=WORKLOAD_SEED)
    return system, workload, duration


def run_chaos(quick: bool) -> dict:
    system, workload, duration = _chaos_system(quick)
    for _ in range(4):
        system.add_client(workload, stop_at=duration)
    _, wall = _timed(lambda: system.run(until=duration + 4.0))
    return {
        "wall_clock_s": wall,
        "events": system.sim.events_processed,
        "events_per_sec": system.sim.events_processed / wall,
        "commands_completed": system.total_completed(),
        "peak_rss_kb": _peak_rss_kb(),
    }


def run_read_heavy(quick: bool) -> dict:
    """The compartmentalized read-path macro and its leader-only
    baseline, on the identical seeded offered load; the scaling ratio
    is the acceptance number the compartment work is gated on."""
    from dataclasses import replace

    from repro.experiments.compartment import (
        CompartmentScenario,
        build_scenario,
    )

    scenario = CompartmentScenario(duration=3.0 if quick else 6.0)
    system, _injector, _workloads = build_scenario(scenario)
    _, wall = _timed(lambda: system.run(until=scenario.duration + 30.0))
    counters = system.monitor.snapshot()["counters"]
    local_ok = sum(
        v for k, v in counters.items()
        if k.startswith("reads{") and "event=local_ok" in k
    )
    baseline_system, _i, _w = build_scenario(
        replace(scenario, compartment=False)
    )
    _, baseline_wall = _timed(
        lambda: baseline_system.run(until=scenario.duration + 30.0)
    )
    completed = system.total_completed()
    baseline_completed = baseline_system.total_completed()
    return {
        "wall_clock_s": wall + baseline_wall,
        "events": system.sim.events_processed,
        "events_per_sec": system.sim.events_processed / wall,
        "commands_completed": completed,
        "local_reads_ok": local_ok,
        "baseline_commands_completed": baseline_completed,
        "read_scaling_ratio": (
            completed / baseline_completed if baseline_completed else None
        ),
        "peak_rss_kb": _peak_rss_kb(),
    }


# ---------------------------------------------------------------------------
# Micro-benchmarks
# ---------------------------------------------------------------------------


def micro_event_dispatch(quick: bool) -> dict:
    n = 100_000 if quick else 400_000
    sim = Simulator()

    def noop():
        pass

    def setup_and_run():
        for i in range(n):
            sim.schedule(i * 1e-6, noop)
        sim.run()

    _, wall = _timed(setup_and_run)
    return {"ops": n, "wall_clock_s": wall, "ops_per_sec": n / wall}


def micro_network_send(quick: bool) -> dict:
    from repro.sim.actors import Actor

    n = 30_000 if quick else 120_000

    class Sink(Actor):
        def on_message(self, sender, message):
            pass

    sim = Simulator()
    net = Network(sim, default_latency=ConstantLatency(0.0001))
    net.register(Sink("a"))
    net.register(Sink("b"))

    def send_all():
        for i in range(n):
            net.send("a", "b", i)
        sim.run()

    _, wall = _timed(send_all)
    return {"ops": n, "wall_clock_s": wall, "ops_per_sec": n / wall}


def micro_monitor_counters(quick: bool) -> dict:
    n = 100_000 if quick else 400_000
    monitor = Monitor()

    def bump():
        for i in range(n):
            monitor.counter("plain").inc()
            monitor.counter("labeled", kind="a" if i & 1 else "b").inc()

    _, wall = _timed(bump)
    ops = 2 * n
    return {"ops": ops, "wall_clock_s": wall, "ops_per_sec": ops / wall}


def micro_obs_disabled(quick: bool) -> dict:
    """Cost of the observability hooks when observability is off.

    Every audit call site in the oracle/server plan path is shaped as
    an ``enabled`` guard (possibly followed by a ``NULL_AUDIT.record``
    early return); the health sampler is simply absent.  This micro
    times that disabled pattern in isolation.  The macro scenarios
    above run with observability off and carry the <2% events/s
    regression budget against the committed baseline.
    """
    from repro.obs.audit import NULL_AUDIT

    n = 100_000 if quick else 400_000
    audit = NULL_AUDIT

    def hooks():
        for i in range(n):
            if audit.enabled:  # guarded call site: never taken
                audit.record("plan-published", 0.0, version=i)
            audit.record("plan-applied", 0.0, version=i)  # early return

    _, wall = _timed(hooks)
    ops = 2 * n
    return {"ops": ops, "wall_clock_s": wall, "ops_per_sec": ops / wall}


def micro_fastcopy(quick: bool) -> dict:
    n = 5_000 if quick else 20_000
    # Shaped like the social-network store values: follower sets, tuple
    # timelines, nested per-user dicts.
    value = {
        "followers": {f"u{i}" for i in range(40)},
        "timeline": [(float(i), f"u{i % 7}", f"post {i}") for i in range(60)],
        "profile": {"name": "user", "counters": [1, 2, 3], "tags": ("a", "b")},
    }

    def copy_loop():
        for _ in range(n):
            copy_value(value)

    _, wall = _timed(copy_loop)
    return {"ops": n, "wall_clock_s": wall, "ops_per_sec": n / wall}


# ---------------------------------------------------------------------------
# Determinism gate
# ---------------------------------------------------------------------------


def _traced_social_fingerprint(quick: bool) -> tuple:
    system, workload = _social_system(quick, tracing=True, gate=True)
    duration = 3.0
    for _ in range(3):
        system.add_client(workload, stop_at=duration)
    system.run(until=duration)
    return _fingerprint(system)


def _traced_chaos_fingerprint(quick: bool) -> tuple:
    system, workload, duration = _chaos_system(True, tracing=True)
    for _ in range(3):
        system.add_client(workload, stop_at=duration)
    system.run(until=duration + 2.0)
    return _fingerprint(system)


def _traced_lanes_fingerprint(quick: bool) -> tuple:
    """The lane scheduler itself must be deterministic: a traced 4-lane
    TPC-C run repeated in-process must export identical bytes."""
    system, tpcc_config = _lanes_tpcc_system(4, quick)
    system.config.tracing = True
    system.tracer.enabled = True
    workload = tpcc_workload(tpcc_config, seed=WORKLOAD_SEED)
    duration = 2.0
    for _ in range(6):
        system.add_client(workload, stop_at=duration)
    system.run(until=duration)
    return _fingerprint(system)


def _fingerprint(system) -> tuple:
    """(trace_jsonl, metrics_json) for one finished run."""
    buf = io.StringIO()
    system.tracer.export_jsonl(buf)
    metrics = json.dumps(system.monitor.snapshot(), sort_keys=True)
    return buf.getvalue(), metrics


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


GATE_SCENARIOS = {
    "social_macro": _traced_social_fingerprint,
    "chaos": _traced_chaos_fingerprint,
    "tpcc_lanes": _traced_lanes_fingerprint,
}


def run_determinism_gate(quick: bool, baseline: dict) -> tuple:
    """Run every gated scenario twice; return (results, ok).

    ``ok`` is False when any repeat pair differs — the hard failure CI
    acts on.  Baseline digest mismatches are recorded per scenario but
    only fail under ``--strict-baseline``.
    """
    results = {}
    ok = True
    base_gate = (baseline or {}).get("determinism", {})
    for name, runner in GATE_SCENARIOS.items():
        trace_a, metrics_a = runner(quick)
        trace_b, metrics_b = runner(quick)
        identical = trace_a == trace_b and metrics_a == metrics_b
        ok = ok and identical
        entry = {
            "repeat_identical": identical,
            "trace_records": trace_a.count("\n"),
            "trace_sha256": _sha256(trace_a),
            "metrics_sha256": _sha256(metrics_a),
        }
        base_entry = base_gate.get(name)
        if base_entry:
            entry["matches_baseline"] = (
                base_entry.get("trace_sha256") == entry["trace_sha256"]
                and base_entry.get("metrics_sha256") == entry["metrics_sha256"]
            )
        results[name] = entry
    return results, ok


# ---------------------------------------------------------------------------
# Baseline bookkeeping
# ---------------------------------------------------------------------------


def default_baseline_path() -> Path:
    """``benchmarks/perf/baseline.json`` in the repo checkout."""
    return (
        Path(__file__).resolve().parents[3] / "benchmarks" / "perf" / "baseline.json"
    )


def load_baseline(path: Path, quick: bool) -> dict:
    if not path.is_file():
        return {}
    data = json.loads(path.read_text())
    section = data.get("quick" if quick else "full", {})
    if section.get("schema") != SCHEMA_VERSION:
        return {}
    return section


def save_baseline(path: Path, quick: bool, section: dict) -> None:
    data = {}
    if path.is_file():
        data = json.loads(path.read_text())
    data["quick" if quick else "full"] = section
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def compare_to_baseline(scenarios: dict, baseline: dict) -> dict:
    """events/sec improvement per macro scenario vs. the recorded
    pre-optimization baseline (positive = faster now)."""
    comparison = {}
    for name in ("social_macro", "tpcc", "tpcc_lanes", "chaos", "read_heavy"):
        base = (baseline.get("scenarios", {}) or {}).get(name)
        current = scenarios.get(name)
        if not base or not current:
            continue
        before = base.get("events_per_sec")
        after = current.get("events_per_sec")
        if not before or not after:
            continue
        comparison[name] = {
            "baseline_events_per_sec": before,
            "events_per_sec": after,
            "improvement": after / before - 1.0,
        }
    return comparison


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the pinned wall-clock benchmark suite."
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (~30 s)"
    )
    parser.add_argument(
        "--out",
        default=".",
        help="directory to write BENCH_<date>.json into (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: benchmarks/perf/baseline.json)",
    )
    parser.add_argument(
        "--rebaseline",
        action="store_true",
        help="rewrite this mode's baseline section from this run",
    )
    parser.add_argument(
        "--skip-macro",
        action="store_true",
        help="run only the determinism gate and micro-benchmarks",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="also fail when trace digests differ from the baseline's",
    )
    parser.add_argument(
        "--check-lanes",
        action="store_true",
        help=(
            "fail unless the 4-lane TPC-C ablation completes >= 1.5x the "
            "serial baseline's commands (deterministic virtual-time ratio)"
        ),
    )
    parser.add_argument(
        "--check-tpcc-regression",
        action="store_true",
        help=(
            "fail when tpcc events/s drops more than 25%% below the "
            "recorded baseline (generous: wall clock is noisy on shared "
            "runners)"
        ),
    )
    args = parser.parse_args(argv)

    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path()
    )
    baseline = load_baseline(baseline_path, args.quick)

    scenarios: dict = {}
    if not args.skip_macro:
        for name, runner in (
            ("social_macro", run_social_macro),
            ("tpcc", run_tpcc),
            ("tpcc_lanes", run_tpcc_lanes),
            ("social_lanes", run_social_lanes),
            ("chaos", run_chaos),
            ("read_heavy", run_read_heavy),
        ):
            print(f"[perf] running {name} ...", flush=True)
            scenarios[name] = runner(args.quick)
            print(
                f"[perf]   {scenarios[name]['events_per_sec']:,.0f} events/s "
                f"in {scenarios[name]['wall_clock_s']:.2f}s",
                flush=True,
            )
        print("[perf] running lanes ablation ...", flush=True)
        scenarios["lanes_ablation"] = run_lanes_ablation(args.quick)
        for lanes in LANE_COUNTS:
            entry = scenarios["lanes_ablation"][f"lanes{lanes}"]
            ratio = entry.get("speedup_vs_serial")
            suffix = f" ({ratio:.2f}x vs serial)" if ratio else ""
            print(
                f"[perf]   lanes={lanes}: "
                f"{entry['commands_completed']} commands{suffix}",
                flush=True,
            )

    micro = {}
    for name, runner in (
        ("event_dispatch", micro_event_dispatch),
        ("network_send", micro_network_send),
        ("monitor_counters", micro_monitor_counters),
        ("fastcopy", micro_fastcopy),
        ("obs_disabled", micro_obs_disabled),
    ):
        print(f"[perf] running micro.{name} ...", flush=True)
        micro[name] = runner(args.quick)
        print(f"[perf]   {micro[name]['ops_per_sec']:,.0f} ops/s", flush=True)
    scenarios["micro"] = micro

    print("[perf] running determinism gate ...", flush=True)
    determinism, gate_ok = run_determinism_gate(args.quick, baseline)
    for name, entry in determinism.items():
        status = "ok" if entry["repeat_identical"] else "MISMATCH"
        extra = ""
        if "matches_baseline" in entry:
            extra = (
                ", matches baseline"
                if entry["matches_baseline"]
                else ", DIFFERS FROM BASELINE"
            )
        print(f"[perf]   {name}: repeat {status}{extra}", flush=True)

    comparison = compare_to_baseline(scenarios, baseline)
    for name, row in comparison.items():
        print(
            f"[perf] {name}: {row['improvement']:+.1%} events/s vs baseline",
            flush=True,
        )

    date = time.strftime("%Y-%m-%d")
    report = {
        "schema": SCHEMA_VERSION,
        "date": date,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": scenarios,
        "determinism": determinism,
        "baseline": baseline or None,
        "comparison": comparison,
        "peak_rss_kb": _peak_rss_kb(),
    }
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{date}.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[perf] wrote {out_path}", flush=True)

    if args.rebaseline:
        section = {
            "schema": SCHEMA_VERSION,
            "recorded": date,
            "python": platform.python_version(),
            "scenarios": {
                k: v for k, v in scenarios.items() if k != "micro"
            },
            "micro": scenarios.get("micro", {}),
            "determinism": determinism,
        }
        save_baseline(baseline_path, args.quick, section)
        print(f"[perf] baseline rewritten: {baseline_path}", flush=True)

    if not gate_ok:
        print("[perf] DETERMINISM GATE FAILED", file=sys.stderr)
        return 1
    if args.strict_baseline and any(
        entry.get("matches_baseline") is False for entry in determinism.values()
    ):
        print("[perf] baseline digest mismatch (strict)", file=sys.stderr)
        return 1
    if args.check_lanes:
        ablation = scenarios.get("lanes_ablation") or run_lanes_ablation(
            args.quick
        )
        scenarios.setdefault("lanes_ablation", ablation)
        ratio = (ablation.get("lanes4") or {}).get("speedup_vs_serial")
        if ratio is None or ratio < 1.5:
            print(
                f"[perf] LANES GATE FAILED: 4-lane speedup "
                f"{ratio if ratio is not None else 'n/a'} < 1.5x",
                file=sys.stderr,
            )
            return 1
        print(f"[perf] lanes gate ok: {ratio:.2f}x >= 1.5x", flush=True)
    if args.check_tpcc_regression:
        row = comparison.get("tpcc")
        if row is not None and row["improvement"] < -0.25:
            print(
                f"[perf] TPCC REGRESSION: {row['improvement']:+.1%} "
                f"events/s vs baseline",
                file=sys.stderr,
            )
            return 1
        if row is not None:
            print(
                f"[perf] tpcc regression gate ok: "
                f"{row['improvement']:+.1%} vs baseline",
                flush=True,
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
