"""Shared experiment machinery: system builders for the two benchmarks,
client pools, steady-state metric extraction, and run-artifact export."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.baselines import DSSMRSystem, SSMRSystem
from repro.core import DynaStarSystem, SystemConfig
from repro.partitioning import WorkloadGraph, partition_graph
from repro.partitioning.graph import Partitioning
from repro.sim.latency import LatencyModel, lan_default
from repro.workloads.social import (
    ChirperApp,
    ChirperWorkload,
    SocialGraph,
    generate_social_graph,
)
from repro.workloads.tpcc import (
    TPCCApp,
    TPCCConfig,
    TPCCWorkload,
    district_node,
    warehouse_node,
)

#: Default per-command service time for throughput experiments (2 ms -> a
#: partition saturates at ~500 cps; the paper's absolute numbers differ,
#: the scaling shape is what we reproduce).
DEFAULT_SERVICE_TIME = 0.002


@dataclass
class RunResult:
    """Everything the figures need from one run."""

    duration: float
    warmup: float
    completed: int
    failed: int
    throughput: float  # steady-state commands/second
    latency_mean: float
    latency_p95: float
    counters: dict = field(default_factory=dict)
    throughput_series: list = field(default_factory=list)
    system: object = None
    workload: object = None
    #: Per-stage latency breakdown (``repro.obs.analyze.stage_breakdown``
    #: output) — populated only when the system ran with tracing enabled.
    stage_breakdown: Optional[dict] = None


def steady_rate(series: list, warmup: float, duration: float) -> float:
    """Average per-second rate of a TimeSeries bucket list within
    ``[warmup, duration)``."""
    window = [v for (t, v) in series if warmup <= t < duration]
    if not window:
        return 0.0
    return sum(window) / len(window)


def run_clients(
    system,
    workload,
    n_clients: int,
    duration: float,
    warmup: float = 5.0,
) -> RunResult:
    """Attach ``n_clients`` closed-loop clients, run, and summarize the
    post-warmup steady state."""
    clients = [
        system.add_client(workload, stop_at=duration) for _ in range(n_clients)
    ]
    system.run(until=duration)
    monitor = system.monitor
    series = monitor.series("completed").buckets()
    latency = monitor.histogram("latency")
    breakdown = None
    tracer = getattr(system, "tracer", None)
    if tracer is not None and tracer.enabled and tracer.spans:
        from repro.obs.analyze import TraceSet, stage_breakdown

        breakdown = stage_breakdown(TraceSet.from_tracer(tracer))
    return RunResult(
        duration=duration,
        warmup=warmup,
        completed=sum(c.completed for c in clients),
        failed=sum(c.failed for c in clients),
        throughput=steady_rate(series, warmup, duration),
        latency_mean=latency.mean(),
        latency_p95=latency.percentile(95) if len(latency) else float("nan"),
        counters=dict(monitor.counters()),
        throughput_series=series,
        system=system,
        workload=workload,
        stage_breakdown=breakdown,
    )


def export_run_artifacts(system, directory: str) -> dict:
    """Write whatever observability artifacts the system collected into
    ``directory`` under the names ``repro.obs.report`` expects
    (``trace.jsonl``, ``metrics.json``, ``audit.jsonl``,
    ``health.jsonl``).  Returns ``{artifact: path}`` for what was
    written; disabled collectors are simply skipped."""
    os.makedirs(directory, exist_ok=True)
    written: dict = {}

    tracer = getattr(system, "tracer", None)
    if tracer is not None and tracer.enabled and tracer.spans:
        path = os.path.join(directory, "trace.jsonl")
        tracer.export_jsonl(path)
        written["trace"] = path

    monitor = getattr(system, "monitor", None)
    if monitor is not None:
        path = os.path.join(directory, "metrics.json")
        with open(path, "w") as fh:
            json.dump(monitor.snapshot(), fh, sort_keys=True, indent=2)
            fh.write("\n")
        written["metrics"] = path

    audit = getattr(system, "audit", None)
    if audit is not None and audit.enabled:
        path = os.path.join(directory, "audit.jsonl")
        audit.export_jsonl(path)
        written["audit"] = path

    health = getattr(system, "health", None)
    if health is not None:
        path = os.path.join(directory, "health.jsonl")
        health.export_jsonl(path)
        written["health"] = path

    return written


# ---------------------------------------------------------------------------
# TPC-C builders
# ---------------------------------------------------------------------------


def warehouse_aligned_placement(config: TPCCConfig) -> dict:
    """The manual optimum for TPC-C: warehouse ``w`` and all its districts
    on partition ``w-1`` (one warehouse per partition, §6.3) — this is
    what S-SMR* uses."""
    placement = {}
    for w in range(1, config.n_warehouses + 1):
        part = (w - 1) % config.n_warehouses
        placement[warehouse_node(w)] = part
        for d in range(1, config.districts_per_warehouse + 1):
            placement[district_node(w, d)] = part
    return placement


def build_tpcc_system(
    n_partitions: int,
    mode: str = "dynastar",
    placement="random",
    seed: int = 1,
    tpcc_config: Optional[TPCCConfig] = None,
    repartition_threshold: int = 4000,
    service_time: float = DEFAULT_SERVICE_TIME,
    latency: Optional[LatencyModel] = None,
    hint_period: float = 1.0,
    execution_lanes: int = 1,
):
    """A TPC-C deployment with one warehouse per partition (paper §6.3)."""
    tpcc_config = tpcc_config or TPCCConfig(n_warehouses=n_partitions)
    app = TPCCApp(tpcc_config)
    config = SystemConfig(
        n_partitions=n_partitions,
        seed=seed,
        mode="dynastar" if mode == "dynastar" else mode,
        placement=placement,
        repartition_enabled=(mode == "dynastar"),
        repartition_threshold=repartition_threshold,
        service_time=service_time,
        latency=latency or lan_default(),
        hint_period=hint_period,
        execution_lanes=execution_lanes,
    )
    if mode == "ssmr":
        system = SSMRSystem(app, config)
    elif mode == "dssmr":
        system = DSSMRSystem(app, config)
    else:
        system = DynaStarSystem(app, config)
    return system, tpcc_config


def tpcc_workload(tpcc_config: TPCCConfig, seed: int = 2) -> TPCCWorkload:
    return TPCCWorkload(tpcc_config, seed=seed)


# ---------------------------------------------------------------------------
# Chirper builders
# ---------------------------------------------------------------------------


def social_optimized_placement(graph: SocialGraph, k: int, seed: int = 0) -> Partitioning:
    """Offline METIS-style placement of the *social* graph — full workload
    knowledge, as handed to S-SMR* in §6.4."""
    wg = WorkloadGraph()
    for user in graph.users():
        wg.ensure_vertex(("user", user))
    for user, following in graph.following.items():
        for other in following:
            wg.add_edge(("user", user), ("user", other))
    return partition_graph(wg, k, seed=seed)


def build_chirper_system(
    n_partitions: int,
    graph: SocialGraph,
    mode: str = "dynastar",
    placement="random",
    seed: int = 1,
    repartition_threshold: int = 6000,
    service_time: float = DEFAULT_SERVICE_TIME,
    latency: Optional[LatencyModel] = None,
    hint_period: float = 1.0,
    execution_lanes: int = 1,
):
    app = ChirperApp(graph)
    config = SystemConfig(
        n_partitions=n_partitions,
        seed=seed,
        mode="dynastar" if mode == "dynastar" else mode,
        placement=placement,
        repartition_enabled=(mode == "dynastar"),
        repartition_threshold=repartition_threshold,
        service_time=service_time,
        latency=latency or lan_default(),
        hint_period=hint_period,
        execution_lanes=execution_lanes,
    )
    if mode == "ssmr":
        return SSMRSystem(app, config)
    if mode == "dssmr":
        return DSSMRSystem(app, config)
    return DynaStarSystem(app, config)


def make_social_graph(n_users: int, seed: int = 11, avg_follows: float = 12.0) -> SocialGraph:
    """The Higgs-substitute graph at experiment scale."""
    return generate_social_graph(n_users, avg_follows=avg_follows, seed=seed)
