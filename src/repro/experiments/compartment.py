"""Compartmentalized read-path scenario: proxy-leader ingress, scaled
read learners, and leader-lease local reads under a read-heavy mix.

A closed-loop fleet hammers a small keyspace with ~90% reads.  With
compartmentalization off, every read is ordered and executed at every
replica of its partition — replication adds fault tolerance, not read
throughput, so the run saturates at the replicas' service rate.  With
it on, each read executes at exactly one of the partition's learners
after a lease-checked sequencing probe, so read capacity scales with
the learner count; the ``--check-scaling`` gate asserts the 3-learner
deployment completes at least 2x the leader-only baseline on the same
offered load.

Usage::

    python -m repro.experiments.compartment                 # one summary
    python -m repro.experiments.compartment --quick         # CI smoke
    python -m repro.experiments.compartment --chaos         # + stage faults
    python -m repro.experiments.compartment --ablation      # learner x lease grid
    python -m repro.experiments.compartment --check-scaling
    python -m repro.experiments.compartment --check-determinism
    python -m repro.experiments.compartment --check-consistency
    python -m repro.experiments.compartment --obs DIR       # export artifacts

``--check-determinism`` runs the traced scenario twice per cell of
{compartment on, off} x {chaos on, off} and exits nonzero unless each
pair exports byte-identical trace JSONL and metric dumps.  ``--chaos``
fires the two stage fault kinds (``crash_proxy_leader``,
``expire_lease``) on a fine grid across the run; both resolve
applicability at fire time, so ticks that land on an idle stage no-op.
"""

from __future__ import annotations

import argparse
import io
import json
import random
import sys
from dataclasses import dataclass, replace

from repro.compartment import CompartmentConfig
from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import Workload
from repro.experiments.harness import export_run_artifacts
from repro.faults import FaultSchedule
from repro.faults.injector import ChaosInjector
from repro.sim.latency import ConstantLatency
from repro.smr import Command, KeyValueApp


class ReadHeavyWorkload(Workload):
    """Seeded read-mostly mix over a small, cache-warm keyspace.

    ``read_fraction`` of commands are single-key reads; the rest are
    single-key writes (which keep the location caches warm and give the
    lease probes real write traffic to sequence against).
    """

    def __init__(self, keys, read_fraction: float, seed: int, client_tag: str):
        self.keys = list(keys)
        self.read_fraction = read_fraction
        self.rng = random.Random(seed)
        self.client_tag = client_tag
        self._seq = 0
        self.reads_issued = 0
        self.failures: list[tuple[str, str]] = []

    def next_command(self, client) -> Command:
        i = self._seq
        self._seq += 1
        uid = f"{self.client_tag}:{i}"
        key = self.rng.choice(self.keys)
        if self.rng.random() < self.read_fraction:
            self.reads_issued += 1
            return Command(uid, "read", (key,))
        return Command(uid, "write", (key, i))

    def on_command_failed(self, client, command, reason) -> None:
        self.failures.append((command.uid, reason))


@dataclass(frozen=True)
class CompartmentScenario:
    """One read-heavy run, fully seeded."""

    seed: int = 33
    n_keys: int = 16
    n_clients: int = 24
    duration: float = 6.0
    read_fraction: float = 0.9
    #: Per-command CPU cost at replicas *and* learners — the scarce
    #: resource the learner fan-out multiplies.
    service_time: float = 0.002
    compartment: bool = True
    n_learners: int = 3
    n_proxies: int = 2
    lease: bool = True
    chaos: bool = False
    tracing: bool = False


def chaos_schedule(scenario: CompartmentScenario) -> FaultSchedule:
    """A comb of the two stage fault kinds across the whole run: every
    half second one partition loses a proxy leader (recovered 0.3s
    later via the shared crash ledger) and every 0.7s the current lease
    holder of the other partition force-expires its lease mid-burst.
    Both kinds resolve their victim at fire time and no-op when nothing
    qualifies, so the comb is safe to lay down densely."""
    schedule = FaultSchedule()
    t = 0.5
    i = 0
    while t < scenario.duration:
        group = f"p{i % 2}"
        schedule.at(round(t, 4), "crash_proxy_leader", group)
        schedule.at(round(t + 0.3, 4), "recover_leader", group)
        i += 1
        t += 0.5
    t = 0.7
    i = 0
    while t < scenario.duration:
        schedule.at(round(t, 4), "expire_lease", f"p{(i + 1) % 2}")
        i += 1
        t += 0.7
    return schedule


def build_scenario(scenario: CompartmentScenario):
    """System + clients (+ armed injector when ``chaos``) for one run."""
    app = KeyValueApp({f"k{i:02d}": i for i in range(scenario.n_keys)})
    system = DynaStarSystem(
        app,
        SystemConfig(
            n_partitions=2,
            seed=scenario.seed,
            latency=ConstantLatency(0.001),
            repartition_enabled=False,
            service_time=scenario.service_time,
            client_timeout=0.25,
            client_timeout_cap=2.0,
            idempotency_keys=True,
            tracing=scenario.tracing,
            compartment=CompartmentConfig(
                enabled=scenario.compartment,
                n_proxy_leaders=scenario.n_proxies,
                n_learners=scenario.n_learners,
                lease_enabled=scenario.lease,
            ),
        ),
    )
    injector = None
    if scenario.chaos:
        injector = ChaosInjector(system, chaos_schedule(scenario)).arm()
    workloads = []
    for i in range(scenario.n_clients):
        workload = ReadHeavyWorkload(
            [f"k{i:02d}" for i in range(scenario.n_keys)],
            scenario.read_fraction,
            seed=scenario.seed * 1000 + i,
            client_tag=f"c{i}",
        )
        workloads.append(workload)
        system.add_client(workload, stop_at=scenario.duration)
    return system, injector, workloads


def summarize(system, workloads) -> dict:
    counters = system.monitor.snapshot()["counters"]

    def _sum(prefix: str) -> int:
        return sum(v for k, v in counters.items() if k.startswith(prefix))

    return {
        "completed": system.total_completed(),
        "failed": system.total_failed(),
        "workload_failures": sum(len(w.failures) for w in workloads),
        "stuck_clients": sum(1 for c in system.clients if not c.done),
        "local_reads_dispatched": sum(c.local_reads for c in system.clients),
        "local_ok": _sum("reads{event=local_ok"),
        "local_nok": _sum("reads{event=local_nok"),
        "local_deadline": _sum("reads{event=local_deadline"),
        "local_reject": _sum("reads{event=local_reject"),
        "ordered_reads": sum(
            v for k, v in counters.items()
            if k.startswith("reads{") and "event=ordered" in k
        ),
        "lease_granted": sum(
            v for k, v in counters.items()
            if k.startswith("lease{") and "event=granted" in k
        ),
        "lease_expired": sum(
            v for k, v in counters.items()
            if k.startswith("lease{") and "event=expired" in k
        ),
        "proxy_batches": _sum("proxy{event=batch"),
        "faults_applied": _sum("fault{"),
    }


def run_scenario(scenario: CompartmentScenario):
    """Run one scenario to completion; returns (summary, system)."""
    system, _injector, workloads = build_scenario(scenario)
    # Drain well past stop_at so every in-flight command resolves.
    system.run(until=scenario.duration + 30.0)
    return summarize(system, workloads), system


def fingerprint(scenario: CompartmentScenario) -> tuple[str, str]:
    """(trace_jsonl, metrics_json) of one traced run — the determinism
    gate compares two of these byte-for-byte."""
    traced = replace(scenario, tracing=True)
    system, _injector, _workloads = build_scenario(traced)
    system.run(until=traced.duration + 30.0)
    buf = io.StringIO()
    system.tracer.export_jsonl(buf)
    metrics = json.dumps(system.monitor.snapshot(), sort_keys=True)
    return buf.getvalue(), metrics


def verify_consistency(system) -> list[str]:
    """Replica agreement within every partition, variable conservation
    across them, and learner-mirror convergence to the replica state."""
    problems = []
    for partition in system.partition_names:
        replicas = system.servers(partition)
        baseline = dict(replicas[0].store.items())
        for replica in replicas[1:]:
            if dict(replica.store.items()) != baseline:
                problems.append(f"replica state divergence in {partition}")
                break
        for learner in system.directory.groups[partition].learners:
            mirror = dict(learner.store.items())
            if mirror != baseline:
                problems.append(
                    f"learner {learner.name} diverged from {partition} state"
                )
    merged = system.all_store_variables()
    expected = set(system.app.initial_variables())
    if set(merged) != expected:
        missing = expected - set(merged)
        extra = set(merged) - expected
        problems.append(
            f"variable conservation violated (missing={sorted(missing)}, "
            f"extra={sorted(extra)})"
        )
    return problems


def check_determinism(scenario: CompartmentScenario) -> list[str]:
    """Two traced runs per {compartment} x {chaos} cell must be
    byte-identical."""
    failures = []
    for compartment in (True, False):
        for chaos in (True, False):
            variant = replace(scenario, compartment=compartment, chaos=chaos)
            trace_a, metrics_a = fingerprint(variant)
            trace_b, metrics_b = fingerprint(variant)
            tag = (
                f"{'compartment' if compartment else 'baseline'}"
                f"/{'chaos' if chaos else 'calm'}"
            )
            if trace_a != trace_b or metrics_a != metrics_b:
                failures.append(f"{tag}: runs diverged")
            elif not trace_a:
                failures.append(f"{tag}: empty trace — gate is vacuous")
            else:
                print(
                    f"[compartment] determinism ({tag}): identical, "
                    f"{trace_a.count(chr(10))} trace records",
                    flush=True,
                )
    return failures


def check_scaling(scenario: CompartmentScenario, min_ratio: float = 2.0):
    """Read throughput gate: the 3-learner lease-read deployment must
    complete >= ``min_ratio`` x the commands of the leader-only baseline
    on the identical seeded offered load (a 90%-read closed loop, so the
    completion ratio tracks the read-throughput ratio)."""
    on = replace(scenario, compartment=True, lease=True, chaos=False)
    off = replace(scenario, compartment=False, chaos=False)
    summary_on, _ = run_scenario(on)
    summary_off, _ = run_scenario(off)
    ratio = (
        summary_on["completed"] / summary_off["completed"]
        if summary_off["completed"]
        else float("inf")
    )
    return ratio, summary_on, summary_off


def run_ablation(scenario: CompartmentScenario) -> list[dict]:
    """Learner-count x lease-on/off grid plus the disabled baseline."""
    rows = []
    base_summary, _ = run_scenario(replace(scenario, compartment=False))
    rows.append({"cell": "disabled", **base_summary})
    for n_learners in (1, 2, 3):
        for lease in (False, True):
            cell = replace(
                scenario, compartment=True, n_learners=n_learners, lease=lease
            )
            summary, _ = run_scenario(cell)
            rows.append(
                {
                    "cell": f"learners={n_learners}/lease={'on' if lease else 'off'}",
                    **summary,
                }
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compartmentalized read-path scenario and gates."
    )
    parser.add_argument("--seed", type=int, default=33)
    parser.add_argument("--duration", type=float, default=6.0)
    parser.add_argument("--quick", action="store_true",
                        help="short run for CI smoke")
    parser.add_argument("--chaos", action="store_true",
                        help="fire crash_proxy_leader / expire_lease combs "
                             "across the run")
    parser.add_argument("--ablation", action="store_true",
                        help="run the learner-count x lease grid and print "
                             "one summary row per cell")
    parser.add_argument("--check-scaling", action="store_true",
                        help="exit nonzero unless the 3-learner deployment "
                             "completes >= 2x the disabled baseline")
    parser.add_argument("--check-determinism", action="store_true",
                        help="two traced runs per {compartment} x {chaos} "
                             "cell must each be byte-identical")
    parser.add_argument("--check-consistency", action="store_true",
                        help="also verify replica agreement, variable "
                             "conservation, and learner convergence")
    parser.add_argument("--obs", default=None, metavar="DIR",
                        help="export run artifacts for repro.obs.report")
    parser.add_argument("--json", default=None,
                        help="write the summary to this path")
    args = parser.parse_args(argv)

    scenario = CompartmentScenario(
        seed=args.seed,
        duration=3.0 if args.quick else args.duration,
        chaos=args.chaos,
    )

    if args.check_determinism:
        print("[compartment] determinism gate: 2x2x2 runs ...", flush=True)
        failures = check_determinism(scenario)
        if failures:
            for failure in failures:
                print(f"[compartment] DETERMINISM: {failure}", file=sys.stderr)
            return 1

    if args.ablation:
        rows = run_ablation(scenario)
        print(json.dumps(rows, indent=2, sort_keys=True), flush=True)
        return 0

    summary, system = run_scenario(scenario)
    print(json.dumps(summary, indent=2, sort_keys=True), flush=True)
    if summary["stuck_clients"]:
        print("[compartment] stuck clients detected", file=sys.stderr)
        return 1
    if args.check_consistency:
        problems = verify_consistency(system)
        if problems:
            for problem in problems:
                print(f"[compartment] {problem}", file=sys.stderr)
            return 1
        print("[compartment] consistency: ok", flush=True)
    if args.check_scaling:
        ratio, summary_on, summary_off = check_scaling(scenario)
        print(
            f"[compartment] scaling: {summary_on['completed']} vs "
            f"{summary_off['completed']} completed (ratio {ratio:.2f})",
            flush=True,
        )
        if ratio < 2.0:
            print(
                f"[compartment] check-scaling: ratio {ratio:.2f} < 2.0",
                file=sys.stderr,
            )
            return 1
        print("[compartment] check-scaling: ok", flush=True)
    if args.obs:
        written = export_run_artifacts(system, args.obs)
        print(f"[compartment] wrote {sorted(written)} to {args.obs}", flush=True)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"config": vars(args), "summary": summary}, fh,
                      indent=2, sort_keys=True)
        print(f"[compartment] wrote {args.json}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
