"""Flash-crowd overload scenario: admission control and graceful
degradation under a seeded arrival-rate spike.

A fleet of open-loop-ish clients (seeded think times) runs a mixed
read/write/transfer workload against a small deployment; midway through,
an ``overload_burst`` fault multiplies every client's arrival rate.
With admission bounds, retry budgets, and circuit breakers configured,
the system sheds load deterministically — goodput stays near the
pre-burst level and admitted-command p99 stays bounded by the queue
bound — instead of growing unbounded queues.

Usage::

    python -m repro.experiments.overload                 # one summary
    python -m repro.experiments.overload --ablation      # bound × budget grid
    python -m repro.experiments.overload --check-determinism

``--check-determinism`` runs the traced scenario twice and exits nonzero
unless the two runs export byte-identical trace JSONL and metric dumps —
the CI overload-chaos smoke gate.
"""

from __future__ import annotations

import argparse
import io
import json
import random
import sys
from dataclasses import dataclass, replace
from typing import Optional

from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import Workload
from repro.faults import FaultSchedule
from repro.faults.injector import ChaosInjector
from repro.sim.latency import ConstantLatency
from repro.smr import Command, History, KeyValueApp


class MixedOpenWorkload(Workload):
    """Endless seeded mix of reads, writes, and cross-key transfers.

    Open-ended on purpose — the client's ``stop_at`` bounds the run, so
    the offered load is set by think time (and the flash-crowd
    multiplier), not by a fixed script length.
    """

    def __init__(self, n_keys: int, seed: int, client_tag: str):
        self.n_keys = n_keys
        self.rng = random.Random(seed)
        self.client_tag = client_tag
        self._seq = 0
        self.failures: list[tuple[str, str]] = []

    def next_command(self, client) -> Command:
        i = self._seq
        self._seq += 1
        k = self.rng.randrange(self.n_keys)
        roll = self.rng.random()
        uid = f"{self.client_tag}:{i}"
        if roll < 0.5:
            return Command(uid, "read", (f"k{k}",))
        if roll < 0.85:
            return Command(uid, "write", (f"k{k}", i))
        return Command(
            uid, "transfer", (f"k{k}", f"k{(k + 1) % self.n_keys}", 1)
        )

    def on_command_failed(self, client, command, reason) -> None:
        self.failures.append((command.uid, reason))


@dataclass(frozen=True)
class FlashCrowdConfig:
    """One flash-crowd run, fully seeded."""

    seed: int = 7
    n_partitions: int = 2
    n_keys: int = 12
    n_clients: int = 24
    duration: float = 20.0
    #: Virtual CPU seconds per command execution — nonzero so partitions
    #: actually saturate and queues form under the burst.
    service_time: float = 0.002
    #: Burst window: arrival rate × ``burst_factor`` during it.
    burst_at: float = 6.0
    burst_duration: float = 5.0
    burst_factor: float = 10.0
    #: Overload defenses (the ablation varies the first two).
    admission_bound: Optional[int] = 6
    retry_budget: Optional[float] = 10.0
    breaker_threshold: Optional[int] = 5
    rate_limit: Optional[float] = None
    think_time: float = 0.1
    tracing: bool = False


def build_flash_crowd(config: FlashCrowdConfig, history: Optional[History] = None):
    """System + armed injector + clients for one flash-crowd run."""
    app = KeyValueApp({f"k{i}": i for i in range(config.n_keys)})
    system = DynaStarSystem(
        app,
        SystemConfig(
            n_partitions=config.n_partitions,
            seed=config.seed,
            latency=ConstantLatency(0.001),
            repartition_enabled=False,
            service_time=config.service_time,
            client_timeout=0.25,
            client_timeout_cap=2.0,
            admission_bound=config.admission_bound,
            oracle_admission_bound=config.admission_bound,
            client_retry_budget=config.retry_budget,
            client_breaker_threshold=config.breaker_threshold,
            client_breaker_cooldown=0.5,
            client_rate_limit=config.rate_limit,
            client_think_time=config.think_time,
            tracing=config.tracing,
        ),
    )
    schedule = FaultSchedule().at(
        config.burst_at, "overload_burst",
        config.burst_duration, config.burst_factor,
    )
    injector = ChaosInjector(system, schedule).arm()
    workloads = []
    for i in range(config.n_clients):
        workload = MixedOpenWorkload(
            config.n_keys, seed=config.seed * 1000 + i, client_tag=f"c{i}"
        )
        workloads.append(workload)
        system.add_client(workload, history=history, stop_at=config.duration)
    return system, injector, workloads


def run_flash_crowd(config: FlashCrowdConfig, history: Optional[History] = None):
    """Run one flash crowd to completion; returns ``(summary, system)``."""
    system, _injector, workloads = build_flash_crowd(config, history)
    # Drain: well past stop_at so every in-flight command resolves.
    system.run(until=config.duration + 30.0)
    monitor = system.monitor
    latency = monitor.histogram("latency")
    completed = system.total_completed()
    admission = monitor.labeled_counters("admission")
    shed = sum(v for k, v in admission.items() if "shed" in k)
    busy = sum(v for k, v in admission.items() if "busy" in k and "client" not in k)
    return {
        "completed": completed,
        "failed": system.total_failed(),
        "gave_up": sum(c.gave_up for c in system.clients),
        "busy_rejections": sum(c.busy_rejections for c in system.clients),
        "workload_failures": sum(len(w.failures) for w in workloads),
        "goodput_per_s": completed / config.duration,
        "latency_p50": latency.percentile(50),
        "latency_p99": latency.percentile(99),
        "shed": shed,
        "busy": busy,
        "breaker_trips": admission.get("breaker_trip", 0),
        "stuck_clients": sum(1 for c in system.clients if not c.done),
    }, system


def fingerprint(config: FlashCrowdConfig) -> tuple[str, str]:
    """(trace_jsonl, metrics_json) for one traced run — the determinism
    gate compares two of these byte-for-byte."""
    traced = replace(config, tracing=True)
    system, _injector, _workloads = build_flash_crowd(traced)
    system.run(until=traced.duration + 30.0)
    buf = io.StringIO()
    system.tracer.export_jsonl(buf)
    metrics = json.dumps(system.monitor.snapshot(), sort_keys=True)
    return buf.getvalue(), metrics


def verify_consistency(system) -> list[str]:
    """Cheap safety invariants that scale to open-ended runs (full
    linearizability checking is exponential in history length and lives
    in the test suite over short scripted histories).  Returns a list of
    violation descriptions; empty means clean."""
    problems = []
    for partition in system.partition_names:
        replicas = system.servers(partition)
        baseline = dict(replicas[0].store.items())
        for replica in replicas[1:]:
            if dict(replica.store.items()) != baseline:
                problems.append(f"replica state divergence in {partition}")
                break
    merged = system.all_store_variables()
    if len(merged) != len(set(merged)):
        problems.append("variable owned by more than one partition")
    return problems


#: Ablation base: harsher than the default scenario (twice the clients,
#: slower service, a 20x burst) so both axes actually bind — with the
#: default load, closed-loop clients cannot collapse an unbounded queue
#: and the retry budget never runs dry.
ABLATION_BASE = FlashCrowdConfig(
    n_clients=48,
    duration=10.0,
    burst_at=3.0,
    burst_duration=4.0,
    burst_factor=20.0,
    service_time=0.004,
)


def run_ablation(config: FlashCrowdConfig, bounds, budgets) -> list[dict]:
    """Queue bound × retry budget grid (None = defense disabled)."""
    rows = []
    for bound in bounds:
        for budget in budgets:
            summary, _system = run_flash_crowd(
                replace(config, admission_bound=bound, retry_budget=budget)
            )
            rows.append(
                {"admission_bound": bound, "retry_budget": budget, **summary}
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Flash-crowd overload scenario and determinism gate."
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--factor", type=float, default=10.0,
                        help="flash-crowd arrival-rate multiplier")
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--quick", action="store_true",
                        help="short run for CI smoke")
    parser.add_argument("--ablation", action="store_true",
                        help="run the queue-bound × retry-budget grid")
    parser.add_argument("--check-determinism", action="store_true",
                        help="two traced runs must be byte-identical")
    parser.add_argument("--check-consistency", action="store_true",
                        help="also verify replica agreement and variable "
                             "conservation after the run")
    parser.add_argument("--json", default=None,
                        help="write the summary to this path")
    args = parser.parse_args(argv)

    config = FlashCrowdConfig(
        seed=args.seed,
        burst_factor=args.factor,
        duration=4.0 if args.quick else args.duration,
        burst_at=1.5 if args.quick else 6.0,
        burst_duration=1.5 if args.quick else 5.0,
    )

    if args.check_determinism:
        print("[overload] determinism gate: running twice ...", flush=True)
        trace_a, metrics_a = fingerprint(config)
        trace_b, metrics_b = fingerprint(config)
        if trace_a != trace_b or metrics_a != metrics_b:
            print("[overload] DETERMINISM GATE FAILED", file=sys.stderr)
            return 1
        if not trace_a:
            print("[overload] empty trace — gate is vacuous", file=sys.stderr)
            return 1
        print(
            f"[overload] identical: {trace_a.count(chr(10))} trace records",
            flush=True,
        )

    summary, system = run_flash_crowd(config)
    print(json.dumps(summary, indent=2, sort_keys=True), flush=True)
    if summary["stuck_clients"]:
        print("[overload] stuck clients detected", file=sys.stderr)
        return 1
    if args.check_consistency:
        problems = verify_consistency(system)
        if problems:
            for problem in problems:
                print(f"[overload] {problem}", file=sys.stderr)
            return 1
        print("[overload] consistency: ok", flush=True)

    rows = None
    if args.ablation:
        base = replace(ABLATION_BASE, seed=args.seed)
        if args.quick:
            base = replace(base, duration=4.0, burst_at=1.0, burst_duration=2.0)
            bounds, budgets = (None, 4), (None, 2.0)
        else:
            bounds = (None, 4, 8, 16, 64)
            budgets = (None, 2.0, 10.0, 50.0)
        rows = run_ablation(base, bounds, budgets)
        header = (
            f"{'bound':>6} {'budget':>7} {'goodput/s':>10} {'p50':>8} "
            f"{'p99':>8} {'shed':>6} {'busy':>6} {'gave_up':>8}"
        )
        print(header, flush=True)
        for row in rows:
            print(
                f"{str(row['admission_bound']):>6} {str(row['retry_budget']):>7} "
                f"{row['goodput_per_s']:>10.1f} {row['latency_p50']:>8.3f} "
                f"{row['latency_p99']:>8.3f} "
                f"{row['shed']:>6} {row['busy']:>6} {row['gave_up']:>8}",
                flush=True,
            )

    if args.json:
        out = {"config": vars(args), "summary": summary}
        if rows is not None:
            out["ablation"] = rows
        with open(args.json, "w") as fh:
            json.dump(out, fh, indent=2, sort_keys=True)
        print(f"[overload] wrote {args.json}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
