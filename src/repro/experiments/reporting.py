"""Text rendering of experiment results, in the shape the paper reports
them (rows per figure/table, time series downsampled for the terminal)."""

from __future__ import annotations


def _fmt(value, width=10, decimals=1):
    if isinstance(value, float):
        return f"{value:>{width}.{decimals}f}"
    return f"{value!s:>{width}}"


def render_table(rows: list[dict], columns: list[tuple], title: str = "") -> str:
    """``columns`` is a list of (key, header, decimals)."""
    lines = []
    if title:
        lines.append(title)
    header = " ".join(f"{h:>12}" for _, h, _ in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            " ".join(
                _fmt(row.get(key, ""), width=12, decimals=dec)
                for key, _, dec in columns
            )
        )
    return "\n".join(lines)


def downsample(series: list[tuple], n_points: int = 24) -> list[tuple]:
    """Average a (t, v) series into ``n_points`` coarse buckets."""
    if not series or len(series) <= n_points:
        return list(series)
    step = len(series) / n_points
    out = []
    i = 0.0
    while int(i) < len(series):
        chunk = series[int(i): int(i + step)] or series[int(i): int(i) + 1]
        t0 = chunk[0][0]
        out.append((t0, sum(v for _, v in chunk) / len(chunk)))
        i += step
    return out


def render_series(series: list[tuple], label: str, unit: str = "", width: int = 48) -> str:
    """A terminal sparkline-style rendering of a time series."""
    points = downsample(series, width // 2)
    if not points:
        return f"{label}: (no data)"
    peak = max(v for _, v in points) or 1.0
    bars = "".join("▁▂▃▄▅▆▇█"[min(7, int(8 * v / peak))] for _, v in points)
    return f"{label:<28} peak={peak:>9.1f}{unit}  {bars}"


def render_latency_breakdown(breakdown: dict, slowest: int = 3) -> str:
    """Render a ``repro.obs.analyze.stage_breakdown`` dict (as carried on
    :attr:`RunResult.stage_breakdown` for traced runs) — critical-path
    attribution first, since those shares sum to the end-to-end latency."""
    if not breakdown or not breakdown.get("traces"):
        return "latency breakdown: (no completed traces)"
    e2e = breakdown["end_to_end"]
    ms = 1e3
    lines = [
        f"latency breakdown over {breakdown['traces']} traces "
        f"(end-to-end mean={e2e['mean'] * ms:.2f} ms  "
        f"p50={e2e['p50'] * ms:.2f}  p95={e2e['p95'] * ms:.2f}  "
        f"p99={e2e['p99'] * ms:.2f})",
        render_table(
            [
                {**row, "mean": row["mean"] * ms, "p50": row["p50"] * ms,
                 "p95": row["p95"] * ms, "total": row["total"] * ms}
                for row in breakdown["critical"]
            ],
            [
                ("stage", "stage", 0),
                ("count", "traces", 0),
                ("mean", "mean ms", 3),
                ("p50", "p50 ms", 3),
                ("p95", "p95 ms", 3),
                ("total", "total ms", 1),
            ],
            title="critical-path attribution (shares sum to end-to-end)",
        ),
    ]
    for row in breakdown["slowest"][:slowest]:
        worst = max(row["critical"], key=row["critical"].get, default="?")
        lines.append(
            f"  slow trace {row['trace']}: {row['latency'] * ms:.2f} ms, "
            f"mostly {worst}"
        )
    return "\n".join(lines)


def render_fig2(result: dict) -> str:
    lines = [
        "Figure 2 — repartitioning impact (TPC-C, random initial placement)",
        render_series(result["throughput"], "throughput (cmds/s)"),
        render_series(result["objects_exchanged"], "objects exchanged /s"),
        render_series(
            [(t, 100 * f) for t, f in result["multi_partition_fraction"]],
            "multi-partition (%)",
        ),
        f"plans applied at t = {['%.0fs' % t for t in result['plan_times']]}",
        f"completed={result['completed']} failed={result['failed']}",
    ]
    return "\n".join(lines)


def render_fig3(result: dict) -> str:
    return render_table(
        result["rows"],
        [
            ("partitions", "partitions", 0),
            ("dynastar_tput", "DynaStar", 1),
            ("ssmr_star_tput", "S-SMR*", 1),
        ],
        title="Figure 3 — TPC-C peak throughput (cmds/s) vs partitions",
    )


def render_fig4(result: dict) -> str:
    return render_table(
        result["rows"],
        [
            ("mix", "mix", 0),
            ("partitions", "parts", 0),
            ("dynastar_tput", "DS tput", 1),
            ("ssmr_star_tput", "S* tput", 1),
            ("dynastar_lat_mean_ms", "DS lat ms", 2),
            ("ssmr_star_lat_mean_ms", "S* lat ms", 2),
            ("dynastar_lat_p95_ms", "DS p95", 2),
            ("ssmr_star_lat_p95_ms", "S* p95", 2),
        ],
        title="Figure 4 — social network throughput / latency",
    )


def render_fig5(result: dict) -> str:
    lines = ["Figure 5 — latency CDFs (ms at p50 / p80 / p99)"]
    for (mode, k), cdf in sorted(result["cdfs"].items(), key=repr):
        def at(frac):
            for value, cum in cdf:
                if cum >= frac:
                    return value * 1e3
            return cdf[-1][0] * 1e3 if cdf else float("nan")

        lines.append(
            f"  {mode:<10} k={k}:  p50={at(0.5):7.2f}  p80={at(0.8):7.2f}  p99={at(0.99):7.2f}"
        )
    return "\n".join(lines)


def render_fig6(result: dict) -> str:
    lines = [
        f"Figure 6 — dynamic workload (celebrity at t={result['event_time']:.0f}s)"
    ]
    for mode in ("dynastar", "ssmr_star"):
        data = result[mode]
        lines.append(f"  [{mode}]")
        lines.append("  " + render_series(data["throughput"], "throughput (cmds/s)"))
        lines.append(
            "  "
            + render_series(
                [(t, 100 * f) for t, f in data["multi_fraction"]],
                "multi-partition (%)",
            )
        )
        if data["plan_times"]:
            lines.append(
                f"  plans at t = {['%.0fs' % t for t in data['plan_times']]}"
            )
    return "\n".join(lines)


def render_table1(result: dict) -> str:
    return render_table(
        result["rows"],
        [
            ("partition", "partition", 0),
            ("tput", "tput", 1),
            ("multipart_per_sec", "m-part/s", 1),
            ("objects_per_sec", "objects/s", 1),
            ("owned_nodes", "nodes", 0),
        ],
        title="Table 1 — per-partition load at peak throughput",
    )


def render_fig7(result: dict) -> str:
    return render_table(
        result["rows"],
        [
            ("vertices", "vertices", 0),
            ("edges", "edges", 0),
            ("seconds", "seconds", 2),
            ("peak_mb", "peak MB", 1),
            ("levels", "levels", 0),
        ],
        title=f"Figure 7 — partitioner scaling (k={result['k']})",
    )


def render_fig8(result: dict) -> str:
    return "\n".join(
        [
            "Figure 8 — oracle query load over time",
            render_series(result["oracle_queries"], "oracle queries/s"),
            f"repartition requested at t={result['repartition_time']:.0f}s, "
            f"plans applied at {['%.0fs' % t for t in result['plan_times']]}",
            f"total queries: {result['total_queries']}",
        ]
    )
