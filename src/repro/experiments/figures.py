"""One function per paper table/figure.

Every function is deterministic given its ``seed`` and returns a plain
dict of series/rows; ``repro.experiments.reporting`` renders them like
the paper presents them.  Default arguments are laptop-scale — crank
``duration`` / graph sizes / partition lists toward the paper's setup
when you have the time budget.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from typing import Optional

from repro.experiments.harness import (
    DEFAULT_SERVICE_TIME,
    build_chirper_system,
    build_tpcc_system,
    make_social_graph,
    run_clients,
    social_optimized_placement,
    steady_rate,
    tpcc_workload,
    warehouse_aligned_placement,
)
from repro.partitioning import PartitionerStats, WorkloadGraph, partition_graph
from repro.workloads.social import CelebrityEvent, ChirperWorkload
from repro.workloads.tpcc import TPCCConfig


def _merge_partition_series(system, name: str) -> list:
    """Sum the per-partition labeled TimeSeries ``name{partition=pX}``
    into one series."""
    merged: dict[float, float] = {}
    for partition in system.partition_names:
        series = system.monitor.series(name, partition=partition)
        for t, v in series.buckets():
            merged[t] = merged.get(t, 0.0) + v
    return sorted(merged.items())


# ---------------------------------------------------------------------------
# Figure 2 — the impact of graph repartitioning (TPC-C, 4 partitions)
# ---------------------------------------------------------------------------


def fig2_repartitioning(
    duration: float = 120.0,
    n_partitions: int = 4,
    seed: int = 1,
    clients_per_partition: int = 6,
    repartition_threshold: int = 25000,
    tpcc_config: Optional[TPCCConfig] = None,
) -> dict:
    """TPC-C with *random* initial placement: low throughput and ~100 %
    multi-partition commands until the oracle repartitions, then both
    recover (paper Fig 2)."""
    tpcc_config = tpcc_config or TPCCConfig(
        n_warehouses=n_partitions, customers_per_district=10, n_items=60
    )
    system, tpcc_config = build_tpcc_system(
        n_partitions,
        mode="dynastar",
        placement="random",
        seed=seed,
        tpcc_config=tpcc_config,
        repartition_threshold=repartition_threshold,
    )
    workload = tpcc_workload(tpcc_config, seed=seed + 1)
    result = run_clients(
        system, workload, clients_per_partition * n_partitions, duration
    )
    throughput = system.monitor.series("completed").buckets()
    objects = _merge_partition_series(system, "objects")
    multi = _merge_partition_series(system, "multipart")
    tput_by_t = dict(throughput)
    multi_fraction = [
        (t, (m / tput_by_t[t]) if tput_by_t.get(t) else 0.0) for t, m in multi
    ]
    return {
        "throughput": throughput,
        "objects_exchanged": objects,
        "multi_partition_fraction": multi_fraction,
        "plan_times": [t for t, _ in system.monitor.series("plans").buckets() if _ > 0],
        "completed": result.completed,
        "failed": result.failed,
        "counters": result.counters,
        "duration": duration,
    }


# ---------------------------------------------------------------------------
# Figure 3 — TPC-C scalability (DynaStar vs S-SMR*)
# ---------------------------------------------------------------------------


def fig3_tpcc_scalability(
    partition_counts=(1, 2, 4, 8),
    duration: float = 30.0,
    seed: int = 1,
    clients_per_partition: int = 6,
    tpcc_scale: Optional[dict] = None,
) -> dict:
    """Peak throughput vs number of partitions, one warehouse per
    partition (state grows with partitions).  DynaStar starts random and
    repartitions; S-SMR* gets the warehouse-aligned placement up front.
    DynaStar throughput is measured after convergence (second half)."""
    tpcc_scale = tpcc_scale or {"customers_per_district": 10, "n_items": 60}
    rows = []
    for k in partition_counts:
        config = TPCCConfig(n_warehouses=k, **tpcc_scale)
        n_clients = clients_per_partition * k

        system, _ = build_tpcc_system(
            k,
            mode="dynastar",
            placement="random",
            seed=seed,
            tpcc_config=config,
            repartition_threshold=4000 * k,
        )
        res_dyna = run_clients(
            system, tpcc_workload(config, seed + 1), n_clients, duration,
            warmup=duration / 2,
        )

        config2 = TPCCConfig(n_warehouses=k, **tpcc_scale)
        system2, _ = build_tpcc_system(
            k,
            mode="ssmr",
            placement=warehouse_aligned_placement(config2),
            seed=seed,
            tpcc_config=config2,
        )
        res_ssmr = run_clients(
            system2, tpcc_workload(config2, seed + 1), n_clients, duration,
            warmup=duration / 2,
        )
        rows.append(
            {
                "partitions": k,
                "dynastar_tput": res_dyna.throughput,
                "ssmr_star_tput": res_ssmr.throughput,
                "dynastar_completed": res_dyna.completed,
                "ssmr_star_completed": res_ssmr.completed,
            }
        )
    return {"rows": rows, "duration": duration}


# ---------------------------------------------------------------------------
# Figure 4 — social network throughput & latency vs partitions
# ---------------------------------------------------------------------------


def fig4_social_throughput(
    partition_counts=(1, 2, 4, 8),
    mixes=("timeline", "mix"),
    n_users: int = 1500,
    duration: float = 40.0,
    seed: int = 1,
    clients_per_partition: int = 6,
) -> dict:
    """Peak throughput and latency (~75 % of peak load; mean + p95) for
    timeline-only and mixed workloads, DynaStar vs S-SMR* (paper Fig 4)."""
    rows = []
    for mix in mixes:
        for k in partition_counts:
            n_clients = clients_per_partition * k
            row = {"mix": mix, "partitions": k}
            for mode in ("dynastar", "ssmr_star"):
                graph = make_social_graph(n_users, seed=seed + 10)
                if mode == "dynastar":
                    system = build_chirper_system(
                        k,
                        graph,
                        mode="dynastar",
                        placement="random",
                        seed=seed,
                        repartition_threshold=4000 * k,
                    )
                else:
                    system = build_chirper_system(
                        k,
                        graph,
                        mode="ssmr",
                        placement=social_optimized_placement(graph, k, seed=seed),
                        seed=seed,
                    )
                workload = ChirperWorkload(graph, mix=mix, seed=seed + 2)
                peak = run_clients(
                    system, workload, n_clients, duration, warmup=duration / 2
                )
                row[f"{mode}_tput"] = peak.throughput

                # latency at ~75% of saturating load: rerun with 3/4 clients
                graph2 = make_social_graph(n_users, seed=seed + 10)
                if mode == "dynastar":
                    system2 = build_chirper_system(
                        k, graph2, mode="dynastar", placement="random",
                        seed=seed, repartition_threshold=4000 * k,
                    )
                else:
                    system2 = build_chirper_system(
                        k, graph2, mode="ssmr",
                        placement=social_optimized_placement(graph2, k, seed=seed),
                        seed=seed,
                    )
                workload2 = ChirperWorkload(graph2, mix=mix, seed=seed + 2)
                res75 = run_clients(
                    system2,
                    workload2,
                    max(1, (3 * n_clients) // 4),
                    duration,
                    warmup=duration / 2,
                )
                row[f"{mode}_lat_mean_ms"] = res75.latency_mean * 1e3
                row[f"{mode}_lat_p95_ms"] = res75.latency_p95 * 1e3
            rows.append(row)
    return {"rows": rows, "duration": duration, "n_users": n_users}


# ---------------------------------------------------------------------------
# Figure 5 — latency CDFs (mix workload)
# ---------------------------------------------------------------------------


def fig5_latency_cdf(
    partition_counts=(2, 4, 8),
    n_users: int = 1500,
    duration: float = 30.0,
    seed: int = 1,
    clients_per_partition: int = 4,
) -> dict:
    """Latency CDFs of the mixed workload for DynaStar vs S-SMR*."""
    cdfs = {}
    for k in partition_counts:
        for mode in ("dynastar", "ssmr_star"):
            graph = make_social_graph(n_users, seed=seed + 10)
            if mode == "dynastar":
                system = build_chirper_system(
                    k, graph, mode="dynastar", placement="random",
                    seed=seed, repartition_threshold=4000 * k,
                )
            else:
                system = build_chirper_system(
                    k, graph, mode="ssmr",
                    placement=social_optimized_placement(graph, k, seed=seed),
                    seed=seed,
                )
            workload = ChirperWorkload(graph, mix="mix", seed=seed + 2)
            run_clients(system, workload, clients_per_partition * k, duration)
            cdfs[(mode, k)] = system.monitor.histogram("latency").cdf(points=50)
    return {"cdfs": cdfs, "duration": duration}


# ---------------------------------------------------------------------------
# Figure 6 — dynamic workload (celebrity event)
# ---------------------------------------------------------------------------


def fig6_dynamic_workload(
    n_partitions: int = 4,
    n_users: int = 1200,
    duration: float = 240.0,
    event_time: float = 120.0,
    seed: int = 1,
    clients: int = 16,
    repartition_threshold: int = 8000,
) -> dict:
    """An evolving network: a celebrity appears at ``event_time``; users
    flock to follow them.  DynaStar repartitions and recovers; S-SMR*'s
    static placement degrades (paper Fig 6)."""
    results = {}
    for mode in ("dynastar", "ssmr_star"):
        graph = make_social_graph(n_users, seed=seed + 10)
        event = CelebrityEvent(time=event_time, celebrity=n_users + 7)
        if mode == "dynastar":
            system = build_chirper_system(
                n_partitions, graph, mode="dynastar", placement="random",
                seed=seed, repartition_threshold=repartition_threshold,
            )
        else:
            system = build_chirper_system(
                n_partitions, graph, mode="ssmr",
                placement=social_optimized_placement(graph, n_partitions, seed=seed),
                seed=seed,
            )
        workload = ChirperWorkload(graph, mix="mix", seed=seed + 2, event=event)
        run_clients(system, workload, clients, duration)
        tput = system.monitor.series("completed").buckets()
        multi = _merge_partition_series(system, "multipart")
        objects = _merge_partition_series(system, "objects")
        tput_by_t = dict(tput)
        results[mode] = {
            "throughput": tput,
            "multi_fraction": [
                (t, m / tput_by_t[t] if tput_by_t.get(t) else 0.0)
                for t, m in multi
            ],
            "objects_exchanged": objects,
            "plan_times": [
                t for t, v in system.monitor.series("plans").buckets() if v > 0
            ],
        }
    results["event_time"] = event_time
    results["duration"] = duration
    return results


# ---------------------------------------------------------------------------
# Table 1 — per-partition load at peak throughput
# ---------------------------------------------------------------------------


def table1_partition_load(
    n_partitions: int = 4,
    n_users: int = 1500,
    duration: float = 40.0,
    seed: int = 1,
    clients_per_partition: int = 6,
) -> dict:
    """Average per-partition throughput, multi-partition commands/s and
    exchanged objects/s at peak (paper Table 1: the load is skewed even
    though objects are evenly spread)."""
    graph = make_social_graph(n_users, seed=seed + 10)
    system = build_chirper_system(
        n_partitions, graph, mode="dynastar", placement="random",
        seed=seed, repartition_threshold=1200 * n_partitions,
    )
    workload = ChirperWorkload(graph, mix="mix", seed=seed + 2)
    run_clients(system, workload, clients_per_partition * n_partitions, duration)
    warmup = duration / 2
    rows = []
    for name in system.partition_names:
        rows.append(
            {
                "partition": name,
                "tput": steady_rate(
                    system.monitor.series("tput", partition=name).buckets(),
                    warmup,
                    duration,
                ),
                "multipart_per_sec": steady_rate(
                    system.monitor.series("multipart", partition=name).buckets(),
                    warmup,
                    duration,
                ),
                "objects_per_sec": steady_rate(
                    system.monitor.series("objects", partition=name).buckets(),
                    warmup,
                    duration,
                ),
                "owned_nodes": len(system.servers(name)[0].owned_nodes),
            }
        )
    rows.sort(key=lambda r: -r["tput"])
    return {"rows": rows, "duration": duration}


# ---------------------------------------------------------------------------
# Figure 7 — partitioner (METIS-equivalent) CPU and memory scaling
# ---------------------------------------------------------------------------


def fig7_partitioner_scaling(
    sizes=(10_000, 30_000, 100_000),
    k: int = 8,
    seed: int = 1,
    avg_degree: int = 5,
) -> dict:
    """Partitioner wall-clock time and peak memory vs graph size; the
    paper shows METIS scaling linearly to 10 M vertices — we verify the
    same linear shape on our multilevel implementation."""
    import random as _random

    rows = []
    for n in sizes:
        rng = _random.Random(seed)
        graph = WorkloadGraph()
        for v in range(1, n):
            for _ in range(avg_degree):
                graph.add_edge(v, rng.randrange(v))  # preferential-ish
        gc.collect()
        tracemalloc.start()
        stats = PartitionerStats()
        started = time.perf_counter()
        partition_graph(graph, k, seed=seed, stats=stats)
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rows.append(
            {
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "seconds": elapsed,
                "peak_mb": peak / 1e6,
                "levels": stats.levels,
                "final_cut": stats.final_cut,
            }
        )
    return {"rows": rows, "k": k}


# ---------------------------------------------------------------------------
# Figure 8 — oracle load over time
# ---------------------------------------------------------------------------


def fig8_oracle_load(
    n_partitions: int = 4,
    n_users: int = 1200,
    duration: float = 160.0,
    repartition_time: float = 80.0,
    seed: int = 1,
    clients: int = 16,
) -> dict:
    """Steady state: the clients have everything cached and the oracle is
    idle.  A repartitioning invalidates the caches: the oracle sees a
    query spike that decays back to ~zero (paper Fig 8)."""
    graph = make_social_graph(n_users, seed=seed + 10)
    system = build_chirper_system(
        n_partitions, graph, mode="dynastar", placement="random",
        seed=seed, repartition_threshold=10**9,  # only the manual plan
    )
    workload = ChirperWorkload(graph, mix="mix", seed=seed + 2)
    oracle0 = system.oracle_replicas()[0]
    system.sim.schedule_at(repartition_time, oracle0.request_repartition)
    run_clients(system, workload, clients, duration)
    queries = system.monitor.series("oracle_queries").buckets()
    return {
        "oracle_queries": queries,
        "repartition_time": repartition_time,
        "plan_times": [
            t for t, v in system.monitor.series("plans").buckets() if v > 0
        ],
        "duration": duration,
        "total_queries": system.monitor.counters().get("oracle_queries_total", 0),
    }
