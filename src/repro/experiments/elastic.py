"""Elastic split/merge scenario: a seeded hotspot that splits a
partition at runtime, then a traffic shift that merges the idle remnant
back away.

Phase 1 concentrates ~90% of the offered load on the keys initially
homed at one partition; its windowed access share blows through the
split factor and the oracle provisions a fresh partition group online,
handing off half the hot keys through the two-phase reconfiguration
protocol.  Phase 2 shifts every client to the *other* partition's keys;
the split halves go idle, fall below the merge factor, and the lighter
one is drained and retired.  The run demonstrably changes the partition
count in both directions — the CI elastic smoke asserts exactly that via
``repro.obs.report --check-reconfig``.

Usage::

    python -m repro.experiments.elastic                   # one summary
    python -m repro.experiments.elastic --quick           # CI smoke
    python -m repro.experiments.elastic --chaos           # + reconfig faults
    python -m repro.experiments.elastic --check-determinism
    python -m repro.experiments.elastic --check-consistency
    python -m repro.experiments.elastic --obs DIR         # export artifacts

``--check-determinism`` runs the traced scenario twice with elasticity
enabled *and* twice with it disabled, and exits nonzero unless each pair
exports byte-identical trace JSONL and metric dumps.  ``--chaos`` arms
the three reconfiguration fault kinds (``crash_mid_split``,
``crash_oracle_during_reconfig``, ``lose_cutover_msgs``) across the
expected reconfig windows; each resolves applicability at fire time, so
the schedule is safe to sprinkle densely.
"""

from __future__ import annotations

import argparse
import io
import json
import random
import sys
from dataclasses import dataclass, replace

from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import Workload
from repro.experiments.harness import export_run_artifacts
from repro.faults import FaultSchedule
from repro.faults.injector import ChaosInjector
from repro.obs import audit as audit_mod
from repro.sim.latency import ConstantLatency
from repro.smr import Command, KeyValueApp


class PhasedHotspotWorkload(Workload):
    """Two-phase seeded key mix.

    Before ``shift_at`` (virtual time), ~90% of commands hit the hot key
    set (with occasional intra-hot transfers, so the workload graph has
    edges for the split bisection to respect); after it, every command
    hits the cold set only.  Phases are keyed off the client's virtual
    clock, which is deterministic under the seeded simulator.
    """

    def __init__(self, hot_keys, cold_keys, shift_at: float, seed: int, client_tag: str):
        self.hot_keys = list(hot_keys)
        self.cold_keys = list(cold_keys)
        self.all_keys = self.hot_keys + self.cold_keys
        self.shift_at = shift_at
        self.rng = random.Random(seed)
        self.client_tag = client_tag
        self._seq = 0
        self.failures: list[tuple[str, str]] = []

    def _hot_command(self, uid: str, i: int) -> Command:
        roll = self.rng.random()
        if roll < 0.10:
            src = self.rng.choice(self.hot_keys)
            dst = self.rng.choice(self.hot_keys)
            if src == dst:
                return Command(uid, "read", (src,))
            return Command(uid, "transfer", (src, dst, 1))
        if roll < 0.95:
            key = self.rng.choice(self.hot_keys)
            if roll < 0.50:
                return Command(uid, "read", (key,))
            return Command(uid, "write", (key, i))
        key = self.rng.choice(self.all_keys)
        return Command(uid, "read", (key,))

    def _cold_command(self, uid: str, i: int) -> Command:
        key = self.rng.choice(self.cold_keys)
        if self.rng.random() < 0.5:
            return Command(uid, "read", (key,))
        return Command(uid, "write", (key, i))

    def next_command(self, client) -> Command:
        i = self._seq
        self._seq += 1
        uid = f"{self.client_tag}:{i}"
        if client.now < self.shift_at:
            return self._hot_command(uid, i)
        return self._cold_command(uid, i)

    def on_command_failed(self, client, command, reason) -> None:
        self.failures.append((command.uid, reason))


@dataclass(frozen=True)
class ElasticScenario:
    """One split-then-merge run, fully seeded."""

    seed: int = 21
    n_keys: int = 24
    n_clients: int = 12
    duration: float = 16.0
    #: Clients move from the hot mix to the cold mix at this time.
    shift_at: float = 8.0
    service_time: float = 0.001
    think_time: float = 0.02
    hint_period: float = 0.25
    #: Elastic policy knobs — scaled to the run length so the split
    #: fires within phase 1 and the merge within phase 2.
    eval_interval: int = 150
    cooldown: int = 300
    split_factor: float = 1.5
    merge_factor: float = 0.25
    max_partitions: int = 4
    min_partitions: int = 2
    elastic: bool = True
    idempotency_keys: bool = True
    chaos: bool = False
    tracing: bool = False


def chaos_schedule(scenario: ElasticScenario) -> FaultSchedule:
    """A dense comb of the three reconfiguration fault kinds across the
    split span (early phase 1) and the merge span (early phase 2).

    Each reconfig window (decision → cutover → drain) is only tens of
    milliseconds wide and its exact position shifts under the chaos
    itself, so the schedule cannot aim single shots.  Instead it fires
    attempts on a fine grid; every kind resolves applicability at fire
    time and no-ops when nothing is in flight, so the ticks that land
    inside a window bite and the rest cost nothing.  Crash ticks pair
    with a ``recover_leader`` 0.3s later (which recovers everything the
    earlier ticks took down), bounding any outage."""
    schedule = FaultSchedule()
    spans = (
        (0.3, 1.8),
        (scenario.shift_at + 0.2, scenario.shift_at + 2.2),
    )
    # Reconfig decisions ride hint deliveries, which land a few ms after
    # each hint_period multiple — offset the comb so ticks fall inside
    # the windows instead of straddling them.
    offset = 0.0075
    for lo, hi in spans:
        ticks = int((hi - lo) / 0.05)
        for i in range(ticks):
            schedule.at(
                round(lo + offset + i * 0.05, 4),
                "lose_cutover_msgs", 0.25, 0.25,
            )
        ticks = int((hi - lo) / 0.25)
        for i in range(ticks):
            t = lo + offset + i * 0.25
            schedule.at(round(t, 4), "crash_oracle_during_reconfig")
            schedule.at(round(t + 0.3, 4), "recover_leader", "oracle")
            # Alternate the mid-split victim between the initial
            # partitions; whichever is actually mid-handoff gets hit.
            group = f"p{i % 2}"
            schedule.at(round(t + 0.01, 4), "crash_mid_split", group)
            schedule.at(round(t + 0.32, 4), "recover_leader", group)
    return schedule


def build_scenario(scenario: ElasticScenario):
    """System + clients (+ armed injector when ``chaos``) for one run."""
    app = KeyValueApp({f"k{i:02d}": i for i in range(scenario.n_keys)})
    system = DynaStarSystem(
        app,
        SystemConfig(
            n_partitions=2,
            seed=scenario.seed,
            latency=ConstantLatency(0.001),
            repartition_enabled=False,
            service_time=scenario.service_time,
            hint_period=scenario.hint_period,
            client_think_time=scenario.think_time,
            # Retransmit timeouts: chaos runs drop replies, and a client
            # with no timeout would wait on the lost reply forever.
            client_timeout=0.25,
            client_timeout_cap=2.0,
            audit=True,
            # Health sampling feeds the edge-cut / imbalance trajectory
            # in the exported artifacts (pure observer: trace-neutral).
            health_sample_period=0.5,
            elastic_enabled=scenario.elastic,
            elastic_split_factor=scenario.split_factor,
            elastic_merge_factor=scenario.merge_factor,
            elastic_eval_interval=scenario.eval_interval,
            elastic_cooldown=scenario.cooldown,
            max_partitions=scenario.max_partitions,
            min_partitions=scenario.min_partitions,
            idempotency_keys=scenario.idempotency_keys,
            tracing=scenario.tracing,
        ),
    )
    # The hot set is whatever landed on p0 at placement time — computed
    # from the seeded initial assignment, so it is run-to-run stable.
    hot, cold = [], []
    for i in range(scenario.n_keys):
        var = f"k{i:02d}"
        node = app.graph_node_of(var)
        (hot if system.initial_assignment[node] == "p0" else cold).append(var)
    if not hot or not cold:  # degenerate placement; split by index
        keys = [f"k{i:02d}" for i in range(scenario.n_keys)]
        hot, cold = keys[::2], keys[1::2]
    injector = None
    if scenario.chaos:
        injector = ChaosInjector(system, chaos_schedule(scenario)).arm()
    workloads = []
    for i in range(scenario.n_clients):
        workload = PhasedHotspotWorkload(
            hot, cold, scenario.shift_at,
            seed=scenario.seed * 1000 + i, client_tag=f"c{i}",
        )
        workloads.append(workload)
        system.add_client(workload, stop_at=scenario.duration)
    return system, injector, workloads


def summarize(system, workloads) -> dict:
    """Join the run's reconfig lifecycle into one summary dict."""
    monitor = system.monitor
    counters = monitor.counters()
    records = system.audit.records
    decisions = [r for r in records if r["kind"] == audit_mod.RECONFIG_DECISION]
    cutovers = [r for r in records if r["kind"] == audit_mod.RECONFIG_CUTOVER]
    retired = [r for r in records if r["kind"] == audit_mod.RECONFIG_RETIRED]
    reconfig_counters = monitor.labeled_counters("reconfig")
    return {
        "completed": system.total_completed(),
        "failed": system.total_failed(),
        "workload_failures": sum(len(w.failures) for w in workloads),
        "stuck_clients": sum(1 for c in system.clients if not c.done),
        "splits_decided": sum(1 for r in decisions if r["op"] == "split"),
        "merges_decided": sum(1 for r in decisions if r["op"] == "merge"),
        "cutovers": len(cutovers),
        "partitions_retired": len(retired),
        "final_partitions": len(system.partition_names),
        "partition_names": sorted(system.partition_names),
        "topology_changes": reconfig_counters.get("topology_change", 0),
        "drain_nacked": sum(
            v for k, v in reconfig_counters.items()
            if isinstance(k, tuple) and "nacked" in k
        ),
        "drain_redirected": sum(
            v for k, v in reconfig_counters.items()
            if isinstance(k, tuple) and "redirected" in k
        ),
        "faults_applied": sum(
            v for k, v in counters.items() if k.startswith("fault{")
        ),
    }


def run_scenario(scenario: ElasticScenario):
    """Run one scenario to completion; returns (summary, system)."""
    system, _injector, workloads = build_scenario(scenario)
    # Drain well past stop_at so every in-flight command (and drain
    # announcement) resolves.
    system.run(until=scenario.duration + 30.0)
    return summarize(system, workloads), system


def fingerprint(scenario: ElasticScenario) -> tuple[str, str]:
    """(trace_jsonl, metrics_json) of one traced run — the determinism
    gate compares two of these byte-for-byte."""
    traced = replace(scenario, tracing=True)
    system, _injector, _workloads = build_scenario(traced)
    system.run(until=traced.duration + 30.0)
    buf = io.StringIO()
    system.tracer.export_jsonl(buf)
    metrics = json.dumps(system.monitor.snapshot(), sort_keys=True)
    return buf.getvalue(), metrics


def verify_consistency(system) -> list[str]:
    """Replica agreement within every live partition, variable
    conservation across them, and emptiness of retired stores."""
    problems = []
    for partition in system.partition_names:
        replicas = system.servers(partition)
        baseline = dict(replicas[0].store.items())
        for replica in replicas[1:]:
            if dict(replica.store.items()) != baseline:
                problems.append(f"replica state divergence in {partition}")
                break
    merged = system.all_store_variables()
    expected = set(system.app.initial_variables())
    if set(merged) != expected:
        missing = expected - set(merged)
        extra = set(merged) - expected
        problems.append(
            f"variable conservation violated (missing={sorted(missing)}, "
            f"extra={sorted(extra)})"
        )
    elastic = getattr(system, "elastic", None)
    if elastic is not None:
        for name in elastic.retired:
            group = system.directory.groups.get(name)
            if group is None:
                continue
            for replica in group.replicas:
                if not replica.crashed and dict(replica.store.items()):
                    problems.append(f"retired partition {name} still owns state")
                    break
    return problems


def check_determinism(scenario: ElasticScenario) -> list[str]:
    """Two traced runs per elasticity setting must be byte-identical."""
    failures = []
    for elastic in (True, False):
        variant = replace(scenario, elastic=elastic)
        trace_a, metrics_a = fingerprint(variant)
        trace_b, metrics_b = fingerprint(variant)
        tag = "elastic" if elastic else "static"
        if trace_a != trace_b or metrics_a != metrics_b:
            failures.append(f"{tag}: runs diverged")
        elif not trace_a:
            failures.append(f"{tag}: empty trace — gate is vacuous")
        else:
            print(
                f"[elastic] determinism ({tag}): identical, "
                f"{trace_a.count(chr(10))} trace records",
                flush=True,
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Elastic split/merge scenario and determinism gate."
    )
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--duration", type=float, default=16.0)
    parser.add_argument("--quick", action="store_true",
                        help="short run for CI smoke")
    parser.add_argument("--chaos", action="store_true",
                        help="fire the reconfiguration fault kinds during "
                             "the split and merge windows")
    parser.add_argument("--check-determinism", action="store_true",
                        help="two traced runs (elastic on and off) must "
                             "each be byte-identical")
    parser.add_argument("--check-consistency", action="store_true",
                        help="also verify replica agreement, variable "
                             "conservation, and retired-store emptiness")
    parser.add_argument("--check-reconfig", action="store_true",
                        help="exit nonzero unless the run both split and "
                             "merged (partition count changed twice)")
    parser.add_argument("--obs", default=None, metavar="DIR",
                        help="export run artifacts for repro.obs.report")
    parser.add_argument("--json", default=None,
                        help="write the summary to this path")
    args = parser.parse_args(argv)

    scenario = ElasticScenario(
        seed=args.seed,
        duration=8.0 if args.quick else args.duration,
        shift_at=4.0 if args.quick else args.duration / 2.0,
        chaos=args.chaos,
    )

    if args.check_determinism:
        print("[elastic] determinism gate: 2x2 runs ...", flush=True)
        failures = check_determinism(scenario)
        if failures:
            for failure in failures:
                print(f"[elastic] DETERMINISM: {failure}", file=sys.stderr)
            return 1

    summary, system = run_scenario(scenario)
    print(json.dumps(summary, indent=2, sort_keys=True), flush=True)
    if summary["stuck_clients"]:
        print("[elastic] stuck clients detected", file=sys.stderr)
        return 1
    if args.check_consistency:
        problems = verify_consistency(system)
        if problems:
            for problem in problems:
                print(f"[elastic] {problem}", file=sys.stderr)
            return 1
        print("[elastic] consistency: ok", flush=True)
    if args.check_reconfig:
        problems = []
        if not summary["splits_decided"]:
            problems.append("no split decided")
        if not summary["merges_decided"]:
            problems.append("no merge decided")
        if summary["topology_changes"] < 2:
            problems.append("partition count changed fewer than 2 times")
        if problems:
            for problem in problems:
                print(f"[elastic] check-reconfig: {problem}", file=sys.stderr)
            return 1
        print("[elastic] check-reconfig: ok", flush=True)
    if args.obs:
        written = export_run_artifacts(system, args.obs)
        print(f"[elastic] wrote {sorted(written)} to {args.obs}", flush=True)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"config": vars(args), "summary": summary}, fh,
                      indent=2, sort_keys=True)
        print(f"[elastic] wrote {args.json}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
