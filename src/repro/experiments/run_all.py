"""Regenerate and print every paper figure/table in one go.

Usage::

    python -m repro.experiments.run_all            # laptop scale (~15 min)
    python -m repro.experiments.run_all --quick    # smoke scale (~3 min)

The per-figure functions in :mod:`repro.experiments.figures` take scale
parameters directly if you want to push any single experiment toward the
paper's deployment size.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import figures, reporting


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller, faster scales"
    )
    args = parser.parse_args()
    quick = args.quick

    plan = [
        (
            "fig2",
            lambda: figures.fig2_repartitioning(
                duration=40.0 if quick else 90.0
            ),
            reporting.render_fig2,
        ),
        (
            "fig3",
            lambda: figures.fig3_tpcc_scalability(
                partition_counts=(1, 2, 4) if quick else (1, 2, 4, 8),
                duration=20.0 if quick else 30.0,
            ),
            reporting.render_fig3,
        ),
        (
            "fig4",
            lambda: figures.fig4_social_throughput(
                partition_counts=(2, 4) if quick else (1, 2, 4, 8),
                n_users=600 if quick else 1500,
                duration=20.0 if quick else 40.0,
            ),
            reporting.render_fig4,
        ),
        (
            "fig5",
            lambda: figures.fig5_latency_cdf(
                partition_counts=(2, 4) if quick else (2, 4, 8),
                n_users=600 if quick else 1500,
                duration=16.0 if quick else 30.0,
            ),
            reporting.render_fig5,
        ),
        (
            "fig6",
            lambda: figures.fig6_dynamic_workload(
                n_users=600 if quick else 1200,
                duration=100.0 if quick else 240.0,
                event_time=50.0 if quick else 120.0,
            ),
            reporting.render_fig6,
        ),
        (
            "table1",
            lambda: figures.table1_partition_load(
                n_users=600 if quick else 1500,
                duration=20.0 if quick else 40.0,
            ),
            reporting.render_table1,
        ),
        (
            "fig7",
            lambda: figures.fig7_partitioner_scaling(
                sizes=(10_000, 30_000) if quick else (10_000, 50_000, 200_000),
            ),
            reporting.render_fig7,
        ),
        (
            "fig8",
            lambda: figures.fig8_oracle_load(
                n_users=600 if quick else 1200,
                duration=80.0 if quick else 160.0,
                repartition_time=40.0 if quick else 80.0,
            ),
            reporting.render_fig8,
        ),
    ]

    for name, experiment, render in plan:
        started = time.perf_counter()
        result = experiment()
        elapsed = time.perf_counter() - started
        print("=" * 72)
        print(render(result))
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()


if __name__ == "__main__":
    main()
