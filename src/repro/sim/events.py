"""Event heap and virtual clock.

The simulator is a priority queue of timestamped callbacks.  Ties on the
timestamp are broken by a monotonically increasing sequence number so the
execution order of simultaneous events is deterministic and insertion
ordered.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` and can be
    cancelled with :meth:`Simulator.cancel` (or :meth:`Event.cancel`).
    Cancelled events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so it will not fire."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq} fn={self.fn!r}{state}>"


class Simulator:
    """A deterministic discrete-event simulator with a virtual clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, print, "one virtual second elapsed")
        sim.run(until=10.0)

    The clock unit is the *simulated second*; all latency models and
    experiment durations in this repository are expressed in seconds.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled before it fires.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(self._now + delay, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, fn, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Return the virtual time of the next pending event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed
        by this call.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so repeated ``run`` calls
        tile time contiguously.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.fn(*event.args)
                processed += 1
                self.events_processed += 1
            if until is not None and not self._stopped and self._now < until:
                self._now = until
            return processed
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
