"""Event heap and virtual clock.

The simulator is a priority queue of timestamped callbacks.  Ties on the
timestamp are broken by a monotonically increasing sequence number so the
execution order of simultaneous events is deterministic and insertion
ordered.

Hot-path layout: the heap stores ``(time, seq, event)`` tuples so
ordering uses C-level tuple comparison instead of a Python ``__lt__``
call per sift step.  Cancelled events are skipped when popped and
lazily compacted in bulk once they outnumber live events — ordering of
live events is untouched by compaction, so seeded runs replay
byte-identically (see DESIGN.md §7, "Virtual-time semantics").
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

#: Compact the heap only past this size — tiny heaps are not worth it.
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` and can be
    cancelled with :meth:`Simulator.cancel` (or :meth:`Event.cancel`).
    Cancelled events stay in the heap but are skipped when popped (and
    reclaimed in bulk by lazy compaction).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: Owning simulator while the event sits in its heap; cleared on
        #: pop so a late ``cancel()`` of an already-fired event does not
        #: corrupt the live-event accounting.
        self._sim = sim

    def cancel(self) -> None:
        """Mark this event so it will not fire."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq} fn={self.fn!r}{state}>"


class Simulator:
    """A deterministic discrete-event simulator with a virtual clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, print, "one virtual second elapsed")
        sim.run(until=10.0)

    The clock unit is the *simulated second*; all latency models and
    experiment durations in this repository are expressed in seconds.
    """

    def __init__(self) -> None:
        #: Heap of (time, seq, Event) entries (tuple comparison never
        #: reaches the Event: seq is unique).
        self._heap: list[tuple] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        #: Cancelled events still sitting in the heap.
        self._cancelled = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled before it fires.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        event = Event(self._now + delay, seq, fn, args, self)
        heapq.heappush(self._heap, (event.time, seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``.

        ``time`` values derived arithmetically from ``now`` can carry a
        microscopic negative float residue (e.g. ``(now + d) - d`` a few
        ulps below ``now``); deltas in ``[-1e-12, 0]`` are clamped to
        zero instead of raising :class:`SimulationError`.
        """
        delay = time - self._now
        if -1e-12 <= delay < 0.0:
            delay = 0.0
        return self.schedule(delay, fn, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel` for events
        still in the heap; triggers lazy compaction once cancelled
        entries outnumber live ones."""
        self._cancelled += 1
        if self._cancelled >= _COMPACT_MIN and self._cancelled * 2 >= len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.  Live events keep
        their (time, seq) keys, so pop order — and therefore any seeded
        run — is unaffected."""
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Return the virtual time of the next pending event, or ``None``."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed
        by this call.

        When ``until`` is given the clock is advanced to exactly ``until``
        if (and only if) the heap is genuinely drained past it, so
        repeated ``run(until=...)`` calls tile time contiguously.  When
        the loop exits early — via ``max_events`` or :meth:`stop` — with
        live events still queued at or before ``until``, the clock stays
        at the last fired event so virtual time never moves backwards on
        the next call (see DESIGN.md, "Virtual-time semantics").

        The clock is updated *before* each callback runs, and the
        processed counters before control transfers to it, so an
        exception escaping a callback leaves the simulator consistent:
        ``now`` equals the failing event's time, the event counts include
        it, and ``run`` may be called again to continue with the
        remaining events.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            # self._heap is re-read every iteration on purpose: a
            # callback may cancel events and trigger compaction, which
            # replaces the list object.
            while self._heap and not self._stopped:
                time_, _seq, event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled -= 1
                    continue
                if until is not None and time_ > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                heapq.heappop(self._heap)
                event._sim = None
                self._now = time_
                processed += 1
                self.events_processed += 1
                event.fn(*event.args)
            if until is not None and not self._stopped and self._now < until:
                next_live = self.peek_time()
                if next_live is None or next_live > until:
                    self._now = until
            return processed
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1):
        maintained from the heap size and the cancelled-entry count."""
        return len(self._heap) - self._cancelled
