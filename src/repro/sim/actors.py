"""Actor model on top of the event heap.

An :class:`Actor` is a named node in the simulated system.  It receives
messages through :meth:`Actor.on_message` (scheduled by the network with a
sampled latency) and can set virtual-time timers.  Actors are single
threaded by construction: at most one handler runs at a time, which makes
protocol state machines easy to reason about and test.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.sim.events import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network


class Timer:
    """A cancellable, optionally periodic virtual-time timer."""

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        callback: Callable[[], Any],
        *,
        periodic: bool = False,
    ):
        self._sim = sim
        self._delay = delay
        self._callback = callback
        self._periodic = periodic
        self._event: Optional[Event] = None
        self._cancelled = False
        self._fired = False
        self._arm()

    def _arm(self) -> None:
        self._event = self._sim.schedule(self._delay, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        if self._periodic:
            self._arm()
        else:
            self._fired = True
        self._callback()

    def cancel(self) -> None:
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()

    @property
    def active(self) -> bool:
        """True while the timer still has a future firing pending."""
        return not self._cancelled and not self._fired

    def reset(self) -> None:
        """Cancel the pending firing and re-arm from now."""
        if self._event is not None:
            self._event.cancel()
        self._cancelled = False
        self._fired = False
        self._arm()


class Actor:
    """A named process in the simulated distributed system.

    Subclasses override :meth:`on_message`.  Actors send messages through
    the network they are registered with; a crashed actor silently drops
    everything it receives and all of its timers stop firing.
    """

    def __init__(self, name: str):
        self.name = name
        self.network: Optional["Network"] = None
        self.crashed = False
        self._timers: list[Timer] = []

    # -- wiring -----------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        if self.network is None:
            raise RuntimeError(f"actor {self.name!r} is not attached to a network")
        return self.network.sim

    @property
    def now(self) -> float:
        return self.sim.now

    # -- messaging --------------------------------------------------------

    def send(self, dest: str, message: Any) -> None:
        """Send ``message`` to actor named ``dest`` (one-way, may be lost
        if the destination crashed or the network drops it)."""
        if self.network is None:
            raise RuntimeError(f"actor {self.name!r} is not attached to a network")
        if self.crashed:
            return
        self.network.send(self.name, dest, message)

    def send_all(self, dests, message: Any) -> None:
        """Send ``message`` to every actor in ``dests``."""
        for dest in dests:
            self.send(dest, message)

    def on_message(self, sender: str, message: Any) -> None:
        """Handle a delivered message; subclasses override."""
        raise NotImplementedError

    def deliver(self, sender: str, message: Any) -> None:
        """Entry point used by the network; drops if crashed."""
        if self.crashed:
            return
        self.on_message(sender, message)

    # -- timers -----------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], Any]) -> Timer:
        """Run ``callback`` once after ``delay`` virtual seconds."""
        timer = Timer(self.sim, delay, self._guard(callback))
        self._timers.append(timer)
        return timer

    def set_periodic_timer(self, period: float, callback: Callable[[], Any]) -> Timer:
        """Run ``callback`` every ``period`` virtual seconds."""
        timer = Timer(self.sim, period, self._guard(callback), periodic=True)
        self._timers.append(timer)
        return timer

    def _guard(self, callback: Callable[[], Any]) -> Callable[[], Any]:
        def guarded() -> None:
            if not self.crashed:
                callback()

        return guarded

    # -- fault injection ----------------------------------------------------

    def crash(self) -> None:
        """Crash-stop this actor: drop all future messages and timers."""
        self.crashed = True
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    def recover(self) -> None:
        """Clear the crashed flag and invoke :meth:`on_recover`.

        The crash-recovery model (§2.1): state the subclass treats as
        *stable storage* survives in the Python object; everything
        volatile (timers, in-flight bookkeeping) was lost at
        :meth:`crash` and must be rebuilt in :meth:`on_recover`.
        Recovering a live actor is a no-op.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.on_recover()

    def on_recover(self) -> None:
        """Hook for subclasses: rebuild volatile state and re-arm timers
        after a crash.  The base actor has nothing to rebuild."""

    def __repr__(self) -> str:
        state = " CRASHED" if self.crashed else ""
        return f"<{type(self).__name__} {self.name}{state}>"
