"""Metrics collection for experiments.

Four primitives, mirroring what the paper's figures plot:

* :class:`Counter` — monotonically increasing event counts.
* :class:`Gauge` — a value that moves up and down.
* :class:`Histogram` — latency distributions (mean / percentiles / CDF).
* :class:`TimeSeries` — per-second-bucketed rates, used for the
  "throughput over time" style figures (Fig 2, 6, 8).

A :class:`Monitor` is a named registry of these, shared by the actors of
one experiment.  Metrics take optional **labels** (Prometheus style):
``monitor.counter("fault", kind="link_cut")`` registers an independent
counter per label combination under one base name, replacing the old
``f"fault:{kind}"`` string-key convention.  ``labeled_counters(name)`` /
``labeled_series(name)`` read back all label combinations of a base
name, and :meth:`Monitor.merge` folds one monitor into another so
per-actor monitors can combine into an experiment-wide snapshot.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional


def _label_suffix(labels: dict) -> str:
    """Canonical ``{k=v,...}`` rendering with sorted keys, '' if empty."""
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


def _label_key(labels: dict):
    """The key used when reading labels back: the bare value for a
    single label, a sorted value tuple for several."""
    if len(labels) == 1:
        return next(iter(labels.values()))
    return tuple(labels[k] for k in sorted(labels))


class Counter:
    """Monotonic event counter."""

    def __init__(self, name: str, labels: Optional[dict] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    def __init__(self, name: str, labels: Optional[dict] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Stores raw observations; computes summary statistics on demand.

    Raw storage keeps percentile computation exact, which matters for the
    p95 whiskers in Fig 4 and the CDFs in Fig 5.  Experiments are small
    enough (≤ a few million samples) that exactness is affordable.
    """

    def __init__(self, name: str, labels: Optional[dict] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._samples: list[float] = []
        self._sorted: Optional[list[float]] = None

    def observe(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(values)
        self._sorted = None

    # Batch-observe under the conventional name; kept as a true alias of
    # ``extend`` so the two can never drift apart.
    observe_many = extend

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def mean(self) -> float:
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    def percentile(self, p: float) -> float:
        """Exact percentile with linear interpolation; ``p`` in [0, 100]."""
        if not self._samples:
            return math.nan
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        data = self._ensure_sorted()
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        frac = rank - low
        value = data[low] * (1 - frac) + data[high] * frac
        # Clamp: float interpolation may overshoot by an ulp for large values.
        return min(max(value, data[low]), data[high])

    def cdf(self, points: int = 100) -> list[tuple[float, float]]:
        """``points`` evenly spaced (value, cumulative fraction) pairs."""
        if not self._samples:
            return []
        data = self._ensure_sorted()
        lo, hi = data[0], data[-1]
        if lo == hi:
            return [(lo, 1.0)]
        result = []
        for i in range(points + 1):
            value = lo + (hi - lo) * i / points
            frac = bisect.bisect_right(data, value) / len(data)
            result.append((value, frac))
        return result

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class TimeSeries:
    """Events bucketed into fixed-width virtual-time windows.

    ``record(t, amount)`` adds ``amount`` to the bucket containing time
    ``t``; ``rates()`` yields (bucket_start, amount / width) pairs —
    i.e. per-second rates when ``width == 1``.
    """

    def __init__(self, name: str, width: float = 1.0, labels: Optional[dict] = None):
        if width <= 0:
            raise ValueError("bucket width must be positive")
        self.name = name
        self.width = width
        self.labels = dict(labels or {})
        self._buckets: dict[int, float] = {}

    def record(self, time: float, amount: float = 1.0) -> None:
        if time < 0:
            raise ValueError("time must be non-negative")
        index = int(time // self.width)
        self._buckets[index] = self._buckets.get(index, 0.0) + amount

    def merge_from(self, other: "TimeSeries") -> None:
        """Add another series' buckets into this one (widths must match)."""
        if other.width != self.width:
            raise ValueError(
                f"cannot merge series with widths {self.width} and {other.width}"
            )
        for index, total in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0.0) + total

    def buckets(self) -> list[tuple[float, float]]:
        """Sorted (bucket_start_time, total) pairs, gaps filled with 0."""
        if not self._buckets:
            return []
        first = min(self._buckets)
        last = max(self._buckets)
        return [
            (i * self.width, self._buckets.get(i, 0.0)) for i in range(first, last + 1)
        ]

    def rates(self) -> list[tuple[float, float]]:
        """Per-unit-time rates for each bucket."""
        return [(t, total / self.width) for t, total in self.buckets()]

    def total(self) -> float:
        return sum(self._buckets.values())

    def value_at(self, time: float) -> float:
        return self._buckets.get(int(time // self.width), 0.0)


class Monitor:
    """Registry of named metrics shared by one experiment.

    Registry keys are ``name`` plus a canonical sorted rendering of the
    labels, so ``counter("tput", partition="P0")`` and
    ``counter("tput", partition="P1")`` are distinct metrics sharing a
    base name.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, TimeSeries] = {}

    # The accessors below are on the per-event hot path (actors resolve
    # counters by name on every increment), so the common cases — no
    # labels, metric already registered — do a single dict probe and
    # skip the label-suffix rendering entirely.

    def counter(self, name: str, **labels) -> Counter:
        key = name + _label_suffix(labels) if labels else name
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, labels)
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = name + _label_suffix(labels) if labels else name
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, labels)
        return metric

    def histogram(self, name: str, **labels) -> Histogram:
        key = name + _label_suffix(labels) if labels else name
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(name, labels)
        return metric

    def series(self, name: str, width: float = 1.0, **labels) -> TimeSeries:
        key = name + _label_suffix(labels) if labels else name
        metric = self._series.get(key)
        if metric is None:
            metric = self._series[key] = TimeSeries(name, width, labels)
        return metric

    def counters(self) -> dict[str, int]:
        return {key: c.value for key, c in self._counters.items()}

    def labeled_counters(self, name: str) -> dict:
        """Values of every labeled counter under a base name, keyed by
        label value (single label) or sorted label-value tuple."""
        return {
            _label_key(c.labels): c.value
            for c in self._counters.values()
            if c.name == name and c.labels
        }

    def labeled_series(self, name: str) -> dict:
        """Every labeled series under a base name, keyed like
        :meth:`labeled_counters`."""
        return {
            _label_key(s.labels): s
            for s in self._series.values()
            if s.name == name and s.labels
        }

    def merge(self, other: "Monitor") -> "Monitor":
        """Fold another monitor's metrics into this one and return self.

        Counters and gauges add, histograms concatenate samples, series
        add bucket totals (matching widths required).  Lets per-actor
        monitors combine into one experiment-wide snapshot without
        string-prefix hacks.
        """
        for key, counter in other._counters.items():
            mine = self._counters.get(key)
            if mine is None:
                mine = self._counters.setdefault(key, Counter(counter.name, counter.labels))
            mine.inc(counter.value)
        for key, gauge in other._gauges.items():
            mine = self._gauges.get(key)
            if mine is None:
                mine = self._gauges.setdefault(key, Gauge(gauge.name, gauge.labels))
            mine.add(gauge.value)
        for key, hist in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms.setdefault(key, Histogram(hist.name, hist.labels))
            mine.extend(hist._samples)
        for key, series in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                mine = self._series.setdefault(
                    key, TimeSeries(series.name, series.width, series.labels)
                )
            mine.merge_from(series)
        return self

    def snapshot(self) -> dict[str, dict]:
        """A JSON-friendly dump of everything collected so far."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.summary() for n, h in self._histograms.items()},
            "series": {n: s.buckets() for n, s in self._series.items()},
        }
