"""Metrics collection for experiments.

Four primitives, mirroring what the paper's figures plot:

* :class:`Counter` — monotonically increasing event counts.
* :class:`Gauge` — a value that moves up and down.
* :class:`Histogram` — latency distributions (mean / percentiles / CDF).
* :class:`TimeSeries` — per-second-bucketed rates, used for the
  "throughput over time" style figures (Fig 2, 6, 8).

A :class:`Monitor` is a named registry of these, shared by the actors of
one experiment.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional


class Counter:
    """Monotonic event counter."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Stores raw observations; computes summary statistics on demand.

    Raw storage keeps percentile computation exact, which matters for the
    p95 whiskers in Fig 4 and the CDFs in Fig 5.  Experiments are small
    enough (≤ a few million samples) that exactness is affordable.
    """

    def __init__(self, name: str):
        self.name = name
        self._samples: list[float] = []
        self._sorted: Optional[list[float]] = None

    def observe(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(values)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def mean(self) -> float:
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    def percentile(self, p: float) -> float:
        """Exact percentile with linear interpolation; ``p`` in [0, 100]."""
        if not self._samples:
            return math.nan
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        data = self._ensure_sorted()
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        frac = rank - low
        value = data[low] * (1 - frac) + data[high] * frac
        # Clamp: float interpolation may overshoot by an ulp for large values.
        return min(max(value, data[low]), data[high])

    def cdf(self, points: int = 100) -> list[tuple[float, float]]:
        """``points`` evenly spaced (value, cumulative fraction) pairs."""
        if not self._samples:
            return []
        data = self._ensure_sorted()
        lo, hi = data[0], data[-1]
        if lo == hi:
            return [(lo, 1.0)]
        result = []
        for i in range(points + 1):
            value = lo + (hi - lo) * i / points
            frac = bisect.bisect_right(data, value) / len(data)
            result.append((value, frac))
        return result

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class TimeSeries:
    """Events bucketed into fixed-width virtual-time windows.

    ``record(t, amount)`` adds ``amount`` to the bucket containing time
    ``t``; ``rates()`` yields (bucket_start, amount / width) pairs —
    i.e. per-second rates when ``width == 1``.
    """

    def __init__(self, name: str, width: float = 1.0):
        if width <= 0:
            raise ValueError("bucket width must be positive")
        self.name = name
        self.width = width
        self._buckets: dict[int, float] = {}

    def record(self, time: float, amount: float = 1.0) -> None:
        if time < 0:
            raise ValueError("time must be non-negative")
        self._buckets[int(time // self.width)] = (
            self._buckets.get(int(time // self.width), 0.0) + amount
        )

    def buckets(self) -> list[tuple[float, float]]:
        """Sorted (bucket_start_time, total) pairs, gaps filled with 0."""
        if not self._buckets:
            return []
        first = min(self._buckets)
        last = max(self._buckets)
        return [
            (i * self.width, self._buckets.get(i, 0.0)) for i in range(first, last + 1)
        ]

    def rates(self) -> list[tuple[float, float]]:
        """Per-unit-time rates for each bucket."""
        return [(t, total / self.width) for t, total in self.buckets()]

    def total(self) -> float:
        return sum(self._buckets.values())

    def value_at(self, time: float) -> float:
        return self._buckets.get(int(time // self.width), 0.0)


class Monitor:
    """Registry of named metrics shared by one experiment."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def series(self, name: str, width: float = 1.0) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name, width)
        return self._series[name]

    def counters(self) -> dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """Counters whose name starts with ``prefix`` (e.g. ``net_drop:``
        for per-reason drop accounting, ``fault:`` for injected faults)."""
        return {
            name: c.value
            for name, c in self._counters.items()
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict[str, dict]:
        """A JSON-friendly dump of everything collected so far."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.summary() for n, h in self._histograms.items()},
            "series": {n: s.buckets() for n, s in self._series.items()},
        }
