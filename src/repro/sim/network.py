"""Simulated message-passing network.

Connects actors by name.  Each ``send`` samples a one-way delay from the
applicable latency model and schedules delivery on the event heap.  The
network supports:

* per-destination-pair latency overrides (e.g. cross-datacenter links),
* probabilistic message loss, plus scheduled *loss bursts* (windows of
  elevated loss) and *delay spikes* (windows of added latency) for
  chaos testing,
* network partitions (a set of unordered name pairs that cannot talk),
  including one-way cuts for asymmetric faults,
* message counters for experiment accounting, with per-reason drop
  accounting surfaced through an optional :class:`~repro.sim.monitor.Monitor`.

Reliable channels between correct processes (the system-model assumption
in §2.1 of the paper) are obtained by leaving ``loss_probability`` at 0;
loss is available for stress tests of the retransmission layers.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Optional

from repro.sim.actors import Actor
from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.monitor import Monitor


class NetworkPartitionError(RuntimeError):
    """Raised when manipulating partitions with unknown actor names."""


class Network:
    """Name-addressed network with pluggable latency.

    Parameters
    ----------
    sim:
        The event heap messages are scheduled on.
    default_latency:
        Model used for every pair without an override.
    rng:
        RNG used for latency samples and loss draws; pass a seeded stream.
    loss_probability:
        Independent probability that any one message is silently dropped.
    monitor:
        Optional metrics registry; when given, drops are also counted
        per reason under the labeled ``net_drop`` counter
        (``reason=<reason>``).
    """

    def __init__(
        self,
        sim: Simulator,
        default_latency: Optional[LatencyModel] = None,
        rng: Optional[random.Random] = None,
        loss_probability: float = 0.0,
        monitor: Optional[Monitor] = None,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self.sim = sim
        self.default_latency = default_latency or ConstantLatency(0.0005)
        self.rng = rng or random.Random(0)
        self.loss_probability = loss_probability
        self.monitor = monitor
        self._actors: dict[str, Actor] = {}
        self._pair_latency: dict[tuple[str, str], LatencyModel] = {}
        self._cut_links: set[frozenset[str]] = set()
        self._directed_cuts: set[tuple[str, str]] = set()
        self._loss_bursts: list[tuple[float, float, float]] = []
        self._delay_spikes: list[tuple[float, float, float]] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.drops_by_reason: dict[str, int] = {}

    # -- membership ---------------------------------------------------------

    def register(self, actor: Actor) -> Actor:
        """Attach ``actor``; names must be unique."""
        if actor.name in self._actors:
            raise ValueError(f"duplicate actor name {actor.name!r}")
        self._actors[actor.name] = actor
        actor.network = self
        return actor

    def actor(self, name: str) -> Actor:
        return self._actors[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    @property
    def actor_names(self) -> list[str]:
        return list(self._actors)

    # -- latency configuration ----------------------------------------------

    def set_pair_latency(self, a: str, b: str, model: LatencyModel) -> None:
        """Override latency for both directions between ``a`` and ``b``."""
        self._pair_latency[(a, b)] = model
        self._pair_latency[(b, a)] = model

    def _latency_for(self, src: str, dst: str) -> LatencyModel:
        return self._pair_latency.get((src, dst), self.default_latency)

    # -- partitions -----------------------------------------------------------

    def cut(self, a: str, b: str) -> None:
        """Sever the bidirectional link between ``a`` and ``b``."""
        for name in (a, b):
            if name not in self._actors:
                raise NetworkPartitionError(f"unknown actor {name!r}")
        self._cut_links.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore the link between ``a`` and ``b``."""
        for name in (a, b):
            if name not in self._actors:
                raise NetworkPartitionError(f"unknown actor {name!r}")
        self._cut_links.discard(frozenset((a, b)))

    def partition_groups(self, side_a: list[str], side_b: list[str]) -> None:
        """Cut every link crossing the two sides."""
        for a, b in itertools.product(side_a, side_b):
            self.cut(a, b)

    def heal_groups(self, side_a: list[str], side_b: list[str]) -> None:
        """Restore every link crossing the two sides (the counterpart to
        :meth:`partition_groups`)."""
        for a, b in itertools.product(side_a, side_b):
            self.heal(a, b)

    def cut_oneway(self, src: str, dst: str) -> None:
        """Sever only the ``src -> dst`` direction (asymmetric faults)."""
        for name in (src, dst):
            if name not in self._actors:
                raise NetworkPartitionError(f"unknown actor {name!r}")
        self._directed_cuts.add((src, dst))

    def heal_oneway(self, src: str, dst: str) -> None:
        for name in (src, dst):
            if name not in self._actors:
                raise NetworkPartitionError(f"unknown actor {name!r}")
        self._directed_cuts.discard((src, dst))

    def heal_all(self) -> None:
        self._cut_links.clear()
        self._directed_cuts.clear()

    def link_up(self, a: str, b: str) -> bool:
        return (
            frozenset((a, b)) not in self._cut_links
            and (a, b) not in self._directed_cuts
        )

    # -- chaos windows --------------------------------------------------------

    def schedule_loss_burst(
        self, start: float, duration: float, probability: float
    ) -> None:
        """Raise the loss probability to ``probability`` during the virtual
        time window ``[start, start + duration)``.

        Overlapping bursts do not stack; the maximum of the base
        probability and every active burst applies.
        """
        if not 0.0 <= probability < 1.0:
            raise ValueError("burst probability must be in [0, 1)")
        if duration <= 0:
            raise ValueError("burst duration must be positive")
        self._loss_bursts.append((start, start + duration, probability))

    def schedule_delay_spike(self, start: float, duration: float, extra: float) -> None:
        """Add ``extra`` seconds of one-way latency to every message sent
        during ``[start, start + duration)``.  Overlapping spikes do not
        stack; the maximum active ``extra`` applies."""
        if extra < 0:
            raise ValueError("delay spike extra must be non-negative")
        if duration <= 0:
            raise ValueError("spike duration must be positive")
        self._delay_spikes.append((start, start + duration, extra))

    def _effective_loss(self, now: float) -> tuple[float, str]:
        """Return the loss probability in force at ``now`` and the drop
        reason to record if a message loses the draw."""
        p, reason = self.loss_probability, "loss"
        for start, end, prob in self._loss_bursts:
            if start <= now < end and prob > p:
                p, reason = prob, "loss_burst"
        return p, reason

    def _extra_delay(self, now: float) -> float:
        extra = 0.0
        for start, end, amount in self._delay_spikes:
            if start <= now < end and amount > extra:
                extra = amount
        return extra

    # -- transmission ---------------------------------------------------------

    def _drop(self, reason: str) -> None:
        self.messages_dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        if self.monitor is not None:
            self.monitor.counter("net_drop", reason=reason).inc()

    def send(self, src: str, dst: str, message: Any, size: int = 1) -> None:
        """Queue ``message`` for delivery from ``src`` to ``dst``.

        Messages to unknown destinations are dropped (the sender cannot
        distinguish this from loss, matching an asynchronous system).
        ``size`` is an abstract payload size used only for accounting.
        """
        self.messages_sent += 1
        self.bytes_sent += size
        if dst not in self._actors:
            self._drop("unknown_destination")
            return
        if not self.link_up(src, dst):
            self._drop("link_cut")
            return
        p, loss_reason = self._effective_loss(self.sim.now)
        if p > 0 and self.rng.random() < p:
            self._drop(loss_reason)
            return
        delay = self._latency_for(src, dst).sample(self.rng)
        delay += self._extra_delay(self.sim.now)
        self.sim.schedule(delay, self._deliver, src, dst, message)

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        actor = self._actors.get(dst)
        if actor is None or actor.crashed:
            self._drop("crashed")
            return
        self.messages_delivered += 1
        actor.deliver(src, message)

    # -- stats ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
            "bytes": self.bytes_sent,
            "drop_reasons": dict(self.drops_by_reason),
        }
