"""Simulated message-passing network.

Connects actors by name.  Each ``send`` samples a one-way delay from the
applicable latency model and schedules delivery on the event heap.  The
network supports:

* per-destination-pair latency overrides (e.g. cross-datacenter links),
* probabilistic message loss, plus scheduled *loss bursts* (windows of
  elevated loss) and *delay spikes* (windows of added latency) for
  chaos testing,
* network partitions (a set of unordered name pairs that cannot talk),
  including one-way cuts for asymmetric faults,
* message counters for experiment accounting, with per-reason drop
  accounting surfaced through an optional :class:`~repro.sim.monitor.Monitor`.

Reliable channels between correct processes (the system-model assumption
in §2.1 of the paper) are obtained by leaving ``loss_probability`` at 0;
loss is available for stress tests of the retransmission layers.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Optional

from repro.sim.actors import Actor
from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.monitor import Monitor


class NetworkPartitionError(RuntimeError):
    """Raised when manipulating partitions with unknown actor names."""


class Network:
    """Name-addressed network with pluggable latency.

    Parameters
    ----------
    sim:
        The event heap messages are scheduled on.
    default_latency:
        Model used for every pair without an override.
    rng:
        RNG used for latency samples and loss draws; pass a seeded stream.
    loss_probability:
        Independent probability that any one message is silently dropped.
        Must be in ``[0, 1)``: probability 1.0 (certain loss) is rejected
        everywhere — model a fully dead link with :meth:`cut` instead.
        The same domain applies to :meth:`schedule_loss_burst` and the
        fault-schedule validator.
    monitor:
        Optional metrics registry; when given, drops are also counted
        per reason under the labeled ``net_drop`` counter
        (``reason=<reason>``).
    """

    def __init__(
        self,
        sim: Simulator,
        default_latency: Optional[LatencyModel] = None,
        rng: Optional[random.Random] = None,
        loss_probability: float = 0.0,
        monitor: Optional[Monitor] = None,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self.sim = sim
        self.default_latency = default_latency or ConstantLatency(0.0005)
        self.rng = rng or random.Random(0)
        self._loss_probability = loss_probability
        self.monitor = monitor
        self._actors: dict[str, Actor] = {}
        self._pair_latency: dict[tuple[str, str], LatencyModel] = {}
        #: Memoized (src, dst) -> model resolution; cleared whenever an
        #: override is (re)installed.
        self._latency_cache: dict[tuple[str, str], LatencyModel] = {}
        self._cut_links: set[frozenset[str]] = set()
        self._directed_cuts: set[tuple[str, str]] = set()
        self._loss_bursts: list[tuple[float, float, float]] = []
        self._delay_spikes: list[tuple[float, float, float]] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.drops_by_reason: dict[str, int] = {}
        #: Memoized labeled drop counters (Monitor.counter re-resolves the
        #: labeled key on every call otherwise).
        self._drop_counters: dict[str, Any] = {}
        self._refresh_fast_path()

    def _refresh_fast_path(self) -> None:
        """(Re)decide whether ``send`` may skip the chaos checks.

        The fast path is valid only while nothing can drop or delay a
        message beyond its latency sample: no base loss, no scheduled
        bursts or spikes, no cuts.  It draws exactly the RNG values the
        general path would (the loss draw is skipped either way when the
        effective probability is 0), so toggling it never perturbs a
        seeded run.
        """
        self._fast_path = (
            self._loss_probability == 0.0
            and not self._loss_bursts
            and not self._delay_spikes
            and not self._cut_links
            and not self._directed_cuts
        )

    @property
    def loss_probability(self) -> float:
        """Independent per-message drop probability, in ``[0, 1)``."""
        return self._loss_probability

    @loss_probability.setter
    def loss_probability(self, value: float) -> None:
        if not 0.0 <= value < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self._loss_probability = value
        self._refresh_fast_path()

    # -- membership ---------------------------------------------------------

    def register(self, actor: Actor) -> Actor:
        """Attach ``actor``; names must be unique."""
        if actor.name in self._actors:
            raise ValueError(f"duplicate actor name {actor.name!r}")
        self._actors[actor.name] = actor
        actor.network = self
        return actor

    def actor(self, name: str) -> Actor:
        return self._actors[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    @property
    def actor_names(self) -> list[str]:
        return list(self._actors)

    # -- latency configuration ----------------------------------------------

    def set_pair_latency(self, a: str, b: str, model: LatencyModel) -> None:
        """Override latency for both directions between ``a`` and ``b``."""
        self._pair_latency[(a, b)] = model
        self._pair_latency[(b, a)] = model
        self._latency_cache.clear()

    def _latency_for(self, src: str, dst: str) -> LatencyModel:
        return self._pair_latency.get((src, dst), self.default_latency)

    # -- partitions -----------------------------------------------------------

    def cut(self, a: str, b: str) -> None:
        """Sever the bidirectional link between ``a`` and ``b``."""
        for name in (a, b):
            if name not in self._actors:
                raise NetworkPartitionError(f"unknown actor {name!r}")
        self._cut_links.add(frozenset((a, b)))
        self._fast_path = False

    def heal(self, a: str, b: str) -> None:
        """Restore the link between ``a`` and ``b``."""
        for name in (a, b):
            if name not in self._actors:
                raise NetworkPartitionError(f"unknown actor {name!r}")
        self._cut_links.discard(frozenset((a, b)))
        self._refresh_fast_path()

    def partition_groups(self, side_a: list[str], side_b: list[str]) -> None:
        """Cut every link crossing the two sides."""
        for a, b in itertools.product(side_a, side_b):
            self.cut(a, b)

    def heal_groups(self, side_a: list[str], side_b: list[str]) -> None:
        """Restore every link crossing the two sides (the counterpart to
        :meth:`partition_groups`)."""
        for a, b in itertools.product(side_a, side_b):
            self.heal(a, b)

    def cut_oneway(self, src: str, dst: str) -> None:
        """Sever only the ``src -> dst`` direction (asymmetric faults)."""
        for name in (src, dst):
            if name not in self._actors:
                raise NetworkPartitionError(f"unknown actor {name!r}")
        self._directed_cuts.add((src, dst))
        self._fast_path = False

    def heal_oneway(self, src: str, dst: str) -> None:
        for name in (src, dst):
            if name not in self._actors:
                raise NetworkPartitionError(f"unknown actor {name!r}")
        self._directed_cuts.discard((src, dst))
        self._refresh_fast_path()

    def heal_all(self) -> None:
        self._cut_links.clear()
        self._directed_cuts.clear()
        self._refresh_fast_path()

    def link_up(self, a: str, b: str) -> bool:
        return (
            frozenset((a, b)) not in self._cut_links
            and (a, b) not in self._directed_cuts
        )

    # -- chaos windows --------------------------------------------------------

    def schedule_loss_burst(
        self, start: float, duration: float, probability: float
    ) -> None:
        """Raise the loss probability to ``probability`` during the virtual
        time window ``[start, start + duration)``.

        Overlapping bursts do not stack; the maximum of the base
        probability and every active burst applies.
        """
        if not 0.0 <= probability < 1.0:
            raise ValueError("burst probability must be in [0, 1)")
        if duration <= 0:
            raise ValueError("burst duration must be positive")
        self._loss_bursts.append((start, start + duration, probability))
        self._fast_path = False

    def schedule_delay_spike(self, start: float, duration: float, extra: float) -> None:
        """Add ``extra`` seconds of one-way latency to every message sent
        during ``[start, start + duration)``.  Overlapping spikes do not
        stack; the maximum active ``extra`` applies."""
        if extra < 0:
            raise ValueError("delay spike extra must be non-negative")
        if duration <= 0:
            raise ValueError("spike duration must be positive")
        self._delay_spikes.append((start, start + duration, extra))
        self._fast_path = False

    def _effective_loss(self, now: float) -> tuple[float, str]:
        """Return the loss probability in force at ``now`` and the drop
        reason to record if a message loses the draw."""
        p, reason = self.loss_probability, "loss"
        for start, end, prob in self._loss_bursts:
            if start <= now < end and prob > p:
                p, reason = prob, "loss_burst"
        return p, reason

    def _extra_delay(self, now: float) -> float:
        extra = 0.0
        for start, end, amount in self._delay_spikes:
            if start <= now < end and amount > extra:
                extra = amount
        return extra

    # -- transmission ---------------------------------------------------------

    def _drop(self, reason: str) -> None:
        self.messages_dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        if self.monitor is not None:
            counter = self._drop_counters.get(reason)
            if counter is None:
                counter = self.monitor.counter("net_drop", reason=reason)
                self._drop_counters[reason] = counter
            counter.inc()

    def send(self, src: str, dst: str, message: Any, size: int = 1) -> None:
        """Queue ``message`` for delivery from ``src`` to ``dst``.

        Messages to unknown destinations are dropped (the sender cannot
        distinguish this from loss, matching an asynchronous system).
        ``size`` is an abstract payload size used only for accounting.
        """
        self.messages_sent += 1
        self.bytes_sent += size
        if dst not in self._actors:
            self._drop("unknown_destination")
            return
        pair = (src, dst)
        if self._fast_path:
            # Nothing configured can drop or delay this message beyond
            # its latency sample; skip the cut/burst/spike scans.  The
            # general path below draws no extra RNG values in this state,
            # so both paths consume the seeded stream identically.
            model = self._latency_cache.get(pair)
            if model is None:
                model = self._pair_latency.get(pair, self.default_latency)
                self._latency_cache[pair] = model
            self.sim.schedule(model.sample(self.rng), self._deliver, src, dst, message)
            return
        if not self.link_up(src, dst):
            self._drop("link_cut")
            return
        p, loss_reason = self._effective_loss(self.sim.now)
        if p > 0 and self.rng.random() < p:
            self._drop(loss_reason)
            return
        model = self._latency_cache.get(pair)
        if model is None:
            model = self._pair_latency.get(pair, self.default_latency)
            self._latency_cache[pair] = model
        delay = model.sample(self.rng)
        delay += self._extra_delay(self.sim.now)
        self.sim.schedule(delay, self._deliver, src, dst, message)

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        actor = self._actors.get(dst)
        if actor is None or actor.crashed:
            self._drop("crashed")
            return
        self.messages_delivered += 1
        actor.deliver(src, message)

    # -- stats ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
            "bytes": self.bytes_sent,
            "drop_reasons": dict(self.drops_by_reason),
        }
