"""Seeded randomness utilities.

Determinism rules for this repository:

* Every experiment takes a single integer ``seed``.
* Components never construct their own unseeded RNGs; they request a
  named stream from a :class:`SeedSequenceFactory`, which derives a child
  seed from (root seed, stream name).  Adding a new component therefore
  never perturbs the random numbers drawn by existing ones.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import random
from typing import Sequence


class SeedSequenceFactory:
    """Derives independent named RNG streams from a root seed."""

    def __init__(self, seed: int):
        self.seed = seed

    def child_seed(self, name: str) -> int:
        """A stable 64-bit seed for the stream called ``name``."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def rng(self, name: str) -> random.Random:
        """A :class:`random.Random` dedicated to the stream ``name``."""
        return random.Random(self.child_seed(name))


def zipf_cdf(n: int, rho: float) -> list[float]:
    """Cumulative distribution of a Zipf law over ranks ``1..n``.

    ``rho`` is the skew exponent (the paper uses 0.95 for the social
    network workload).  Returned list has length ``n`` with final entry 1.0.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if rho < 0:
        raise ValueError("rho must be non-negative")
    weights = [1.0 / math.pow(rank, rho) for rank in range(1, n + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    cdf[-1] = 1.0
    return cdf


class ZipfGenerator:
    """Draws ranks from a Zipf(rho) distribution over ``1..n``.

    Uses an O(log n) inverse-CDF lookup; the CDF is precomputed once,
    making repeated draws cheap enough for hot workload loops.
    """

    def __init__(self, n: int, rho: float, rng: random.Random):
        self._cdf = zipf_cdf(n, rho)
        self._rng = rng
        self.n = n
        self.rho = rho

    def draw(self) -> int:
        """A rank in ``1..n`` (rank 1 is the most popular)."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u) + 1

    def draw_index(self) -> int:
        """A zero-based index in ``0..n-1``."""
        return self.draw() - 1


def weighted_choice(rng: random.Random, items: Sequence, weights: Sequence[float]):
    """Pick one of ``items`` proportionally to ``weights``."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    u = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if u <= acc:
            return item
    return items[-1]
