"""Network latency models.

The paper's testbed is a LAN-like EC2 deployment; the default model used
across experiments is a log-normal one-way delay with a sub-millisecond
median, which reproduces the long-tailed RTTs of virtualized clusters.
Models are objects so tests can swap in constant delays for exactness.
"""

from __future__ import annotations

import math
import random


def _norm_cdf(z: float) -> float:
    """Standard normal CDF via the error function."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


class LatencyModel:
    """Base class: callable returning a one-way delay in seconds."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Expected delay, used by admission/timeout heuristics."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed one-way delay; the workhorse for deterministic protocol tests."""

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high]`` seconds."""

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class LogNormalLatency(LatencyModel):
    """Log-normal delay parameterized by its median and tail spread.

    ``median`` is the 50th-percentile one-way delay in seconds; ``sigma``
    controls the heaviness of the tail (0.3 is a good LAN default).  An
    optional ``floor`` lower-bounds samples, modelling the propagation
    minimum below which no packet can arrive.
    """

    def __init__(self, median: float, sigma: float = 0.3, floor: float = 0.0):
        if median <= 0:
            raise ValueError("median must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.median = median
        self.sigma = sigma
        self.floor = floor
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        return max(self.floor, rng.lognormvariate(self._mu, self.sigma))

    def mean(self) -> float:
        """Expected delay of the *floored* distribution.

        Samples are ``max(floor, X)`` with ``X`` log-normal, so the mean
        is not the plain log-normal mean ``exp(mu + sigma^2/2)`` — the
        floor soaks up the left tail::

            E[max(f, X)] = f * P(X <= f) + E[X; X > f]
                         = f * Phi((ln f - mu) / sigma)
                           + exp(mu + sigma^2/2) * Phi((mu + sigma^2 - ln f) / sigma)

        where ``Phi`` is the standard normal CDF.  Ignoring the floor
        understates the expectation that timeout/admission heuristics
        consume (for ``lan_default()`` the error is small but real).
        """
        untruncated = math.exp(self._mu + self.sigma**2 / 2.0)
        if self.floor <= 0.0:
            return untruncated
        if self.sigma == 0.0:
            return max(self.floor, self.median)
        log_floor = math.log(self.floor)
        below = _norm_cdf((log_floor - self._mu) / self.sigma)
        above = _norm_cdf((self._mu + self.sigma**2 - log_floor) / self.sigma)
        return self.floor * below + untruncated * above

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"


#: Default model for all experiments: ~0.35 ms median one-way delay with a
#: LAN-like tail, roughly matching intra-region EC2 placement.
def lan_default() -> LatencyModel:
    return LogNormalLatency(median=0.00035, sigma=0.35, floor=0.00008)
