"""Deterministic discrete-event simulation kernel.

Every distributed component in this repository (Paxos acceptors, multicast
groups, DynaStar servers, the oracle, clients) is an :class:`~repro.sim.actors.Actor`
scheduled on a single :class:`~repro.sim.events.Simulator` event heap and
connected through a :class:`~repro.sim.network.Network` with configurable
latency models.  Given a seed, an entire experiment is bit-for-bit
reproducible.
"""

from repro.sim.events import Event, Simulator, SimulationError
from repro.sim.actors import Actor, Timer
from repro.sim.latency import (
    LatencyModel,
    ConstantLatency,
    UniformLatency,
    LogNormalLatency,
)
from repro.sim.network import Network, NetworkPartitionError
from repro.sim.randomness import SeedSequenceFactory, zipf_cdf, ZipfGenerator
from repro.sim.monitor import Counter, Gauge, Histogram, TimeSeries, Monitor

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "Actor",
    "Timer",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "Network",
    "NetworkPartitionError",
    "SeedSequenceFactory",
    "zipf_cdf",
    "ZipfGenerator",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "Monitor",
]
