"""ElasticityController: idempotent group provision/retire on a live
system, and the monitor bookkeeping both feed."""

from repro.core import DynaStarSystem, SystemConfig
from repro.sim import ConstantLatency
from repro.smr import KeyValueApp


def build_elastic_system(**overrides):
    config = SystemConfig(
        n_partitions=2,
        seed=5,
        latency=ConstantLatency(0.001),
        repartition_enabled=False,
        elastic_enabled=True,
        **overrides,
    )
    app = KeyValueApp({f"k{i}": i for i in range(8)})
    return DynaStarSystem(app, config)


class TestProvision:
    def test_creates_and_registers_group(self):
        system = build_elastic_system()
        system.start()
        system.elastic.provision("e1")
        assert "e1" in system.directory.groups
        assert "e1" in system.partition_names
        group = system.directory.groups["e1"]
        assert len(group.replicas) == system.config.n_replicas

    def test_idempotent(self):
        system = build_elastic_system()
        system.start()
        system.elastic.provision("e1")
        group = system.directory.groups["e1"]
        system.elastic.provision("e1")  # other oracle replica / log replay
        assert system.directory.groups["e1"] is group
        assert system.partition_names.count("e1") == 1

    def test_records_partition_count(self):
        system = build_elastic_system()
        system.start()
        system.elastic.provision("e1")
        assert system.monitor.gauge("partition_count").value == 3
        counters = system.monitor.labeled_counters("reconfig")
        assert counters.get("topology_change") == 1

    def test_provisioned_group_serves_traffic(self):
        # A group provisioned mid-run must be a fully working member:
        # start it, run the clock, and its replicas elect a leader.
        system = build_elastic_system()
        system.start()
        system.elastic.provision("e1")
        system.run(until=5.0)
        group = system.directory.groups["e1"]
        assert any(not r.crashed for r in group.replicas)


class TestRetire:
    def test_removes_from_active_set_keeps_group(self):
        system = build_elastic_system()
        system.start()
        system.elastic.retire("p1")
        assert "p1" not in system.partition_names
        # Replicas stay on the network to ack stragglers / NACK clients.
        assert "p1" in system.directory.groups

    def test_idempotent(self):
        system = build_elastic_system()
        system.start()
        system.elastic.retire("p1")
        system.elastic.retire("p1")
        assert system.partition_names == ["p0"]
        counters = system.monitor.labeled_counters("reconfig")
        assert counters.get("topology_change") == 1

    def test_provision_does_not_resurrect_retired(self):
        # A lagging oracle replica replaying an old provision hook for a
        # name that has since been retired must not bring it back.
        system = build_elastic_system()
        system.start()
        system.elastic.provision("e1")
        system.elastic.retire("e1")
        system.elastic.provision("e1")
        assert "e1" not in system.partition_names


class TestWiring:
    def test_disabled_by_default(self):
        config = SystemConfig(
            n_partitions=2, seed=5, latency=ConstantLatency(0.001)
        )
        system = DynaStarSystem(KeyValueApp({"k0": 0}), config)
        assert system.elastic is None

    def test_oracle_replicas_share_elastic_config(self):
        system = build_elastic_system(
            elastic_split_factor=2.0, elastic_eval_interval=123
        )
        for replica in system.oracle_replicas():
            assert replica.elastic is not None
            assert replica.elastic.split_factor == 2.0
            assert replica.elastic.eval_interval == 123
