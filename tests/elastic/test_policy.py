"""Elasticity policy unit and property tests.

The hypothesis properties pin the core directory invariant: across ANY
sequence of split/merge plans — including moved-sets naming stale or
already-relocated nodes — the location map stays a *total*,
*non-overlapping* assignment of every node to a live partition.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import ReconfigPlan
from repro.elastic import ElasticConfig
from repro.elastic.policy import apply_reconfig, decide_reconfig, split_assignment
from repro.partitioning import WorkloadGraph


def make_graph(location, weights=None):
    graph = WorkloadGraph()
    for node in location:
        graph.ensure_vertex(node, (weights or {}).get(node, 1.0))
    return graph


# ---------------------------------------------------------------------------
# ElasticConfig validation
# ---------------------------------------------------------------------------


class TestElasticConfig:
    def test_defaults_valid(self):
        ElasticConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"split_factor": 1.0},
            {"merge_factor": 0.0},
            {"merge_factor": 1.0},
            {"split_factor": 1.2, "merge_factor": 1.2},
            {"eval_interval": 0},
            {"cooldown": -1},
            {"min_partitions": 0},
            {"min_partitions": 5, "max_partitions": 4},
            {"min_split_nodes": 1},
        ],
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ValueError):
            ElasticConfig(**kwargs)


# ---------------------------------------------------------------------------
# decide_reconfig
# ---------------------------------------------------------------------------


CFG = ElasticConfig(
    split_factor=1.5, merge_factor=0.25,
    eval_interval=10, cooldown=10,
    max_partitions=4, min_partitions=1, min_split_nodes=2,
)


class TestDecide:
    def test_hotspot_splits(self):
        decision = decide_reconfig(
            {"p0": 90.0, "p1": 10.0}, {"p0": 4, "p1": 4}, ["p0", "p1"], CFG
        )
        assert decision is not None
        assert (decision.kind, decision.source) == ("split", "p0")

    def test_balanced_load_does_nothing(self):
        assert (
            decide_reconfig(
                {"p0": 50.0, "p1": 50.0}, {"p0": 4, "p1": 4}, ["p0", "p1"], CFG
            )
            is None
        )

    def test_idle_partition_merges_into_next_lightest(self):
        decision = decide_reconfig(
            {"p0": 50.0, "p1": 48.0, "p2": 2.0},
            {"p0": 4, "p1": 4, "p2": 4},
            ["p0", "p1", "p2"],
            CFG,
        )
        assert decision is not None
        assert (decision.kind, decision.source, decision.target) == (
            "merge", "p2", "p1",
        )

    def test_split_beats_merge_when_both_apply(self):
        decision = decide_reconfig(
            {"p0": 97.0, "p1": 2.0, "p2": 1.0},
            {"p0": 8, "p1": 4, "p2": 4},
            ["p0", "p1", "p2"],
            CFG,
        )
        assert decision is not None and decision.kind == "split"

    def test_max_partitions_blocks_split(self):
        cfg = ElasticConfig(max_partitions=2, min_split_nodes=2)
        assert (
            decide_reconfig(
                {"p0": 99.0, "p1": 1.0}, {"p0": 8, "p1": 8},
                ["p0", "p1"], cfg,
            )
            is None
            or decide_reconfig(
                {"p0": 99.0, "p1": 1.0}, {"p0": 8, "p1": 8},
                ["p0", "p1"], cfg,
            ).kind
            == "merge"
        )

    def test_min_partitions_blocks_merge(self):
        # Split is vetoed by node count, merge by the partition floor:
        # the hot-but-unsplittable topology stays as it is.
        cfg = ElasticConfig(min_partitions=2, min_split_nodes=4)
        assert (
            decide_reconfig(
                {"p0": 99.0, "p1": 0.0}, {"p0": 2, "p1": 8},
                ["p0", "p1"], cfg,
            )
            is None
        )

    def test_min_split_nodes_blocks_split(self):
        decision = decide_reconfig(
            {"p0": 99.0, "p1": 1.0}, {"p0": 1, "p1": 8}, ["p0", "p1"], CFG
        )
        assert decision is None or decision.kind != "split"

    def test_empty_window_does_nothing(self):
        assert decide_reconfig({}, {"p0": 4}, ["p0", "p1"], CFG) is None

    @given(
        weights=st.dictionaries(
            st.sampled_from(["p0", "p1", "p2"]),
            st.floats(min_value=0.0, max_value=1000.0),
            min_size=1,
        ),
        counts=st.dictionaries(
            st.sampled_from(["p0", "p1", "p2"]),
            st.integers(min_value=0, max_value=50),
        ),
    )
    def test_deterministic(self, weights, counts):
        names = ["p0", "p1", "p2"]
        first = decide_reconfig(weights, counts, names, CFG)
        second = decide_reconfig(dict(weights), dict(counts), list(names), CFG)
        assert first == second


# ---------------------------------------------------------------------------
# split_assignment
# ---------------------------------------------------------------------------


class TestSplitAssignment:
    def test_moves_a_proper_nonempty_subset(self):
        location = {f"n{i}": "p0" for i in range(8)}
        location.update({f"m{i}": "p1" for i in range(4)})
        graph = make_graph(location)
        moved = split_assignment(graph, location, "p0", seed=1)
        assert moved
        assert set(moved) < {n for n, p in location.items() if p == "p0"}

    def test_single_node_partition_yields_nothing(self):
        location = {"n0": "p0", "m0": "p1"}
        assert split_assignment(make_graph(location), location, "p0", seed=1) == ()

    def test_same_seed_same_answer(self):
        location = {f"n{i}": "p0" for i in range(10)}
        graph = make_graph(location, {f"n{i}": float(i + 1) for i in range(10)})
        assert split_assignment(graph, location, "p0", seed=7) == split_assignment(
            graph, dict(location), "p0", seed=7
        )


# ---------------------------------------------------------------------------
# apply_reconfig: the directory-map invariant, property-tested
# ---------------------------------------------------------------------------


NODES = [f"n{i}" for i in range(12)]


@st.composite
def plan_sequences(draw):
    """(initial_location, [ReconfigPlan...]) with splits and merges over
    an evolving live-partition set; moved-sets may be stale (nodes whose
    owner already changed) — apply_reconfig must shrug those off."""
    live = ["p0", "p1"]
    location = {
        node: draw(st.sampled_from(live)) for node in NODES
    }
    initial = dict(location)
    plans = []
    epoch = 0
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        epoch += 1
        kind = draw(st.sampled_from(["split", "merge"]))
        if kind == "split":
            source = draw(st.sampled_from(live))
            target = f"e{epoch}"
            # Deliberately allow stale nodes (not currently on source).
            moved = tuple(
                sorted(draw(st.sets(st.sampled_from(NODES), max_size=8)))
            )
            plans.append(ReconfigPlan(epoch, "split", source, target, moved))
            live = live + [target]
        else:
            if len(live) < 2:
                continue
            source = draw(st.sampled_from(live))
            target = draw(st.sampled_from([p for p in live if p != source]))
            plans.append(ReconfigPlan(epoch, "merge", source, target))
            live = [p for p in live if p != source]
        location = apply_reconfig(location, plans[-1])
    return initial, plans


class TestApplyReconfig:
    @settings(max_examples=200, deadline=None)
    @given(data=plan_sequences())
    def test_map_stays_total_and_non_overlapping(self, data):
        initial, plans = data
        location = dict(initial)
        live = {"p0", "p1"}
        for plan in plans:
            location = apply_reconfig(location, plan)
            if plan.kind == "split":
                live.add(plan.target)
            else:
                live.discard(plan.source)
            # Total: every node still has exactly one home (dict keys
            # unchanged — nothing dropped, nothing duplicated).
            assert set(location) == set(NODES)
            # Non-overlapping onto live partitions only.
            assert set(location.values()) <= live
            if plan.kind == "merge":
                assert plan.source not in location.values()

    def test_split_moves_only_nodes_still_at_source(self):
        location = {"a": "p0", "b": "p0", "c": "p1"}
        plan = ReconfigPlan(1, "split", "p0", "e1", moved=("a", "c", "zz"))
        out = apply_reconfig(location, plan)
        assert out == {"a": "e1", "b": "p0", "c": "p1"}

    def test_merge_takes_late_arrivals_too(self):
        # A create that landed on the source after the plan was computed
        # still moves: merge is defined over the *current* owners.
        location = {"a": "p0", "late": "p0", "c": "p1"}
        plan = ReconfigPlan(2, "merge", "p0", "p1")
        out = apply_reconfig(location, plan)
        assert out == {"a": "p1", "late": "p1", "c": "p1"}

    def test_pure(self):
        location = {"a": "p0"}
        apply_reconfig(location, ReconfigPlan(1, "merge", "p0", "p1"))
        assert location == {"a": "p0"}
