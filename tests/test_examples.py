"""The example scripts must run clean end to end (they are the first
thing a new user executes)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, monkeypatch, capsys):
    """Execute an example as __main__ and return its stdout."""
    path = EXAMPLES / name
    assert path.exists(), path
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example("quickstart.py", monkeypatch, capsys)
        assert "completed=5" in out
        assert "failed=0" in out
        assert "multi-partition commands: 2" in out

    def test_social_network(self, monkeypatch, capsys):
        out = run_example("social_network.py", monkeypatch, capsys)
        assert "plans applied" in out
        assert "per-partition load" in out

    def test_tpcc_benchmark(self, monkeypatch, capsys):
        out = run_example("tpcc_benchmark.py", monkeypatch, capsys)
        assert "DynaStar (random start)" in out
        assert "S-SMR* (aligned)" in out

    def test_dynamic_celebrity(self, monkeypatch, capsys):
        out = run_example("dynamic_celebrity.py", monkeypatch, capsys)
        assert "celebrity user" in out
        assert "repartitionings" in out
