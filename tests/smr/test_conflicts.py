"""Conflict footprints: the correctness core of the parallel
intra-partition scheduler.

The safety argument for out-of-order execution is entirely local to
``footprint_of``/``footprints_conflict``: two commands may swap their
log order iff their footprints do not conflict.  The property test at
the bottom checks exactly that — *any* conflict-respecting reordering
of a random command sequence produces the same final store and the
same per-command results as serial log order.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smr import Command, KeyValueApp
from repro.smr.statemachine import (
    AppStateMachine,
    NodeWildcard,
    VariableStore,
    footprint_of,
    footprints_conflict,
)

KEYS = [f"k{i}" for i in range(6)]


def kv_app():
    return KeyValueApp({k: 10 * i for i, k in enumerate(KEYS)})


def fp(app, op, *args):
    return footprint_of(app, Command(f"u:{op}:{args!r}", op, args))


class TestKeyValueFootprints:
    def test_read_is_pure_read(self):
        f = fp(kv_app(), "read", "k0")
        assert f.read_vars == frozenset({"k0"})
        assert f.write_vars == frozenset()

    def test_write_is_pure_write(self):
        f = fp(kv_app(), "write", "k0", 1)
        assert f.write_vars == frozenset({"k0"})
        assert f.read_vars == frozenset()

    def test_sum_reads_every_key(self):
        f = fp(kv_app(), "sum", "k0", "k1", "k2")
        assert f.read_vars == frozenset({"k0", "k1", "k2"})
        assert f.write_vars == frozenset()

    def test_transfer_writes_both_endpoints(self):
        f = fp(kv_app(), "transfer", "k0", "k1", 5)
        assert f.write_vars == frozenset({"k0", "k1"})

    def test_read_read_commutes(self):
        app = kv_app()
        assert not footprints_conflict(
            fp(app, "read", "k0"), fp(app, "sum", "k0", "k1")
        )

    def test_write_read_conflicts(self):
        app = kv_app()
        assert footprints_conflict(
            fp(app, "write", "k0", 1), fp(app, "read", "k0")
        )
        assert footprints_conflict(
            fp(app, "read", "k0"), fp(app, "write", "k0", 1)
        )

    def test_write_write_conflicts(self):
        app = kv_app()
        assert footprints_conflict(
            fp(app, "transfer", "k0", "k1", 1), fp(app, "write", "k1", 9)
        )

    def test_disjoint_commands_commute(self):
        app = kv_app()
        assert not footprints_conflict(
            fp(app, "transfer", "k0", "k1", 1),
            fp(app, "transfer", "k2", "k3", 1),
        )


class WildcardApp(AppStateMachine):
    """Nodes "a"/"b" with vars (node, i); ``scan`` reads a whole node,
    ``clear`` writes a whole node, ``poke`` writes one var."""

    def graph_node_of(self, var):
        return var[0]

    def variables_of(self, command):
        if command.op in ("scan", "clear"):
            return frozenset({NodeWildcard(command.args[0])})
        return frozenset({command.args[0]})

    def read_variables_of(self, command):
        if command.op == "scan":
            return self.variables_of(command)
        return frozenset()


class TestWildcardFootprints:
    def test_scan_vs_poke_same_node_conflicts(self):
        app = WildcardApp()
        assert footprints_conflict(
            fp(app, "scan", "a"), fp(app, "poke", ("a", 1))
        )

    def test_scan_vs_poke_other_node_commutes(self):
        app = WildcardApp()
        assert not footprints_conflict(
            fp(app, "scan", "a"), fp(app, "poke", ("b", 1))
        )

    def test_two_scans_commute(self):
        app = WildcardApp()
        assert not footprints_conflict(fp(app, "scan", "a"), fp(app, "scan", "a"))

    def test_write_wildcard_conflicts_with_reads_of_node(self):
        app = WildcardApp()
        assert footprints_conflict(fp(app, "clear", "a"), fp(app, "scan", "a"))
        assert footprints_conflict(
            fp(app, "clear", "a"), fp(app, "poke", ("a", 0))
        )

    def test_read_wildcard_ignores_concrete_reads(self):
        app = WildcardApp()

        class ReadPoke(WildcardApp):
            def read_variables_of(self, command):
                if command.op in ("scan", "poke"):
                    return self.variables_of(command)
                return frozenset()

        rapp = ReadPoke()
        assert not footprints_conflict(
            fp(rapp, "scan", "a"), fp(rapp, "poke", ("a", 1))
        )
        del app


class TestConflictExemption:
    def test_exempt_entry_leaves_footprint_entirely(self):
        class Exempting(KeyValueApp):
            def conflict_free_variables_of(self, command):
                if command.op == "sum":
                    return frozenset({"k0"})
                return frozenset()

        app = Exempting({k: 0 for k in KEYS})
        f = fp(app, "sum", "k0", "k1")
        assert "k0" not in f.read_vars and "k0" not in f.read_nodes
        # routing is unaffected: variables_of still includes the key
        assert "k0" in app.variables_of(Command("u", "sum", ("k0", "k1")))
        assert not footprints_conflict(f, fp(app, "write", "k0", 1))
        assert footprints_conflict(f, fp(app, "write", "k1", 1))


# ---------------------------------------------------------------------------
# Property: conflict-respecting schedules are serially equivalent
# ---------------------------------------------------------------------------


def _run(app, commands, order):
    store = VariableStore()
    for var, value in app.initial_variables().items():
        store.put(var, value)
    results = {}
    for idx in order:
        cmd = commands[idx]
        try:
            results[cmd.uid] = ("ok", app.execute(cmd, store))
        except KeyError as exc:
            results[cmd.uid] = ("nok", repr(exc))
    return results, dict(store.items())


def _conflict_respecting_order(app, commands, rng):
    """A random topological order of the conflict graph: repeatedly pick
    any not-yet-scheduled command none of whose *earlier* unscheduled
    commands conflicts with it — exactly the freedom the lane scheduler
    has."""
    fps = [footprint_of(app, c) for c in commands]
    remaining = list(range(len(commands)))
    order = []
    while remaining:
        eligible = [
            i
            for pos, i in enumerate(remaining)
            if not any(
                footprints_conflict(fps[j], fps[i]) for j in remaining[:pos]
            )
        ]
        pick = rng.choice(eligible)
        remaining.remove(pick)
        order.append(pick)
    return order


command_strategy = st.one_of(
    st.tuples(st.just("read"), st.sampled_from(KEYS)),
    st.tuples(st.just("write"), st.sampled_from(KEYS), st.integers(0, 99)),
    st.tuples(
        st.just("sum"), st.sampled_from(KEYS), st.sampled_from(KEYS)
    ),
    st.tuples(
        st.just("transfer"),
        st.sampled_from(KEYS),
        st.sampled_from(KEYS),
        st.integers(1, 9),
    ),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)),
    st.tuples(st.just("create"), st.sampled_from(KEYS)),
)


@settings(max_examples=60, deadline=None)
@given(
    specs=st.lists(command_strategy, min_size=2, max_size=14),
    seed=st.integers(0, 2**16),
)
def test_conflict_respecting_schedule_is_serially_equivalent(specs, seed):
    app = kv_app()
    commands = [
        Command(f"c:{i}", spec[0], tuple(spec[1:])) for i, spec in enumerate(specs)
    ]
    serial_results, serial_store = _run(app, commands, range(len(commands)))
    order = _conflict_respecting_order(app, commands, random.Random(seed))
    sched_results, sched_store = _run(app, commands, order)
    assert sched_results == serial_results
    assert sched_store == serial_store
