"""Regression tests for execution-path crash bugs: a missing key is an
application-level miss (deterministic value or clean NOK), never an
unhandled exception escaping ``execute`` mid-mutation.

The original bug: ``KeyValueApp.execute`` raised a bare ``KeyError``
when a ``read``/``sum`` raced a ``delete`` of the same key — under
relocation that could crash the replica's delivery loop.
"""

import pytest

from repro.smr import Command, KeyValueApp
from repro.smr.statemachine import VariableStore


def make_store(app):
    store = VariableStore()
    for var, value in app.initial_variables().items():
        store.put(var, value)
    return store


@pytest.fixture
def app():
    return KeyValueApp({"a": 5, "b": 7})


@pytest.fixture
def store(app):
    return make_store(app)


class TestReadMiss:
    def test_read_missing_key_returns_none(self, app, store):
        assert app.execute(Command("u1", "read", ("ghost",)), store) is None

    def test_read_after_delete_returns_none(self, app, store):
        app.execute(Command("u1", "delete", ("a",)), store)
        assert app.execute(Command("u2", "read", ("a",)), store) is None

    def test_read_present_key_unchanged(self, app, store):
        assert app.execute(Command("u1", "read", ("a",)), store) == 5


class TestSumMiss:
    def test_sum_counts_missing_keys_as_zero(self, app, store):
        result = app.execute(Command("u1", "sum", ("a", "ghost", "b")), store)
        assert result == 12

    def test_sum_of_only_missing_keys_is_zero(self, app, store):
        assert app.execute(Command("u1", "sum", ("x", "y")), store) == 0


class TestTransferMiss:
    def test_missing_src_raises_before_mutation(self, app, store):
        with pytest.raises(KeyError):
            app.execute(Command("u1", "transfer", ("ghost", "b", 3)), store)
        assert store.get("b") == 7  # dst untouched

    def test_missing_dst_raises_before_mutation(self, app, store):
        with pytest.raises(KeyError):
            app.execute(Command("u1", "transfer", ("a", "ghost", 3)), store)
        assert store.get("a") == 5  # src untouched

    def test_valid_transfer_still_works(self, app, store):
        result = app.execute(Command("u1", "transfer", ("a", "b", 3)), store)
        assert result == (2, 10)
