"""Tests for the Wing & Gong linearizability checker itself (the checker
is then used by end-to-end DynaStar correctness tests)."""

import pytest

from repro.smr import (
    Command,
    History,
    KeyValueApp,
    Operation,
    check_linearizable,
)


def op(client, cmd, t0, t1, result):
    return Operation(client, cmd, t0, t1, result)


def read(uid, key):
    return Command(uid, "read", (key,))


def write(uid, key, value):
    return Command(uid, "write", (key, value))


class TestSequentialHistories:
    def test_empty_history_linearizable(self):
        assert check_linearizable(History(), KeyValueApp({"x": 0}))

    def test_simple_write_then_read(self):
        h = History()
        h.record(op("a", write("1", "x", 5), 0.0, 1.0, 0))
        h.record(op("a", read("2", "x"), 2.0, 3.0, 5))
        assert check_linearizable(h, KeyValueApp({"x": 0}))

    def test_read_of_never_written_value_rejected(self):
        h = History()
        h.record(op("a", read("1", "x"), 0.0, 1.0, 42))
        assert not check_linearizable(h, KeyValueApp({"x": 0}))

    def test_stale_read_after_write_rejected(self):
        h = History()
        h.record(op("a", write("1", "x", 5), 0.0, 1.0, 0))
        h.record(op("a", read("2", "x"), 2.0, 3.0, 0))  # must see 5
        assert not check_linearizable(h, KeyValueApp({"x": 0}))

    def test_wrong_result_value_rejected(self):
        h = History()
        # write returns the OLD value (0), not the new one
        h.record(op("a", write("1", "x", 5), 0.0, 1.0, 5))
        assert not check_linearizable(h, KeyValueApp({"x": 0}))


class TestConcurrentHistories:
    def test_concurrent_writes_any_final_order(self):
        h = History()
        h.record(op("a", write("1", "x", 1), 0.0, 2.0, 0))
        h.record(op("b", write("2", "x", 2), 0.0, 2.0, 1))  # saw a's write
        h.record(op("a", read("3", "x"), 3.0, 4.0, 2))
        assert check_linearizable(h, KeyValueApp({"x": 0}))

    def test_concurrent_read_may_see_either(self):
        base = [
            op("a", write("1", "x", 7), 0.0, 2.0, 0),
        ]
        for seen in (0, 7):
            h = History()
            for o in base:
                h.record(o)
            h.record(op("b", read("2", "x"), 1.0, 1.5, seen))
            assert check_linearizable(h, KeyValueApp({"x": 0})), f"seen={seen}"

    def test_non_overlapping_reads_cannot_go_backwards(self):
        h = History()
        h.record(op("a", write("1", "x", 7), 0.0, 5.0, 0))
        # r1 strictly before r2 in real time; r1 sees new value, r2 old one.
        h.record(op("b", read("2", "x"), 1.0, 1.5, 7))
        h.record(op("b", read("3", "x"), 2.0, 2.5, 0))
        assert not check_linearizable(h, KeyValueApp({"x": 0}))

    def test_multi_key_transfer_consistency(self):
        app = KeyValueApp({"x": 10, "y": 0})
        h = History()
        h.record(
            op("a", Command("1", "transfer", ("x", "y", 4)), 0.0, 1.0, (6, 4))
        )
        h.record(op("b", Command("2", "sum", ("x", "y")), 2.0, 3.0, 10))
        assert check_linearizable(h, app)

    def test_multi_key_torn_read_rejected(self):
        # sum observing only half of a completed transfer is non-linearizable
        app = KeyValueApp({"x": 10, "y": 0})
        h = History()
        h.record(
            op("a", Command("1", "transfer", ("x", "y", 4)), 0.0, 1.0, (6, 4))
        )
        h.record(op("b", Command("2", "sum", ("x", "y")), 2.0, 3.0, 6))
        assert not check_linearizable(h, app)

    def test_many_interleaved_clients_valid(self):
        app = KeyValueApp({"x": 0})
        h = History()
        # sequence of atomically increasing writes with overlapping reads
        t = 0.0
        value = 0
        for i in range(8):
            h.record(op("w", write(f"w{i}", "x", i + 1), t, t + 1.0, value))
            value = i + 1
            h.record(op("r", read(f"r{i}", "x"), t + 1.2, t + 1.4, value))
            t += 2.0
        assert check_linearizable(h, app)


class TestValidation:
    def test_return_before_invoke_rejected(self):
        h = History()
        with pytest.raises(ValueError):
            h.record(op("a", read("1", "x"), 5.0, 4.0, 0))
