"""Tests for store mutation tracking, the fast value copier, and node
wildcards."""

import pytest

from repro.smr import Command, VariableStore
from repro.smr.fastcopy import copy_value
from repro.smr.statemachine import AppStateMachine, NodeWildcard


class TestMutationTracking:
    def test_tracks_puts(self):
        s = VariableStore()
        s.begin_tracking()
        s.put("a", 1)
        s.insert_copy("b", 2)
        written, removed = s.end_tracking()
        assert written == {"a", "b"}
        assert removed == set()

    def test_tracks_removals(self):
        s = VariableStore()
        s.put("a", 1)
        s.put("b", 2)
        s.begin_tracking()
        s.remove("a")
        s.discard("b")
        s.discard("never-there")
        written, removed = s.end_tracking()
        assert removed == {"a", "b"}

    def test_write_then_remove_nets_to_removed(self):
        s = VariableStore()
        s.begin_tracking()
        s.put("a", 1)
        s.discard("a")
        written, removed = s.end_tracking()
        assert written == set()
        assert removed == {"a"}

    def test_remove_then_write_nets_to_written(self):
        s = VariableStore()
        s.put("a", 1)
        s.begin_tracking()
        s.remove("a")
        s.put("a", 2)
        written, removed = s.end_tracking()
        assert written == {"a"}
        assert removed == set()

    def test_no_tracking_outside_window(self):
        s = VariableStore()
        s.put("a", 1)  # before tracking: not recorded
        s.begin_tracking()
        written, removed = s.end_tracking()
        assert written == set() and removed == set()

    def test_take_counts_as_removal(self):
        s = VariableStore()
        s.put("a", [1])
        s.begin_tracking()
        s.take("a")
        _, removed = s.end_tracking()
        assert removed == {"a"}


class TestCopyValue:
    def test_scalars_identity(self):
        for v in (1, 2.5, "s", b"b", None, True, 3 + 4j):
            assert copy_value(v) == v

    def test_nested_structures_deep(self):
        value = {"a": [1, {2, 3}], "b": ({"c": [4]},)}
        clone = copy_value(value)
        assert clone == value
        clone["a"].append(99)
        clone["b"][0]["c"].append(99)
        assert value["a"] == [1, {2, 3}]
        assert value["b"][0]["c"] == [4]

    def test_sets_and_frozensets(self):
        assert copy_value({1, 2}) == {1, 2}
        assert copy_value(frozenset((1, 2))) == frozenset((1, 2))

    def test_unknown_type_falls_back_to_deepcopy(self):
        class Box:
            def __init__(self, v):
                self.v = v

        box = Box([1])
        clone = copy_value(box)
        assert clone is not box
        clone.v.append(2)
        assert box.v == [1]


class TestNodeWildcardHelpers:
    class App(AppStateMachine):
        def graph_node_of(self, var):
            return var[0]

        def variables_of(self, command):
            return frozenset({("n1", "x"), NodeWildcard("n2")})

        def execute(self, command, store):
            return None

    def test_nodes_of_mixes_concrete_and_wildcard(self):
        app = self.App()
        cmd = Command("c", "op")
        assert app.nodes_of(cmd) == {"n1", "n2"}

    def test_concrete_and_wildcard_partitioning(self):
        app = self.App()
        cmd = Command("c", "op")
        assert app.concrete_variables_of(cmd) == {("n1", "x")}
        assert app.wildcard_nodes_of(cmd) == {"n2"}

    def test_default_borrow_variables_is_none(self):
        app = self.App()
        assert app.borrow_variables(Command("c", "op"), "n2", None, set()) is None

    def test_wildcards_hashable_and_comparable(self):
        assert NodeWildcard("a") == NodeWildcard("a")
        assert len({NodeWildcard("a"), NodeWildcard("a")}) == 1
