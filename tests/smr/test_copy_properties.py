"""Property tests for the state-copying primitives.

Checkpointing and snapshot transfer lean entirely on
:func:`repro.smr.fastcopy.copy_value` and the
:meth:`VariableStore.snapshot` / :meth:`VariableStore.insert_copy` pair:
a checkpoint must be a *faithful* copy (equal values) that shares *no*
mutable structure with the live store, or a post-checkpoint write would
silently corrupt history.  Hypothesis drives both properties over
arbitrary compositions of the plain-data shapes the stores hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smr.fastcopy import copy_value
from repro.smr.statemachine import VariableStore

# Values mirror what application state machines actually store: scalars
# composed through dicts / lists / tuples / (frozen)sets.
scalars = st.one_of(
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=12),
    st.booleans(),
    st.binary(max_size=8),
    st.none(),
)
hashables = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.frozensets(inner, max_size=4),
    ),
    max_leaves=8,
)
values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5),
        st.dictionaries(st.text(max_size=6), inner, max_size=5),
        st.tuples(inner, inner),
        st.sets(hashables, max_size=4),
        st.frozensets(hashables, max_size=4),
    ),
    max_leaves=20,
)


def mutable_parts(value):
    """Every mutable container reachable inside ``value`` (by identity)."""
    out = []
    if isinstance(value, dict):
        out.append(value)
        for v in value.values():
            out.extend(mutable_parts(v))
    elif isinstance(value, (list, tuple, set, frozenset)):
        if isinstance(value, (list, set)):
            out.append(value)
        for v in value:
            out.extend(mutable_parts(v))
    return out


class TestCopyValue:
    @given(values)
    @settings(max_examples=200)
    def test_copy_is_equal(self, value):
        assert copy_value(value) == value

    @given(values)
    @settings(max_examples=200)
    def test_copy_shares_no_mutable_structure(self, value):
        clone = copy_value(value)
        original_ids = {id(part) for part in mutable_parts(value)}
        for part in mutable_parts(clone):
            assert id(part) not in original_ids, "aliased mutable container"

    @given(values)
    @settings(max_examples=100)
    def test_copy_preserves_types(self, value):
        assert type(copy_value(value)) is type(value)


class TestStoreRoundTrip:
    @given(st.dictionaries(st.text(max_size=6), values, max_size=6))
    @settings(max_examples=100)
    def test_snapshot_insert_copy_round_trip(self, data):
        """snapshot → insert_copy into a fresh store reproduces the
        original contents exactly (the snapshot-install path)."""
        store = VariableStore()
        for var, value in data.items():
            store.put(var, value)
        snap = store.snapshot(store.variables())
        assert snap == data

        restored = VariableStore()
        for var, value in snap.items():
            restored.insert_copy(var, value)
        assert dict(restored.items()) == data

    @given(st.dictionaries(st.text(max_size=6), values, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_snapshot_is_isolated_from_later_mutation(self, data):
        """Mutating the live store after a snapshot never changes the
        snapshot — the no-aliasing guarantee checkpoints rely on."""
        store = VariableStore()
        for var, value in data.items():
            store.put(var, value)
        snap = store.snapshot(store.variables())

        for var in list(data):
            store.put(var, {"clobbered": [var]})
        assert snap == data

    @given(st.dictionaries(st.text(max_size=6), values, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_installed_copy_is_isolated_from_source(self, data):
        """insert_copy takes its own copy: mutating the source values
        after install leaves the store untouched."""
        pristine = {var: copy_value(value) for var, value in data.items()}
        store = VariableStore()
        for var, value in data.items():
            store.insert_copy(var, value)
        for var in list(data):
            if isinstance(data[var], list):
                data[var].append("tail")
            elif isinstance(data[var], dict):
                data[var]["extra"] = 1
            elif isinstance(data[var], set):
                data[var].add("extra")
        assert dict(store.items()) == pristine
