"""Tests for commands, the variable store, and the key-value app."""

import pytest

from repro.smr import Command, KeyValueApp, VariableStore
from repro.smr.command import CommandKind, Reply, ReplyStatus


class TestCommand:
    def test_default_kind_is_access(self):
        assert Command("c1", "read", ("x",)).kind == CommandKind.ACCESS

    def test_commands_hashable_and_frozen(self):
        c = Command("c1", "read", ("x",))
        assert hash(c)
        with pytest.raises(AttributeError):
            c.op = "write"

    def test_reply_carries_attempt(self):
        r = Reply("c1", ReplyStatus.RETRY, attempt=2)
        assert r.attempt == 2


class TestVariableStore:
    def test_put_get(self):
        s = VariableStore()
        s.put("x", 1)
        assert s.get("x") == 1
        assert "x" in s
        assert len(s) == 1

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            VariableStore().get("x")

    def test_get_or_none(self):
        assert VariableStore().get_or_none("x") is None

    def test_take_removes_and_copies(self):
        s = VariableStore()
        value = {"n": 1}
        s.put("x", value)
        taken = s.take("x")
        assert "x" not in s
        taken["n"] = 99
        assert value["n"] == 1  # deep copy

    def test_insert_copy_isolates(self):
        s = VariableStore()
        value = [1, 2]
        s.insert_copy("x", value)
        value.append(3)
        assert s.get("x") == [1, 2]

    def test_snapshot_subset(self):
        s = VariableStore()
        s.put("x", 1)
        s.put("y", 2)
        snap = s.snapshot(["x", "z"])
        assert snap == {"x": 1}

    def test_remove_and_discard(self):
        s = VariableStore()
        s.put("x", 1)
        assert s.remove("x") == 1
        s.discard("never-there")  # no raise


class TestKeyValueApp:
    def setup_method(self):
        self.app = KeyValueApp({"x": 10, "y": 5})
        self.store = VariableStore()
        for k, v in self.app.initial_variables().items():
            self.store.put(k, v)

    def test_variables_of_read_write(self):
        assert self.app.variables_of(Command("1", "read", ("x",))) == {"x"}
        assert self.app.variables_of(Command("1", "write", ("x", 3))) == {"x"}

    def test_variables_of_multi_key(self):
        assert self.app.variables_of(Command("1", "sum", ("x", "y"))) == {"x", "y"}
        assert self.app.variables_of(
            Command("1", "transfer", ("x", "y", 1))
        ) == {"x", "y"}

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            self.app.variables_of(Command("1", "fly", ()))

    def test_execute_read(self):
        assert self.app.execute(Command("1", "read", ("x",)), self.store) == 10

    def test_execute_write_returns_old(self):
        assert self.app.execute(Command("1", "write", ("x", 3)), self.store) == 10
        assert self.store.get("x") == 3

    def test_execute_sum(self):
        assert self.app.execute(Command("1", "sum", ("x", "y")), self.store) == 15

    def test_execute_transfer(self):
        result = self.app.execute(Command("1", "transfer", ("x", "y", 4)), self.store)
        assert result == (6, 9)
        assert self.store.get("x") == 6
        assert self.store.get("y") == 9

    def test_execute_create_and_delete(self):
        self.app.execute(Command("1", "create", ("z",)), self.store)
        assert self.store.get("z") == 0
        self.app.execute(Command("2", "delete", ("z",)), self.store)
        assert "z" not in self.store

    def test_default_graph_node_is_identity(self):
        assert self.app.graph_node_of("x") == "x"
        assert self.app.nodes_of(Command("1", "sum", ("x", "y"))) == {"x", "y"}
