"""Tests for the workload graph data structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning import WorkloadGraph, Partitioning


class TestConstruction:
    def test_empty_graph(self):
        g = WorkloadGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.total_edge_weight == 0.0

    def test_add_vertex_accumulates_weight(self):
        g = WorkloadGraph()
        g.add_vertex("a", 2.0)
        g.add_vertex("a", 3.0)
        assert g.vertex_weight("a") == 5.0
        assert g.num_vertices == 1

    def test_ensure_vertex_does_not_touch_weight(self):
        g = WorkloadGraph()
        g.add_vertex("a", 2.0)
        g.ensure_vertex("a", 99.0)
        assert g.vertex_weight("a") == 2.0

    def test_add_edge_creates_vertices(self):
        g = WorkloadGraph()
        g.add_edge("a", "b", 1.5)
        assert "a" in g and "b" in g
        assert g.edge_weight("a", "b") == 1.5
        assert g.edge_weight("b", "a") == 1.5

    def test_add_edge_accumulates(self):
        g = WorkloadGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "a", 2.0)
        assert g.edge_weight("a", "b") == 3.0
        assert g.num_edges == 1
        assert g.total_edge_weight == 3.0

    def test_self_loop_ignored(self):
        g = WorkloadGraph()
        g.add_edge("a", "a")
        assert g.num_edges == 0

    def test_from_edges_mixed_forms(self):
        g = WorkloadGraph.from_edges([("a", "b"), ("b", "c", 4.0)])
        assert g.edge_weight("a", "b") == 1.0
        assert g.edge_weight("b", "c") == 4.0

    def test_remove_vertex(self):
        g = WorkloadGraph.from_edges([("a", "b"), ("b", "c")])
        g.remove_vertex("b")
        assert "b" not in g
        assert g.num_edges == 0
        assert g.total_edge_weight == 0.0

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(KeyError):
            WorkloadGraph().remove_vertex("x")

    def test_copy_is_independent(self):
        g = WorkloadGraph.from_edges([("a", "b")])
        c = g.copy()
        c.add_edge("a", "c")
        assert g.num_edges == 1
        assert c.num_edges == 2


class TestQueries:
    def test_degree_and_weighted_degree(self):
        g = WorkloadGraph.from_edges([("a", "b", 2.0), ("a", "c", 3.0)])
        assert g.degree("a") == 2
        assert g.weighted_degree("a") == 5.0

    def test_edges_yields_each_once(self):
        g = WorkloadGraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        edges = list(g.edges())
        assert len(edges) == 3
        seen = {frozenset((u, v)) for u, v, _ in edges}
        assert len(seen) == 3

    def test_has_edge(self):
        g = WorkloadGraph.from_edges([("a", "b")])
        assert g.has_edge("a", "b")
        assert not g.has_edge("a", "c")
        assert not g.has_edge("x", "y")

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_total_edge_weight_matches_sum(self, pairs):
        g = WorkloadGraph()
        for u, v in pairs:
            g.add_edge(u, v)
        assert g.total_edge_weight == pytest.approx(
            sum(w for _, _, w in g.edges())
        )


class TestPartitioning:
    def test_edge_cut(self):
        g = WorkloadGraph.from_edges([("a", "b", 1.0), ("b", "c", 2.0)])
        p = Partitioning({"a": 0, "b": 0, "c": 1}, k=2)
        assert p.edge_cut(g) == 2.0

    def test_part_weights_and_imbalance(self):
        g = WorkloadGraph()
        for v, w in [("a", 1.0), ("b", 1.0), ("c", 2.0)]:
            g.add_vertex(v, w)
        p = Partitioning({"a": 0, "b": 0, "c": 1}, k=2)
        assert p.part_weights(g) == [2.0, 2.0]
        assert p.imbalance(g) == pytest.approx(0.0)

    def test_members(self):
        p = Partitioning({"a": 0, "b": 1, "c": 0}, k=2)
        assert sorted(p.members(0)) == ["a", "c"]

    def test_part_of_missing_vertex_is_none(self):
        p = Partitioning({"a": 0}, k=1)
        assert p.part_of("zz") is None
