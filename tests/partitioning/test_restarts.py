"""Tests for multi-restart partitioning (METIS ncuts equivalent)."""

import pytest

from repro.partitioning import WorkloadGraph, partition_graph


def lumpy_graph(seed=1):
    """A small graph with clear clusters but a tricky greedy landscape."""
    import random

    rng = random.Random(seed)
    g = WorkloadGraph()
    for c in range(4):
        members = [(c, i) for i in range(10)]
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if rng.random() < 0.6:
                    g.add_edge(u, v)
    for c in range(4):
        g.add_edge((c, 0), ((c + 1) % 4, 0), 0.5)
    return g


class TestRestarts:
    def test_restarts_never_worse_than_single_run(self):
        g = lumpy_graph()
        single = partition_graph(g, 4, seed=9, restarts=1)
        multi = partition_graph(g, 4, seed=9, restarts=5)
        assert multi.edge_cut(g) <= single.edge_cut(g)

    def test_restart_count_validated(self):
        with pytest.raises(ValueError):
            partition_graph(WorkloadGraph(), 2, restarts=0)

    def test_restarts_deterministic(self):
        g = lumpy_graph()
        a = partition_graph(g, 4, seed=3, restarts=4)
        b = partition_graph(g, 4, seed=3, restarts=4)
        assert a.assignment == b.assignment

    def test_feasible_preferred_over_infeasible(self):
        """When some restarts violate balance, a feasible one wins even at
        a slightly higher cut."""
        g = lumpy_graph(seed=5)
        result = partition_graph(g, 4, imbalance=0.2, seed=1, restarts=6)
        assert result.imbalance(g) <= 0.3  # small slack over target

    def test_stats_reflect_winning_run(self):
        from repro.partitioning import PartitionerStats

        g = lumpy_graph()
        stats = PartitionerStats()
        result = partition_graph(g, 4, seed=2, restarts=3, stats=stats)
        assert stats.final_cut == pytest.approx(result.edge_cut(g))
        assert stats.n_vertices == g.num_vertices
        assert stats.levels >= 1
