"""Unit tests for partition-quality helpers, including the label-keyed
variants and the hot-vertex ranking used by the health sampler."""

import pytest

from repro.partitioning.graph import WorkloadGraph
from repro.partitioning.quality import (
    cut_fraction,
    edge_cut,
    imbalance,
    imbalance_by_label,
    part_weights,
    part_weights_by_label,
    weighted_hot_vertices,
)


def sample_graph():
    g = WorkloadGraph()
    g.add_vertex("a", 4.0)
    g.add_vertex("b", 3.0)
    g.add_vertex("c", 2.0)
    g.add_vertex("d", 1.0)
    g.add_edge("a", "b", 5.0)
    g.add_edge("b", "c", 2.0)
    g.add_edge("c", "d", 1.0)
    return g


class TestEdgeCut:
    def test_cut_counts_only_cross_part_edges(self):
        g = sample_graph()
        assignment = {"a": "p0", "b": "p0", "c": "p1", "d": "p1"}
        assert edge_cut(g, assignment) == 2.0
        assert cut_fraction(g, assignment) == pytest.approx(2.0 / 8.0)

    def test_label_and_index_metrics_agree(self):
        g = sample_graph()
        by_index = {"a": 0, "b": 0, "c": 1, "d": 1}
        by_label = {"a": "p0", "b": "p0", "c": "p1", "d": "p1"}
        assert edge_cut(g, by_index) == edge_cut(g, by_label)
        assert imbalance(g, by_index, 2) == pytest.approx(
            imbalance_by_label(g, by_label, 2)
        )
        assert part_weights(g, by_index, 2) == [7.0, 3.0]
        assert part_weights_by_label(g, by_label) == {"p0": 7.0, "p1": 3.0}


class TestImbalanceByLabel:
    def test_balanced_assignment_is_zero(self):
        g = WorkloadGraph()
        for name in "abcd":
            g.add_vertex(name, 1.0)
        assignment = {"a": "x", "b": "x", "c": "y", "d": "y"}
        assert imbalance_by_label(g, assignment, 2) == pytest.approx(0.0)

    def test_empty_parts_count_against_balance(self):
        g = WorkloadGraph()
        g.add_vertex("a", 1.0)
        g.add_vertex("b", 1.0)
        assignment = {"a": "x", "b": "x"}
        # all weight on one of four parts: max/ideal - 1 = 2/(2/4) - 1
        assert imbalance_by_label(g, assignment, 4) == pytest.approx(3.0)

    def test_unassigned_vertices_ignored(self):
        g = sample_graph()
        assert part_weights_by_label(g, {"a": "p0"}) == {"p0": 4.0}

    def test_zero_weight_graph_is_balanced(self):
        g = WorkloadGraph()
        assert imbalance_by_label(g, {}, 3) == 0.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            imbalance_by_label(WorkloadGraph(), {}, 0)


class TestWeightedHotVertices:
    def test_ranked_by_descending_weight(self):
        g = sample_graph()
        assert weighted_hot_vertices(g, 2) == [("a", 4.0), ("b", 3.0)]

    def test_n_larger_than_graph_returns_all(self):
        g = sample_graph()
        assert len(weighted_hot_vertices(g, 100)) == 4

    def test_nonpositive_n_returns_empty(self):
        g = sample_graph()
        assert weighted_hot_vertices(g, 0) == []
        assert weighted_hot_vertices(g, -1) == []

    def test_ties_break_deterministically_by_repr(self):
        g = WorkloadGraph()
        for name in ("z", "y", "x"):
            g.add_vertex(name, 1.0)
        assert weighted_hot_vertices(g, 3) == [
            ("x", 1.0),
            ("y", 1.0),
            ("z", 1.0),
        ]

    def test_tuple_vertices_supported(self):
        g = WorkloadGraph()
        g.add_vertex(("user", 7), 9.0)
        g.add_vertex(("user", 3), 1.0)
        assert weighted_hot_vertices(g, 1) == [(("user", 7), 9.0)]
