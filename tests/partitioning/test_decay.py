"""Tests for workload-graph weight decay (oracle adaptation memory)."""

import pytest

from repro.partitioning import WorkloadGraph


class TestScaleWeights:
    def test_scales_vertex_and_edge_weights(self):
        g = WorkloadGraph()
        g.add_vertex("a", 10.0)
        g.add_edge("a", "b", 4.0)
        g.scale_weights(0.5)
        assert g.vertex_weight("a") == 5.0
        assert g.edge_weight("a", "b") == 2.0
        assert g.total_edge_weight == pytest.approx(2.0)

    def test_vertices_floor_at_min_weight(self):
        g = WorkloadGraph()
        g.add_vertex("a", 1.0)
        g.scale_weights(0.0, min_weight=0.5)
        assert g.vertex_weight("a") == 0.5

    def test_tiny_edges_dropped(self):
        g = WorkloadGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "c", 100.0)
        g.scale_weights(0.001, min_weight=0.01)
        assert not g.has_edge("a", "b")
        assert g.has_edge("a", "c")
        assert g.num_edges == 1

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGraph().scale_weights(-1.0)

    def test_total_edge_weight_consistent_after_decay(self):
        g = WorkloadGraph.from_edges(
            [("a", "b", 2.0), ("b", "c", 4.0), ("c", "a", 6.0)]
        )
        g.scale_weights(0.5)
        assert g.total_edge_weight == pytest.approx(
            sum(w for _, _, w in g.edges())
        )

    def test_repeated_decay_converges_structure(self):
        g = WorkloadGraph.from_edges([("a", "b", 1.0)])
        for _ in range(10):
            g.scale_weights(0.1, min_weight=0.01)
        assert g.num_vertices == 2  # vertices persist (floored)
        assert g.num_edges == 0  # stale affinity forgotten


class TestOracleDecayIntegration:
    def test_decay_applied_after_plan(self):
        from repro.core.client import ScriptedWorkload
        from repro.smr import Command
        from tests.core.conftest import build_system

        system = build_system(
            n_keys=16, n_partitions=2, repartition=True, threshold=100
        )
        for rep in system.oracle_replicas():
            rep.graph_decay = 0.5
        cmds = [
            Command(f"c:{i}", "transfer", (f"k{2*(i%8)}", f"k{2*(i%8)+1}", 1))
            for i in range(100)
        ]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=60.0)
        assert client.completed == 100
        oracle = system.oracle_replicas()[0]
        assert oracle.version >= 1
        # decayed: accumulated weights are far below raw access counts
        total_weight = oracle.graph.total_vertex_weight
        assert total_weight < 100 * 2  # raw would be ~200+ without decay

    def test_invalid_decay_rejected(self):
        from repro.core import DynaStarSystem, SystemConfig
        from repro.smr import KeyValueApp

        with pytest.raises(ValueError):
            DynaStarSystem(
                KeyValueApp({"x": 0}),
                SystemConfig(n_partitions=1, graph_decay=1.5),
            )
