"""Tests for coarsening, initial partitioning, refinement, and the
multilevel driver."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning import (
    PartitionerStats,
    WorkloadGraph,
    edge_cut,
    imbalance,
    partition_graph,
)
from repro.partitioning.coarsen import IntGraph, coarsen, coarsen_to_size
from repro.partitioning.initial import greedy_growing
from repro.partitioning.metis import hash_partition, random_partition
from repro.partitioning.quality import cut_fraction
from repro.partitioning.refine import refine


def ring_graph(n, weight=1.0):
    g = WorkloadGraph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n, weight)
    return g


def clustered_graph(n_clusters=4, size=30, seed=1, p_intra=0.4, p_inter=0.01):
    """Dense clusters with sparse inter-cluster edges: an easy instance
    any decent partitioner must nearly separate."""
    rng = random.Random(seed)
    g = WorkloadGraph()
    for c in range(n_clusters):
        base = c * size
        for i in range(size):
            g.ensure_vertex(base + i)
        for i in range(size):
            for j in range(i + 1, size):
                if rng.random() < p_intra:
                    g.add_edge(base + i, base + j)
    for c in range(n_clusters):
        for d in range(c + 1, n_clusters):
            for _ in range(max(1, int(size * size * p_inter / 4))):
                g.add_edge(
                    c * size + rng.randrange(size), d * size + rng.randrange(size)
                )
    return g


def to_int_graph(g: WorkloadGraph):
    ids = list(g.vertices())
    index = {v: i for i, v in enumerate(ids)}
    adj = [dict() for _ in ids]
    for u, v, w in g.edges():
        adj[index[u]][index[v]] = w
        adj[index[v]][index[u]] = w
    return IntGraph(adj, [g.vertex_weight(v) for v in ids])


class TestCoarsen:
    def test_vertex_weight_conserved(self):
        g = to_int_graph(ring_graph(40))
        coarse, _ = coarsen(g, random.Random(1))
        assert coarse.total_vwgt == pytest.approx(g.total_vwgt)

    def test_mapping_is_total_and_onto(self):
        g = to_int_graph(ring_graph(40))
        coarse, mapping = coarsen(g, random.Random(1))
        assert len(mapping) == g.n
        assert set(mapping) == set(range(coarse.n))

    def test_graph_shrinks(self):
        g = to_int_graph(ring_graph(100))
        coarse, _ = coarsen(g, random.Random(1))
        assert coarse.n < g.n

    def test_internal_edges_disappear_weights_conserved_or_hidden(self):
        # Sum of coarse edge weights + hidden matched-edge weights == fine sum.
        g = to_int_graph(ring_graph(20, weight=2.0))
        fine_total = sum(sum(r.values()) for r in g.adj) / 2
        coarse, mapping = coarsen(g, random.Random(3))
        coarse_total = sum(sum(r.values()) for r in coarse.adj) / 2
        assert coarse_total <= fine_total

    def test_coarsen_to_size_reaches_target(self):
        g = to_int_graph(clustered_graph())
        levels, maps = coarsen_to_size(g, target=30, rng=random.Random(1))
        assert levels[-1].n <= max(30, levels[-2].n if len(levels) > 1 else 30)
        assert len(maps) == len(levels) - 1

    def test_coarsen_stops_on_stall(self):
        # A star cannot be matched below ~n/2 repeatedly; must not loop.
        g = WorkloadGraph()
        for i in range(1, 50):
            g.add_edge(0, i)
        levels, _ = coarsen_to_size(to_int_graph(g), target=2, rng=random.Random(1))
        assert len(levels) < 50  # terminated


class TestInitialPartition:
    def test_assignment_covers_all_vertices(self):
        g = to_int_graph(clustered_graph())
        assignment = greedy_growing(g, 4, random.Random(1))
        assert len(assignment) == g.n
        assert all(0 <= p < 4 for p in assignment)

    def test_all_parts_nonempty_on_reasonable_graph(self):
        g = to_int_graph(clustered_graph())
        assignment = greedy_growing(g, 4, random.Random(1))
        assert len(set(assignment)) == 4

    def test_k_equals_one(self):
        g = to_int_graph(ring_graph(10))
        assert greedy_growing(g, 1, random.Random(1)) == [0] * 10

    def test_k_larger_than_n(self):
        g = to_int_graph(ring_graph(3))
        assignment = greedy_growing(g, 8, random.Random(1))
        assert len(set(assignment)) == 3  # each vertex its own part

    def test_disconnected_graph_handled(self):
        g = WorkloadGraph()
        for c in range(4):  # 4 disjoint triangles
            g.add_edge((c, 0), (c, 1))
            g.add_edge((c, 1), (c, 2))
            g.add_edge((c, 0), (c, 2))
        assignment = greedy_growing(to_int_graph(g), 2, random.Random(1))
        assert len(assignment) == 12


class TestRefine:
    def test_refinement_never_increases_cut(self):
        for seed in range(5):
            g = to_int_graph(clustered_graph(seed=seed))
            rng = random.Random(seed)
            assignment = [rng.randrange(4) for _ in range(g.n)]
            before = g.edge_cut(assignment)
            refined = refine(g, list(assignment), 4, imbalance=0.2)
            after = g.edge_cut(refined)
            assert after <= before

    def test_refinement_improves_random_assignment(self):
        g = to_int_graph(clustered_graph(seed=7))
        rng = random.Random(7)
        assignment = [rng.randrange(4) for _ in range(g.n)]
        before = g.edge_cut(assignment)
        after = g.edge_cut(refine(g, list(assignment), 4))
        assert after < before

    def test_refine_k1_noop(self):
        g = to_int_graph(ring_graph(10))
        assert refine(g, [0] * 10, 1) == [0] * 10


class TestPartitionGraphDriver:
    def test_partition_covers_every_vertex(self):
        g = clustered_graph()
        p = partition_graph(g, 4, seed=1)
        assert set(p.assignment) == set(g.vertices())

    def test_partition_respects_k_range(self):
        g = clustered_graph()
        p = partition_graph(g, 4, seed=1)
        assert set(p.assignment.values()) <= set(range(4))

    def test_beats_random_on_clustered_graph(self):
        g = clustered_graph(seed=5)
        optimized = partition_graph(g, 4, seed=1)
        rand = random_partition(g, 4, seed=1)
        assert optimized.edge_cut(g) < 0.5 * rand.edge_cut(g)

    def test_nearly_separates_clusters(self):
        g = clustered_graph(seed=9)
        p = partition_graph(g, 4, seed=2)
        assert cut_fraction(g, p.assignment) < 0.15

    def test_balance_constraint_met_on_uniform_weights(self):
        g = clustered_graph(seed=3)
        p = partition_graph(g, 4, imbalance=0.2, seed=1)
        assert p.imbalance(g) <= 0.25  # small slack over the 20% target

    def test_deterministic_given_seed(self):
        g = clustered_graph(seed=2)
        p1 = partition_graph(g, 4, seed=11)
        p2 = partition_graph(g, 4, seed=11)
        assert p1.assignment == p2.assignment

    def test_k1(self):
        g = ring_graph(10)
        p = partition_graph(g, 1)
        assert set(p.assignment.values()) == {0}

    def test_empty_graph(self):
        p = partition_graph(WorkloadGraph(), 4)
        assert p.assignment == {}

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            partition_graph(WorkloadGraph(), 0)

    def test_stats_populated(self):
        g = clustered_graph()
        stats = PartitionerStats()
        partition_graph(g, 4, seed=1, stats=stats)
        assert stats.n_vertices == g.num_vertices
        assert stats.levels >= 1
        assert stats.final_cut >= 0
        assert stats.elapsed_seconds > 0

    def test_weighted_vertices_balance_on_weight(self):
        g = WorkloadGraph()
        # two heavy vertices and many light ones; heavy ones must split
        g.add_vertex("h1", 100.0)
        g.add_vertex("h2", 100.0)
        for i in range(20):
            g.add_edge("h1", f"a{i}")
            g.add_edge("h2", f"b{i}")
        p = partition_graph(g, 2, seed=1)
        assert p.assignment["h1"] != p.assignment["h2"]

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_any_seed_produces_valid_partition(self, seed):
        g = clustered_graph(n_clusters=3, size=12, seed=seed % 7)
        p = partition_graph(g, 3, seed=seed)
        assert set(p.assignment) == set(g.vertices())
        assert set(p.assignment.values()) <= {0, 1, 2}


class TestBaselinesPlacement:
    def test_random_partition_covers_all(self):
        g = clustered_graph()
        p = random_partition(g, 4, seed=1)
        assert set(p.assignment) == set(g.vertices())

    def test_hash_partition_deterministic(self):
        g = clustered_graph()
        assert hash_partition(g, 4).assignment == hash_partition(g, 4).assignment


class TestQualityFunctions:
    def test_edge_cut_and_imbalance_helpers(self):
        g = WorkloadGraph.from_edges([("a", "b", 2.0), ("b", "c", 1.0)])
        assignment = {"a": 0, "b": 1, "c": 1}
        assert edge_cut(g, assignment) == 2.0
        assert imbalance(g, assignment, 2) >= 0.0

    def test_cut_fraction_zero_for_empty(self):
        assert cut_fraction(WorkloadGraph(), {}) == 0.0
