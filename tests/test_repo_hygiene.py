"""Repository hygiene checks.

Guards against the class of rot that produced the stale
``src/repro/elastic/`` leftover (a package directory holding only a
``__pycache__``, invisible to git but shadowing imports): every package
directory under ``src/repro`` must contain real source files and an
``__init__.py`` that git actually tracks.
"""

import subprocess
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


def _git_tracked_files() -> set:
    """Paths (relative to the repo root) git tracks, or None when the
    test runs outside a git checkout (e.g. an unpacked sdist)."""
    try:
        out = subprocess.run(
            ["git", "ls-files", "-z", "src/repro"],
            cwd=REPO_ROOT,
            capture_output=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return {p for p in out.stdout.decode().split("\0") if p}


def _package_dirs() -> list:
    """Every directory under src/repro (inclusive) that is, or should
    be, a python package — i.e. not a __pycache__."""
    dirs = [SRC_REPRO]
    for path in sorted(SRC_REPRO.rglob("*")):
        if path.is_dir() and path.name != "__pycache__":
            dirs.append(path)
    return dirs


def test_every_package_dir_has_init():
    missing = [
        str(d.relative_to(REPO_ROOT))
        for d in _package_dirs()
        if not (d / "__init__.py").is_file()
    ]
    assert not missing, f"package dirs without __init__.py: {missing}"


def test_every_package_init_is_tracked_in_git():
    tracked = _git_tracked_files()
    if tracked is None:
        return  # not a git checkout; the filesystem check above suffices
    untracked = []
    for d in _package_dirs():
        rel = (d / "__init__.py").relative_to(REPO_ROOT).as_posix()
        if rel not in tracked:
            untracked.append(rel)
    assert not untracked, f"package __init__.py not tracked by git: {untracked}"


def test_no_pycache_only_package_dirs():
    """A directory whose only content is __pycache__ is a stale leftover
    of a deleted package (the src/repro/elastic failure mode)."""
    stale = []
    for path in sorted(SRC_REPRO.rglob("*")):
        if not path.is_dir() or path.name == "__pycache__":
            continue
        entries = [p for p in path.iterdir() if p.name != "__pycache__"]
        if not entries:
            stale.append(str(path.relative_to(REPO_ROOT)))
    assert not stale, f"stale __pycache__-only package dirs: {stale}"
