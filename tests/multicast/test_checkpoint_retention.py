"""Checkpoint-aware retention of the multicast timestamp cache.

`MulticastReplica._adelivered_ts` exists only to re-answer duplicate
OrderEvent probes from peer groups; without compaction it grows with
every multi-group message ever a-delivered.  With checkpointing on,
entries are pruned two checkpoints after delivery (one full interval of
grace), so the cache stays bounded while ordering stays intact."""

import random

from repro.consensus.group import GroupConfig
from repro.consensus.paxos import ReplicaConfig
from repro.multicast import GroupDirectory
from repro.sim import ConstantLatency, Network, Simulator
from repro.sim.actors import Actor


class Sender(Actor):
    def on_message(self, sender, message):
        pass


def build(checkpoint_interval, n_groups=2, seed=1):
    sim = Simulator()
    net = Network(sim, default_latency=ConstantLatency(0.001), rng=random.Random(seed))
    directory = GroupDirectory(net)
    logs = {}

    def record(rep_name, msg):
        logs.setdefault(rep_name, []).append(msg.payload)

    config = GroupConfig(
        replica=ReplicaConfig(checkpoint_interval=checkpoint_interval, max_batch=1)
    )
    for i in range(n_groups):
        directory.create_group(
            f"g{i}",
            config=config,
            on_adeliver=record,
            rng=random.Random(seed * 100 + i),
        )
    directory.start()
    sender = net.register(Sender("client0"))
    return sim, directory, sender, logs


def amcast_many(sim, directory, sender, n, gap=0.02):
    for i in range(n):
        msg = directory.make_message(["g0", "g1"], f"m{i}")
        sim.schedule_at(i * gap, lambda m=msg: directory.amcast(sender, m))
    sim.run(until=n * gap + 5.0)


class TestTimestampRetention:
    def test_cache_is_pruned_with_checkpointing_on(self):
        sim, directory, sender, logs = build(checkpoint_interval=4)
        amcast_many(sim, directory, sender, 30)
        for name in ("g0", "g1"):
            for replica in directory.groups[name].replicas:
                assert len(replica.adelivered_uids) == 30
                # two-generation pruning: far fewer than all-time entries
                assert len(replica._adelivered_ts) < 30, (
                    f"{replica.name} retains {len(replica._adelivered_ts)} ts entries"
                )

    def test_cache_grows_unbounded_with_checkpointing_off(self):
        sim, directory, sender, logs = build(checkpoint_interval=0)
        amcast_many(sim, directory, sender, 30)
        replica = directory.groups["g0"].replicas[0]
        assert len(replica._adelivered_ts) == 30

    def test_ordering_agreement_survives_pruning(self):
        sim, directory, sender, logs = build(checkpoint_interval=4)
        amcast_many(sim, directory, sender, 30)
        g0_logs = [
            logs[name] for name in directory.groups["g0"].replica_names
        ]
        g1_logs = [
            logs[name] for name in directory.groups["g1"].replica_names
        ]
        assert all(log == g0_logs[0] for log in g0_logs)
        assert all(log == g1_logs[0] for log in g1_logs)
        # multi-group messages a-deliver in the same relative order on
        # both destination groups (the atomic multicast guarantee)
        assert g0_logs[0] == g1_logs[0]
        assert set(g0_logs[0]) == {f"m{i}" for i in range(30)}
