"""Hypothesis-driven schedule exploration for the atomic multicast: for
arbitrary destination sets and submission times, the six §2.2 properties
must hold."""

import itertools
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import LogNormalLatency

from tests.multicast.conftest import make_harness

message_plan = st.lists(
    st.tuples(
        st.sets(st.sampled_from(["g0", "g1", "g2"]), min_size=1, max_size=3),
        st.floats(0.0, 1.0),
    ),
    min_size=1,
    max_size=15,
)


@given(plan=message_plan, seed=st.integers(0, 1000))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_multicast_properties_hold_for_arbitrary_plans(plan, seed):
    h = make_harness(
        n_groups=3, latency=LogNormalLatency(0.002, sigma=0.5), seed=seed
    )
    sent = []
    for i, (dests, at) in enumerate(plan):
        msg = h.directory.make_message(sorted(dests), f"p{i}", uid=f"m{i}")
        h.sim.schedule(at, h.directory.amcast, h.sender, msg)
        sent.append(msg)
    h.run(25.0)

    # Validity: every destination replica delivered every addressed message.
    for msg in sent:
        for group_name in msg.dests:
            for rep in h.directory.groups[group_name].replica_names:
                uids = [m.uid for m in h.logs.get(rep, [])]
                assert msg.uid in uids

    # Integrity: no duplicates, nothing spontaneous.
    sent_uids = {m.uid for m in sent}
    for rep, log in h.logs.items():
        uids = [m.uid for m in log]
        assert len(uids) == len(set(uids))
        assert set(uids) <= sent_uids

    # Atomic/prefix order: pairwise-consistent relative order everywhere.
    orders = {
        rep: {m.uid: i for i, m in enumerate(log)} for rep, log in h.logs.items()
    }
    reps = list(orders)
    for a, b in itertools.combinations(reps, 2):
        common = set(orders[a]) & set(orders[b])
        for m1, m2 in itertools.combinations(sorted(common), 2):
            assert (orders[a][m1] < orders[a][m2]) == (
                orders[b][m1] < orders[b][m2]
            ), (a, b, m1, m2)
