"""Property-style tests for the atomic multicast ordering guarantees:
acyclic (atomic) order and prefix order across overlapping destination
sets, under randomized latency, submission times and destination sets."""

import itertools
import random

import pytest

from repro.sim import LogNormalLatency

from tests.multicast.conftest import make_harness


def pairwise_order_consistent(logs):
    """Check that for every pair of messages delivered by two replicas,
    their relative order agrees (prefix order / acyclicity witness)."""
    orders = {}
    for name, log in logs.items():
        orders[name] = {m.uid: i for i, m in enumerate(log)}
    names = list(orders)
    for a, b in itertools.combinations(names, 2):
        common = set(orders[a]) & set(orders[b])
        for m1, m2 in itertools.combinations(sorted(common), 2):
            first_a = orders[a][m1] < orders[a][m2]
            first_b = orders[b][m1] < orders[b][m2]
            if first_a != first_b:
                return False, (a, b, m1, m2)
    return True, None


def run_random_workload(seed, n_groups=3, n_msgs=40, latency_sigma=0.6, until=20.0):
    h = make_harness(
        n_groups=n_groups,
        latency=LogNormalLatency(0.002, sigma=latency_sigma),
        seed=seed,
    )
    rng = random.Random(seed)
    group_names = [f"g{i}" for i in range(n_groups)]
    sent = []
    for i in range(n_msgs):
        k = rng.choice([1, 1, 1, 2, 2, 3][: n_groups * 2])
        k = min(k, n_groups)
        dests = rng.sample(group_names, k)
        at = rng.uniform(0, 1.0)
        payload = f"p{i}"
        msg = h.directory.make_message(dests, payload, uid=f"m{i}")
        h.sim.schedule(at, h.directory.amcast, h.sender, msg)
        sent.append(msg)
    h.run(until)
    return h, sent


class TestAtomicAndPrefixOrder:
    @pytest.mark.parametrize("seed", [1, 2, 3, 5, 8, 13, 21, 42])
    def test_pairwise_consistent_order_across_all_replicas(self, seed):
        h, sent = run_random_workload(seed)
        ok, witness = pairwise_order_consistent(h.logs)
        assert ok, f"order cycle between replicas: {witness}"

    @pytest.mark.parametrize("seed", [1, 7, 19])
    def test_validity_every_destination_delivers(self, seed):
        h, sent = run_random_workload(seed)
        for msg in sent:
            for group_name in msg.dests:
                group = h.directory.groups[group_name]
                for rep in group.replica_names:
                    uids = [m.uid for m in h.logs.get(rep, [])]
                    assert msg.uid in uids, (
                        f"{rep} missing {msg.uid} addressed to {msg.dests}"
                    )

    @pytest.mark.parametrize("seed", [1, 7, 19])
    def test_integrity_no_duplicates(self, seed):
        h, sent = run_random_workload(seed)
        for rep, log in h.logs.items():
            uids = [m.uid for m in log]
            assert len(uids) == len(set(uids))

    @pytest.mark.parametrize("seed", [4, 9])
    def test_replicas_of_same_group_identical_order(self, seed):
        h, _ = run_random_workload(seed)
        for group in h.directory.groups.values():
            logs = [
                [m.uid for m in h.logs.get(rep, [])] for rep in group.replica_names
            ]
            assert logs[0] == logs[1]


class TestUnderLeaderCrash:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_agreement_survives_group_leader_crash(self, seed):
        h = make_harness(
            n_groups=2, latency=LogNormalLatency(0.002, sigma=0.4), seed=seed
        )
        rng = random.Random(seed)
        for i in range(20):
            dests = ["g0", "g1"] if i % 3 == 0 else [rng.choice(["g0", "g1"])]
            msg = h.directory.make_message(dests, f"p{i}", uid=f"m{i}")
            h.sim.schedule(rng.uniform(0, 1.0), h.directory.amcast, h.sender, msg)
        # Crash g0's initial leader mid-stream.
        h.sim.schedule(0.5, h.group(0).replicas[0].crash)
        h.run(30.0)
        # Surviving replica of g0 and both replicas of g1 agree pairwise.
        live_logs = {
            name: log
            for name, log in h.logs.items()
            if not h.net.actor(name).crashed
        }
        ok, witness = pairwise_order_consistent(live_logs)
        assert ok, witness
        # Validity: survivor of g0 delivered everything addressed to g0.
        survivor = h.group(0).replica_names[1]
        delivered = {m.uid for m in h.logs.get(survivor, [])}
        expected = {f"m{i}" for i in range(20) if i % 3 == 0} | {
            f"m{i}"
            for i in range(20)
            if i % 3 != 0
        }
        # every message addressed to g0 must be there; compute precisely:
        rng2 = random.Random(seed)
        for i in range(20):
            dests = ["g0", "g1"] if i % 3 == 0 else [rng2.choice(["g0", "g1"])]
            rng2.uniform(0, 1.0)
            if "g0" in dests:
                assert f"m{i}" in delivered, f"m{i} lost after leader crash"


class TestSkeenClockBehaviour:
    def test_clock_monotone_across_remote_ts(self):
        h = make_harness(n_groups=2)
        for i in range(10):
            h.amcast(["g0", "g1"], f"p{i}")
        h.run(5.0)
        for group in h.directory.groups.values():
            for rep in group.replicas:
                assert rep.clock >= 10

    def test_pending_drains_completely(self):
        h = make_harness(n_groups=2)
        for i in range(15):
            h.amcast(["g0", "g1"] if i % 2 else ["g0"], f"p{i}")
        h.run(5.0)
        for group in h.directory.groups.values():
            for rep in group.replicas:
                assert rep.pending_msgs == {}
