"""Functional tests for the BaseCast atomic multicast."""

import random

import pytest

from repro.multicast.messages import MulticastMessage
from repro.sim import LogNormalLatency

from tests.multicast.conftest import MulticastHarness, make_harness


class TestMessageValidation:
    def test_empty_dests_rejected(self):
        with pytest.raises(ValueError):
            MulticastMessage(uid="m", dests=(), payload=None)

    def test_unsorted_dests_rejected(self):
        with pytest.raises(ValueError):
            MulticastMessage(uid="m", dests=("g1", "g0"), payload=None)

    def test_fifo_seqs_must_match_dests(self):
        with pytest.raises(ValueError):
            MulticastMessage(
                uid="m",
                dests=("g0", "g1"),
                payload=None,
                fifo_key="c",
                fifo_seqs=(("g0", 0),),
            )

    def test_single_group_flag(self):
        m = MulticastMessage(uid="m", dests=("g0",), payload=None)
        assert m.is_single_group


class TestSingleGroupDelivery:
    def test_message_reaches_all_replicas_of_dest(self, harness):
        harness.amcast(["g0"], "hello")
        harness.run(1.0)
        assert harness.payloads(0, 0) == ["hello"]
        assert harness.payloads(0, 1) == ["hello"]

    def test_non_destination_group_never_delivers(self, harness):
        harness.amcast(["g0"], "hello")
        harness.run(1.0)
        assert harness.payloads(1, 0) == []
        assert harness.payloads(1, 1) == []

    def test_stream_of_messages_all_delivered(self, harness):
        for i in range(30):
            harness.amcast(["g0"], f"p{i}")
        harness.run(2.0)
        assert sorted(harness.payloads(0, 0)) == sorted(f"p{i}" for i in range(30))

    def test_replicas_deliver_same_order(self, harness):
        for i in range(30):
            harness.amcast(["g0"], f"p{i}")
        harness.run(2.0)
        assert harness.payloads(0, 0) == harness.payloads(0, 1)


class TestMultiGroupDelivery:
    def test_two_group_message_delivered_everywhere(self, harness):
        harness.amcast(["g0", "g1"], "both")
        harness.run(2.0)
        for g in (0, 1):
            for r in (0, 1):
                assert harness.payloads(g, r) == ["both"]

    def test_three_group_message(self):
        h = make_harness(n_groups=3)
        h.amcast(["g0", "g1", "g2"], "tri")
        h.run(2.0)
        for g in range(3):
            assert h.payloads(g, 0) == ["tri"]

    def test_mixed_single_and_multi(self, harness):
        harness.amcast(["g0"], "s0")
        harness.amcast(["g0", "g1"], "m01")
        harness.amcast(["g1"], "s1")
        harness.run(2.0)
        assert sorted(harness.payloads(0, 0)) == ["m01", "s0"]
        assert sorted(harness.payloads(1, 0)) == ["m01", "s1"]

    def test_integrity_no_duplicates_no_spontaneous(self, harness):
        msgs = [harness.amcast(["g0", "g1"], f"p{i}") for i in range(10)]
        harness.run(3.0)
        sent_uids = {m.uid for m in msgs}
        for g in (0, 1):
            for r in (0, 1):
                uids = [m.uid for m in harness.log_of(g, r)]
                assert len(uids) == len(set(uids)), "duplicate a-delivery"
                assert set(uids) <= sent_uids, "delivered a message never sent"
                assert len(uids) == 10

    def test_duplicate_amcast_of_same_uid_delivered_once(self, harness):
        msg = harness.directory.make_message(["g0"], "dup", uid="fixed")
        harness.directory.amcast(harness.sender, msg)
        harness.directory.amcast(harness.sender, msg)
        harness.run(2.0)
        assert harness.payloads(0, 0) == ["dup"]


class TestCostAsymmetry:
    """Single-group messages must be cheaper than multi-group ones —
    the asymmetry DynaStar's design exploits."""

    def test_single_group_delivers_faster_than_multi(self):
        h = make_harness(n_groups=2)
        h.amcast(["g0"], "single")
        h.amcast(["g0", "g1"], "multi")
        h.run(2.0)
        # Multi-group needs an extra consensus round for remote timestamps.
        assert h.first_delivery["single"] < h.first_delivery["multi"]

    def test_multi_group_costs_more_network_messages(self):
        h1 = make_harness(n_groups=2)
        h1.run(1.0)
        base = h1.net.messages_sent
        h1.amcast(["g0"], "s")
        h1.run(2.0)
        single_cost = h1.net.messages_sent - base

        h2 = make_harness(n_groups=2)
        h2.run(1.0)
        base = h2.net.messages_sent
        h2.amcast(["g0", "g1"], "m")
        h2.run(2.0)
        multi_cost = h2.net.messages_sent - base

        # Subtract ~heartbeat noise by requiring a clear factor.
        assert multi_cost > 1.5 * single_cost


class TestGenuineness:
    def test_uninvolved_group_exchanges_no_protocol_messages(self):
        h = make_harness(n_groups=3)
        h.run(0.5)
        g2 = h.group(2)
        decided_before = [len(r.decided) for r in g2.replicas]
        for i in range(10):
            h.amcast(["g0", "g1"], f"p{i}")
        h.run(3.0)
        # g2 replicas ordered nothing and a-delivered nothing.
        assert [len(r.decided) for r in g2.replicas] == decided_before
        assert all(r.adelivered_count == 0 for r in g2.replicas)


class TestFifoOrder:
    def test_fifo_same_destination(self, harness):
        for i in range(10):
            harness.amcast(["g0"], i, fifo=True)
        harness.run(2.0)
        assert harness.payloads(0, 0) == list(range(10))

    def test_fifo_across_disjoint_destinations_not_blocking(self, harness):
        harness.amcast(["g0"], "to-g0", fifo=True)
        harness.amcast(["g1"], "to-g1", fifo=True)
        harness.run(2.0)
        assert harness.payloads(0, 0) == ["to-g0"]
        assert harness.payloads(1, 0) == ["to-g1"]

    def test_fifo_interleaved_single_and_multi(self, harness):
        harness.amcast(["g0"], "a", fifo=True)
        harness.amcast(["g0", "g1"], "b", fifo=True)
        harness.amcast(["g0"], "c", fifo=True)
        harness.run(3.0)
        p0 = harness.payloads(0, 0)
        assert p0 == ["a", "b", "c"]
        assert harness.payloads(1, 0) == ["b"]

    def test_two_senders_fifo_independent(self, harness):
        from tests.multicast.conftest import Sender

        c2 = harness.net.register(Sender("client1"))
        harness.amcast(["g0"], "a1", fifo=True)
        harness.amcast(["g0"], "b1", fifo=True, sender=c2)
        harness.amcast(["g0"], "a2", fifo=True)
        harness.run(2.0)
        p = harness.payloads(0, 0)
        assert p.index("a1") < p.index("a2")
        assert set(p) == {"a1", "b1", "a2"}
