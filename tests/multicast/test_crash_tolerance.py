"""Atomic multicast under crash faults: the retransmit path, uniform
agreement with a crashed replica, and recovery of in-flight multi-group
messages."""

import random

import pytest

from repro.sim import LogNormalLatency

from tests.multicast.conftest import make_harness


class TestLeaderCrashMidMulticast:
    def test_multi_group_message_survives_sender_group_leader_crash(self):
        h = make_harness(n_groups=2, n_replicas=3)
        # Crash g0's leader right away; the message must still be
        # timestamped (new leader) and delivered by both groups.
        h.group(0).replicas[0].crash()
        h.amcast(["g0", "g1"], "survivor")
        h.run(20.0)
        for g in (0, 1):
            for r in (1, 2) if g == 0 else (0, 1):
                assert "survivor" in [m.payload for m in h.log_of(g, r)], (g, r)

    def test_remote_ts_retransmission_after_crash_window(self):
        """The leader-only RemoteTs send is covered by the periodic
        retransmitter when leadership changes mid-protocol."""
        h = make_harness(n_groups=2, n_replicas=3)
        h.amcast(["g0", "g1"], "m1")
        # Crash g0's leader very early, possibly before the ts exchange.
        h.sim.schedule(0.0015, h.group(0).replicas[0].crash)
        h.run(30.0)
        assert "m1" in [m.payload for m in h.log_of(0, 1)]
        assert "m1" in [m.payload for m in h.log_of(1, 0)]

    def test_throughput_continues_after_crash(self):
        h = make_harness(n_groups=2, n_replicas=3)
        for i in range(10):
            h.amcast(["g0"], f"pre{i}")
        h.run(2.0)
        h.group(0).replicas[0].crash()
        h.run(5.0)
        for i in range(10):
            h.amcast(["g0"], f"post{i}")
            h.amcast(["g0", "g1"], f"multi{i}")
        h.run(30.0)
        delivered = [m.payload for m in h.log_of(0, 1)]
        assert all(f"post{i}" in delivered for i in range(10))
        assert all(f"multi{i}" in delivered for i in range(10))


class TestAgreementWithCrashes:
    @pytest.mark.parametrize("seed", [3, 8])
    def test_surviving_replicas_agree(self, seed):
        h = make_harness(
            n_groups=3,
            n_replicas=3,
            latency=LogNormalLatency(0.002, sigma=0.5),
            seed=seed,
        )
        rng = random.Random(seed)
        for i in range(25):
            k = rng.choice([1, 1, 2, 3])
            dests = sorted(rng.sample(["g0", "g1", "g2"], k))
            msg = h.directory.make_message(dests, f"p{i}", uid=f"m{i}")
            h.sim.schedule(rng.uniform(0, 1.5), h.directory.amcast, h.sender, msg)
        h.sim.schedule(0.7, h.group(seed % 3).replicas[0].crash)
        h.run(40.0)
        for g in range(3):
            live = [
                r for r in h.group(g).replicas if not r.crashed
            ]
            logs = [
                [m.uid for m in h.logs.get(r.name, [])] for r in live
            ]
            assert all(log == logs[0] for log in logs), f"group g{g} diverged"
            # validity for the group's addressed messages
            rng2 = random.Random(seed)
            for i in range(25):
                k = rng2.choice([1, 1, 2, 3])
                dests = sorted(rng2.sample(["g0", "g1", "g2"], k))
                rng2.uniform(0, 1.5)
                if f"g{g}" in dests:
                    assert f"m{i}" in logs[0], (g, i)
