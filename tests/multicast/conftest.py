"""Shared fixtures for atomic multicast tests."""

import random

import pytest

from repro.consensus.group import GroupConfig
from repro.multicast import GroupDirectory
from repro.sim import ConstantLatency, Network, Simulator
from repro.sim.actors import Actor


class Sender(Actor):
    """A test client that a-mcasts and records nothing."""

    def on_message(self, sender, message):
        pass


class MulticastHarness:
    """N multicast groups + per-replica a-delivery logs."""

    def __init__(self, n_groups=2, latency=None, seed=1, n_replicas=2):
        self.sim = Simulator()
        self.net = Network(
            self.sim,
            default_latency=latency or ConstantLatency(0.001),
            rng=random.Random(seed),
        )
        self.directory = GroupDirectory(self.net)
        self.logs: dict[str, list] = {}
        self.first_delivery: dict = {}

        def record(rep_name, msg):
            self.logs.setdefault(rep_name, []).append(msg)
            self.first_delivery.setdefault(msg.payload, self.sim.now)

        for i in range(n_groups):
            self.directory.create_group(
                f"g{i}",
                config=GroupConfig(n_replicas=n_replicas),
                on_adeliver=record,
                rng=random.Random(seed * 100 + i),
            )
        self.directory.start()
        self.sender = self.net.register(Sender("client0"))

    def amcast(self, dests, payload, fifo=False, sender=None):
        sender = sender or self.sender
        msg = self.directory.make_message(
            dests, payload, fifo_key=sender.name if fifo else ""
        )
        self.directory.amcast(sender, msg)
        return msg

    def group(self, i):
        return self.directory.groups[f"g{i}"]

    def log_of(self, group_index, replica_index=0):
        name = self.group(group_index).replica_names[replica_index]
        return self.logs.get(name, [])

    def payloads(self, group_index, replica_index=0):
        return [m.payload for m in self.log_of(group_index, replica_index)]

    def run(self, until):
        self.sim.run(until=until)


@pytest.fixture
def harness():
    return MulticastHarness()


def make_harness(**kwargs):
    return MulticastHarness(**kwargs)
