"""End-to-end correctness of the compartmentalized read path: local
reads return linearizable values, spread across the learner fleet, and
the whole subsystem is a strict no-op when disabled."""

import random

from repro.compartment import CompartmentConfig
from repro.core.client import ScriptedWorkload
from repro.smr import Command, History, check_linearizable

from tests.core.conftest import assert_replicas_agree
from tests.faults.conftest import assert_no_stuck_clients, build_chaos_system

N_KEYS = 8
STAGE_COUNTERS = ("proxy{", "reads{", "lease{", "learner_reads{")


def build_compartment_system(**compartment_kwargs):
    compartment_kwargs.setdefault("enabled", True)
    compartment_kwargs.setdefault("n_learners", 3)
    return build_chaos_system(
        n_keys=N_KEYS,
        n_partitions=2,
        seed=3,
        client_timeout=0.5,
        client_timeout_cap=2.0,
        idempotency_keys=True,
        compartment=CompartmentConfig(**compartment_kwargs),
    )


def read_heavy_scripts(n_clients=4, n_commands=40, read_fraction=0.85, seed=7):
    rng = random.Random(seed)
    keys = [f"k{i}" for i in range(N_KEYS)]
    scripts = []
    for c in range(n_clients):
        cmds = []
        for i in range(n_commands):
            key = rng.choice(keys)
            if rng.random() < read_fraction:
                cmds.append(Command(f"c{c}:{i}", "read", (key,)))
            else:
                cmds.append(Command(f"c{c}:{i}", "write", (key, c * 1000 + i)))
        scripts.append(cmds)
    return scripts


def run_scripts(system, scripts, until=60.0):
    history = History()
    clients = [
        system.add_client(ScriptedWorkload(cmds), history=history)
        for cmds in scripts
    ]
    system.run(until=until)
    return history, clients


class TestLocalReads:
    def test_local_reads_served_and_linearizable(self):
        system = build_compartment_system()
        scripts = read_heavy_scripts()
        history, clients = run_scripts(system, scripts)

        assert_no_stuck_clients(system)
        for client, cmds in zip(clients, scripts):
            assert client.completed == len(cmds)
            assert client.failed == 0
        local_dispatched = sum(c.local_reads for c in system.clients)
        assert local_dispatched > 0, "no read ever took the local path"
        counters = system.monitor.snapshot()["counters"]
        local_ok = sum(
            v for k, v in counters.items()
            if k.startswith("reads{") and "event=local_ok" in k
        )
        assert local_ok > 0, "local reads dispatched but none served"
        granted = sum(
            v for k, v in counters.items()
            if k.startswith("lease{") and "event=granted" in k
        )
        assert granted >= len(system.partition_names)
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)

    def test_reads_spread_across_learner_fleet(self):
        system = build_compartment_system(n_learners=3)
        # Plenty of reads so the uid hash touches every learner.
        scripts = read_heavy_scripts(n_clients=6, n_commands=50)
        run_scripts(system, scripts)

        assert_no_stuck_clients(system)
        counters = system.monitor.snapshot()["counters"]
        per_learner = {
            k: v for k, v in counters.items() if k.startswith("learner_reads{")
        }
        served = [k for k, v in per_learner.items() if v > 0]
        # 2 partitions x 3 learners: the hash spread must reach most of
        # the fleet, not funnel everything through one learner.
        assert len(served) >= 4, f"reads funneled into {served}"

    def test_learner_mirrors_converge_to_replica_state(self):
        system = build_compartment_system()
        scripts = read_heavy_scripts(read_fraction=0.5)
        run_scripts(system, scripts)

        assert_no_stuck_clients(system)
        for partition in system.partition_names:
            baseline = dict(system.servers(partition)[0].store.items())
            for learner in system.directory.groups[partition].learners:
                assert dict(learner.store.items()) == baseline, (
                    f"{learner.name} diverged from {partition}"
                )

    def test_lease_disabled_routes_all_reads_through_order(self):
        system = build_compartment_system(lease_enabled=False)
        scripts = read_heavy_scripts()
        history, clients = run_scripts(system, scripts)

        assert_no_stuck_clients(system)
        for client, cmds in zip(clients, scripts):
            assert client.completed == len(cmds)
        assert sum(c.local_reads for c in system.clients) == 0
        counters = system.monitor.snapshot()["counters"]
        assert not any("event=local_ok" in k for k in counters)
        # Proxies still batch the ordered traffic in this ablation arm.
        assert any(k.startswith("proxy{") for k in counters)
        assert check_linearizable(history, system.app)

    def test_proxy_stage_carries_client_traffic(self):
        system = build_compartment_system()
        scripts = read_heavy_scripts()
        run_scripts(system, scripts)

        counters = system.monitor.snapshot()["counters"]
        submits = sum(
            v for k, v in counters.items()
            if k.startswith("proxy{") and "event=submit" in k
        )
        batches = sum(
            v for k, v in counters.items()
            if k.startswith("proxy{") and "event=batch" in k
        )
        assert submits > 0 and batches > 0
        # Batching may only coalesce, never multiply.
        assert batches <= submits

    def test_disabled_config_leaves_zero_footprint(self):
        # The off switch must be total: no stage actors registered and
        # no compartment counter families in the metrics snapshot, so
        # seeded baseline traces stay byte-identical to pre-compartment
        # builds.
        system = build_chaos_system(
            n_keys=N_KEYS, n_partitions=2, seed=3,
            compartment=CompartmentConfig(enabled=False),
        )
        scripts = read_heavy_scripts(n_clients=2, n_commands=20)
        _, clients = run_scripts(system, scripts, until=30.0)

        assert_no_stuck_clients(system)
        assert sum(c.local_reads for c in system.clients) == 0
        for group in system.directory.groups.values():
            assert not group.proxy_names
            assert not group.learner_names
        counters = system.monitor.snapshot()["counters"]
        leaked = [
            k for k in counters if k.startswith(STAGE_COUNTERS)
        ]
        assert not leaked, f"compartment counters leaked while disabled: {leaked}"

    def test_compartment_and_elastic_are_mutually_exclusive(self):
        import pytest

        with pytest.raises(ValueError, match="mutually exclusive"):
            build_chaos_system(
                elastic_enabled=True,
                compartment=CompartmentConfig(enabled=True),
            )
