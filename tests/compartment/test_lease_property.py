"""Property tests for the leader-lease state machine.

The lease is replicated by applying :class:`LeaseGrant` entries in log
order; :func:`apply_grant` is a pure function of (state, grant).  The
safety property backing local reads: across ANY sequence of grants, the
accepted validity intervals of two *different* holders never overlap —
so at no virtual time can two nodes both believe they hold the lease.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compartment import Lease, apply_grant, holder_at
from repro.compartment.lease import held_by
from repro.compartment.messages import LeaseGrant

HOLDERS = ("p0/r0", "p0/r1", "p0/r2")

grants = st.builds(
    LeaseGrant,
    uid=st.just("g"),
    holder=st.sampled_from(HOLDERS),
    granted_at=st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
    expires_at=st.floats(0.0, 60.0, allow_nan=False, allow_infinity=False),
)


def _replay(sequence):
    """Apply a grant sequence; returns (final_state, accepted_leases)."""
    state = None
    accepted = []
    for grant in sequence:
        state, ok = apply_grant(state, grant)
        if ok:
            accepted.append(state)
    return state, accepted


@given(st.lists(grants, max_size=40))
@settings(max_examples=300, deadline=None)
def test_no_two_holders_simultaneously_valid(sequence):
    """Core safety: validity intervals of different holders are disjoint.

    Every accepted state is a lease some replica may act on until the
    next grant lands, so we compare all pairs across the whole history,
    not just consecutive states.
    """
    _, accepted = _replay(sequence)
    for i, a in enumerate(accepted):
        assert a.granted_at < a.expires_at
        for b in accepted[i + 1:]:
            if a.holder == b.holder:
                continue
            overlap = min(a.expires_at, b.expires_at) - max(
                a.granted_at, b.granted_at
            )
            assert overlap <= 0, (
                f"{a.holder} and {b.holder} both valid for {overlap}s: "
                f"{a} vs {b}"
            )


@given(st.lists(grants, max_size=40))
@settings(max_examples=200, deadline=None)
def test_rejected_grants_leave_state_unchanged(sequence):
    state = None
    for grant in sequence:
        new_state, ok = apply_grant(state, grant)
        if not ok:
            assert new_state is state
        state = new_state


@given(st.lists(grants, max_size=40))
@settings(max_examples=200, deadline=None)
def test_renewals_never_shrink_and_never_change_holder(sequence):
    """Once granted, a holder's interval only ever extends — a later
    accepted state for the same holder keeps granted_at and grows
    expires_at, and a holder change implies the old lease had expired
    by the new grant's start."""
    state = None
    for grant in sequence:
        new_state, ok = apply_grant(state, grant)
        if ok and state is not None:
            if new_state.holder == state.holder:
                assert new_state.granted_at == state.granted_at
                assert new_state.expires_at > state.expires_at
            else:
                assert new_state.granted_at >= state.expires_at
        state = new_state


@given(
    holder=st.sampled_from(HOLDERS),
    granted_at=st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
    delta=st.floats(-10.0, 0.0, allow_nan=False, allow_infinity=False),
)
def test_empty_or_inverted_intervals_rejected(holder, granted_at, delta):
    grant = LeaseGrant("g", holder, granted_at, granted_at + delta)
    state, ok = apply_grant(None, grant)
    assert not ok
    assert state is None


def test_holder_at_is_half_open():
    lease = Lease("p0/r0", granted_at=1.0, expires_at=2.0)
    assert holder_at(lease, 0.999) is None
    assert holder_at(lease, 1.0) == "p0/r0"
    assert holder_at(lease, 1.999) == "p0/r0"
    assert holder_at(lease, 2.0) is None
    assert holder_at(None, 1.0) is None
    assert held_by(lease, "p0/r0", 1.5)
    assert not held_by(lease, "p0/r1", 1.5)
    assert not held_by(lease, "p0/r0", 2.0)
