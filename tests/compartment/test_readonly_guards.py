"""Regression tests for the lease-read fast path's eligibility guards.

Three independent fences keep a command off a single learner mirror
unless it is a single-partition, read-only command:

1. the client only routes cached, single-partition, read-only first
   attempts to a learner (``_try_local_read``);
2. the learner bounces any mutating command straight back with RETRY;
3. the leaseholding replica rejects probes for mutating commands and
   for commands touching nodes it does not own (stale client cache —
   the command actually spans another partition).
"""

from repro.compartment.lease import held_by
from repro.compartment.messages import LocalRead, ProbeReject, SeqAck, SeqProbe
from repro.core.client import ScriptedWorkload
from repro.smr import Command
from repro.smr.command import Reply, ReplyStatus

from tests.compartment.test_local_reads import (
    build_compartment_system,
    run_scripts,
)
from tests.faults.conftest import assert_no_stuck_clients

N_KEYS = 8


def local_dispatches(system):
    counters = system.monitor.snapshot()["counters"]
    return sum(
        v
        for k, v in counters.items()
        if k.startswith("reads{") and "event=local_dispatch" in k
    )


class TestClientEligibility:
    def test_cross_partition_read_never_goes_to_a_learner(self):
        """A multi-key ``sum`` spanning both partitions must take the
        ordered path: one learner's mirror cannot see both partitions'
        variables consistently."""
        system = build_compartment_system()
        # Pair every key with its diagonal counterpart: with random
        # placement over 2 partitions some pair lands cross-partition in
        # every seeded run; single-partition pairs are legal learner
        # traffic, so count only the cross-partition ones.
        scripts = [
            [
                Command(f"c:{i}", "sum", (f"k{i}", f"k{(i + N_KEYS // 2) % N_KEYS}"))
                for i in range(N_KEYS)
            ]
        ]
        history, clients = run_scripts(system, scripts)
        assert_no_stuck_clients(system)
        assert clients[0].failed == 0

        placement = {
            var: partition
            for partition in system.partition_names
            for var in system.servers(partition)[0].store.variables()
        }
        cross = [
            cmd
            for cmd in scripts[0]
            if len({placement[k] for k in cmd.args}) > 1
        ]
        assert cross, "placement put every pair on one partition"
        # every local dispatch must have been a single-partition pair
        single = len(scripts[0]) - len(cross)
        assert local_dispatches(system) <= single

    def test_single_partition_multikey_read_is_learner_eligible(self):
        """The guard is partition count, not key count (non-vacuity for
        the test above)."""
        system = build_compartment_system()
        # the first read warms the location cache via the oracle; the
        # second is cache-hit + single-partition -> learner-eligible
        probe = [Command(f"p:{i}", "read", ("k0",)) for i in range(2)]
        history, clients = run_scripts(system, [probe], until=20.0)
        assert clients[0].failed == 0
        assert local_dispatches(system) >= 1


class _SendCapture:
    def __init__(self, actor):
        self.sent = []
        actor.send = lambda dest, msg: self.sent.append((dest, msg))

    def messages(self, kind):
        return [m for _, m in self.sent if isinstance(m, kind)]


class TestLearnerGuard:
    def test_learner_bounces_mutating_command(self):
        system = build_compartment_system()
        system.run(until=2.0)  # leases granted, mirrors warm
        learner = system.directory.groups[system.partition_names[0]].learners[0]
        capture = _SendCapture(learner)
        write = Command("m:0", "write", ("k0", 99))
        learner.on_message("client0", LocalRead(write, "client0", 0))

        replies = capture.messages(Reply)
        assert len(replies) == 1
        assert replies[0].status == ReplyStatus.RETRY
        assert not capture.messages(SeqProbe), (
            "learner probed the replicas for a mutating command"
        )


class TestProbeGuard:
    @staticmethod
    def _leaseholder(system, partition):
        for server in system.servers(partition):
            if server.is_leader and held_by(
                server._lease, server.name, server.now
            ):
                return server
        raise AssertionError(f"no valid leaseholder in {partition}")

    def test_leaseholder_rejects_mutating_probe(self):
        system = build_compartment_system()
        system.run(until=2.0)
        partition = system.partition_names[0]
        server = self._leaseholder(system, partition)
        capture = _SendCapture(server)
        write = Command("m:1", "write", ("k0", 99))
        server._on_seq_probe(SeqProbe("m:1", write, "learner-x"))

        rejects = capture.messages(ProbeReject)
        assert [r.reason for r in rejects] == ["not-readonly"]
        assert not capture.messages(SeqAck)

    def test_leaseholder_rejects_probe_for_foreign_node(self):
        """Stale client cache: the probed command reads a key this
        partition does not own — the reject bounces the client back to
        the oracle instead of serving a mirror miss as a real value."""
        system = build_compartment_system()
        system.run(until=2.0)
        partition = system.partition_names[0]
        server = self._leaseholder(system, partition)
        foreign = next(
            var
            for var in system.servers(system.partition_names[1])[0]
            .store.variables()
            if var not in server.owned_nodes
        )
        capture = _SendCapture(server)
        read = Command("m:2", "read", (foreign,))
        server._on_seq_probe(SeqProbe("m:2", read, "learner-x"))

        rejects = capture.messages(ProbeReject)
        assert [r.reason for r in rejects] == ["not-owner"]
        assert not capture.messages(SeqAck)
