"""Field validation for the liveness-critical configuration knobs.

A zero window or batch size silently wedges the Paxos pending queue,
and a non-positive lease duration makes every lease dead on arrival —
both must fail loudly at construction time, not hang at runtime.
"""

import pytest

from repro.compartment import CompartmentConfig
from repro.consensus.paxos import ReplicaConfig


class TestReplicaConfigValidation:
    @pytest.mark.parametrize("value", [0, -1, -32, 1.5, "8", None, True, False])
    def test_bad_window_rejected(self, value):
        with pytest.raises(ValueError, match="window must be a positive int"):
            ReplicaConfig(window=value)

    @pytest.mark.parametrize("value", [0, -1, 2.0, "64", None, True])
    def test_bad_max_batch_rejected(self, value):
        with pytest.raises(ValueError, match="max_batch must be a positive int"):
            ReplicaConfig(max_batch=value)

    @pytest.mark.parametrize("value", [0, 0.0, -0.001, "fast", None, True])
    def test_bad_batch_delay_rejected(self, value):
        with pytest.raises(ValueError, match="batch_delay must be positive"):
            ReplicaConfig(batch_delay=value)

    def test_error_message_names_offending_value(self):
        with pytest.raises(ValueError, match=r"got 0"):
            ReplicaConfig(window=0)

    def test_defaults_and_valid_overrides_accepted(self):
        ReplicaConfig()
        cfg = ReplicaConfig(window=1, max_batch=1, batch_delay=1e-6)
        assert (cfg.window, cfg.max_batch) == (1, 1)


class TestCompartmentConfigValidation:
    @pytest.mark.parametrize(
        "field", ["n_proxy_leaders", "n_learners", "proxy_max_batch"]
    )
    @pytest.mark.parametrize("value", [0, -1, 2.5, "3", None, True])
    def test_bad_counts_rejected(self, field, value):
        with pytest.raises(
            ValueError, match=f"{field} must be a positive int"
        ):
            CompartmentConfig(**{field: value})

    @pytest.mark.parametrize(
        "field",
        [
            "proxy_batch_delay",
            "lease_duration",
            "lease_renew_margin",
            "probe_retry",
            "read_deadline",
            "sync_period",
        ],
    )
    @pytest.mark.parametrize("value", [0, 0.0, -1.0, "soon", None, True])
    def test_bad_durations_rejected(self, field, value):
        with pytest.raises(ValueError, match=f"{field} must be positive"):
            CompartmentConfig(**{field: value})

    def test_renew_margin_must_undercut_duration(self):
        with pytest.raises(ValueError, match="lease_renew_margin"):
            CompartmentConfig(lease_duration=1.0, lease_renew_margin=1.0)
        with pytest.raises(ValueError, match="lease_renew_margin"):
            CompartmentConfig(lease_duration=0.5, lease_renew_margin=0.7)

    def test_defaults_valid_and_disabled_by_default(self):
        cfg = CompartmentConfig()
        assert not cfg.enabled
        assert cfg.lease_renew_margin < cfg.lease_duration

    def test_validation_applies_even_when_disabled(self):
        # A config is validated at construction, not first use: a latent
        # bad knob must not survive until someone flips `enabled`.
        with pytest.raises(ValueError):
            CompartmentConfig(enabled=False, n_learners=0)
