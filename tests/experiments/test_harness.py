"""Tests for the experiment harness and reporting helpers."""

import math

import pytest

from repro.experiments.harness import (
    build_chirper_system,
    build_tpcc_system,
    make_social_graph,
    run_clients,
    social_optimized_placement,
    steady_rate,
    tpcc_workload,
    warehouse_aligned_placement,
)
from repro.experiments.reporting import downsample, render_series, render_table
from repro.workloads.social import ChirperWorkload
from repro.workloads.tpcc import TPCCConfig, district_node, warehouse_node


class TestSteadyRate:
    def test_windows_correctly(self):
        series = [(0.0, 10.0), (1.0, 20.0), (2.0, 30.0), (3.0, 40.0)]
        assert steady_rate(series, 1.0, 3.0) == 25.0

    def test_empty_window(self):
        assert steady_rate([(0.0, 1.0)], 5.0, 10.0) == 0.0

    def test_empty_series(self):
        assert steady_rate([], 0.0, 10.0) == 0.0


class TestPlacements:
    def test_warehouse_aligned_covers_all_nodes(self):
        config = TPCCConfig(n_warehouses=3)
        placement = warehouse_aligned_placement(config)
        for w in range(1, 4):
            assert placement[warehouse_node(w)] == w - 1
            for d in range(1, 11):
                assert placement[district_node(w, d)] == w - 1

    def test_social_optimized_placement_is_partitioning(self):
        graph = make_social_graph(200, seed=1)
        placement = social_optimized_placement(graph, 4)
        assert len(placement.assignment) == 200
        assert set(placement.assignment.values()) <= set(range(4))


class TestBuilders:
    def test_tpcc_builder_modes(self):
        for mode in ("dynastar", "ssmr", "dssmr"):
            system, config = build_tpcc_system(2, mode=mode)
            assert system.config.n_partitions == 2
            assert config.n_warehouses == 2

    def test_chirper_builder_modes(self):
        graph = make_social_graph(100, seed=1)
        for mode in ("dynastar", "ssmr", "dssmr"):
            system = build_chirper_system(2, graph, mode=mode)
            assert len(system.partition_names) == 2

    def test_run_clients_returns_populated_result(self):
        system, config = build_tpcc_system(2, service_time=0.0)
        workload = tpcc_workload(config, seed=1)
        result = run_clients(system, workload, 4, duration=8.0, warmup=2.0)
        assert result.completed > 0
        assert result.throughput > 0
        assert not math.isnan(result.latency_mean)
        assert result.counters["commands_completed"] == result.completed


class TestReporting:
    def test_downsample_preserves_short_series(self):
        series = [(0.0, 1.0), (1.0, 2.0)]
        assert downsample(series, 10) == series

    def test_downsample_reduces_long_series(self):
        series = [(float(i), 1.0) for i in range(100)]
        out = downsample(series, 10)
        assert len(out) <= 12
        assert out[0][0] == 0.0

    def test_render_series_includes_peak(self):
        text = render_series([(0.0, 5.0), (1.0, 10.0)], "tput")
        assert "10.0" in text and "tput" in text

    def test_render_series_empty(self):
        assert "no data" in render_series([], "x")

    def test_render_table_formats_rows(self):
        text = render_table(
            [{"a": 1, "b": 2.5}],
            [("a", "A", 0), ("b", "B", 1)],
            title="T",
        )
        assert "T" in text and "A" in text and "2.5" in text
