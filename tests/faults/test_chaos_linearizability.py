"""Linearizability, conservation, and progress under chaos: lossy
networks, randomized fault schedules, and deterministic replay."""

import os

import pytest

from repro.core.client import ScriptedWorkload
from repro.faults import ChaosConfig, ChaosInjector, FaultSchedule, generate_for_system
from repro.smr import Command, History, check_linearizable

from tests.core.conftest import assert_replicas_agree
from tests.faults.conftest import assert_no_stuck_clients, build_chaos_system


def mixed_scripts(n_clients=3, n_cmds=8, n_keys=8):
    """Deterministic per-client scripts mixing reads, writes, and
    cross-key transfers."""
    scripts = []
    for c in range(n_clients):
        cmds = []
        for i in range(n_cmds):
            k = (c * 3 + i) % n_keys
            if i % 3 == 0:
                cmds.append(Command(f"c{c}:{i}", "write", (f"k{k}", c * 100 + i)))
            elif i % 3 == 1:
                cmds.append(Command(f"c{c}:{i}", "read", (f"k{k}",)))
            else:
                cmds.append(
                    Command(f"c{c}:{i}", "transfer", (f"k{k}", f"k{(k + 1) % n_keys}", 1))
                )
        scripts.append(cmds)
    return scripts


class TestLossyNetwork:
    def test_five_percent_loss_completes_every_command(self):
        """Acceptance scenario: a 5% message-loss run with client
        timeouts completes every scripted command — zero stuck clients —
        and the history is linearizable."""
        system = build_chaos_system(
            n_keys=8,
            n_partitions=2,
            seed=11,
            loss_probability=0.05,
            client_timeout=0.2,
            client_timeout_cap=2.0,
        )
        history = History()
        scripts = mixed_scripts()
        clients = [
            system.add_client(ScriptedWorkload(cmds), history=history)
            for cmds in scripts
        ]
        system.run(until=120.0)
        assert_no_stuck_clients(system)
        for client, cmds in zip(clients, scripts):
            assert client.completed == len(cmds), f"{client.name} lost commands"
            assert client.failed == 0
            for command in cmds:
                assert command.uid in client.results
        assert system.net.drops_by_reason.get("loss", 0) > 0
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)
        merged = system.all_store_variables()
        assert set(merged) == {f"k{i}" for i in range(8)}

    def test_loss_with_multi_partition_transfers_conserves_sum(self):
        """Transfers under loss: retransmission + exactly-once caching
        must neither lose nor double-apply a transfer."""
        system = build_chaos_system(
            n_keys=4,
            n_partitions=2,
            seed=8,
            loss_probability=0.05,
            client_timeout=0.2,
            client_timeout_cap=2.0,
        )
        cmds = [Command(f"c:{i}", "transfer", (f"k{i % 4}", f"k{(i + 1) % 4}", 1)) for i in range(12)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=120.0)
        assert_no_stuck_clients(system)
        assert client.completed + client.failed == 12
        merged = system.all_store_variables()
        # transfers move value around but conserve the total
        assert sum(merged.values()) == sum(range(4))


def chaos_fingerprint(seed, chaos_seed):
    system = build_chaos_system(
        n_keys=8,
        n_partitions=2,
        seed=seed,
        loss_probability=0.02,
        client_timeout=0.25,
        client_timeout_cap=2.0,
    )
    config = ChaosConfig(duration=8.0, start_after=0.5)
    schedule = generate_for_system(system, config, seed=chaos_seed)
    injector = ChaosInjector(system, schedule).arm()
    clients = [
        system.add_client(ScriptedWorkload(cmds)) for cmds in mixed_scripts()
    ]
    system.run(until=120.0)
    return {
        "applied": list(injector.applied),
        "results": [dict(c.results) for c in clients],
        "completed": [c.completed for c in clients],
        "timeouts": [c.timeouts for c in clients],
        "events": system.sim.events_processed,
        "net": system.net.stats(),
        "stores": {
            p: tuple(sorted(system.servers(p)[0].store.items()))
            for p in system.partition_names
        },
    }, system


class TestChaosReplay:
    def test_same_seed_identical_chaos_run(self):
        """Acceptance scenario: the chaos injector replays identically
        for a fixed seed — fault log, message counts, results, stores."""
        a, _ = chaos_fingerprint(seed=5, chaos_seed=77)
        b, _ = chaos_fingerprint(seed=5, chaos_seed=77)
        assert a == b

    def test_different_chaos_seed_different_faults(self):
        a, _ = chaos_fingerprint(seed=5, chaos_seed=77)
        b, _ = chaos_fingerprint(seed=5, chaos_seed=78)
        assert a["applied"] != b["applied"]


class TestRandomizedChaos:
    @pytest.mark.parametrize("chaos_seed", [101, 202])
    def test_randomized_schedule_run_stays_consistent(self, chaos_seed):
        """A full randomized chaos run (crashes + recoveries, cuts,
        bursts, spikes) with client timeouts: every client finishes, no
        variable is lost, surviving replicas agree."""
        fingerprint, system = chaos_fingerprint(seed=9, chaos_seed=chaos_seed)
        assert_no_stuck_clients(system)
        assert sum(fingerprint["completed"]) > 0
        assert all(not r.crashed for p in system.partition_names for r in system.servers(p))
        assert_replicas_agree(system)
        merged = system.all_store_variables()
        assert set(merged) == {f"k{i}" for i in range(8)}

    @pytest.mark.slow
    def test_long_chaos_from_env_seed(self):
        """Weekly CI entry point: CHAOS_SEED selects the randomized
        schedule, so a red run is reproducible by exporting the same
        seed locally (see EXPERIMENTS.md)."""
        chaos_seed = int(os.environ.get("CHAOS_SEED", "1"))
        system = build_chaos_system(
            n_keys=8,
            n_partitions=3,
            seed=chaos_seed,
            loss_probability=0.02,
            client_timeout=0.25,
            client_timeout_cap=2.0,
        )
        config = ChaosConfig(
            duration=30.0,
            start_after=0.5,
            replica_crashes_per_group=3,
            acceptor_crashes_per_group=2,
            loss_bursts=2,
            delay_spikes=2,
        )
        schedule = generate_for_system(system, config, seed=chaos_seed)
        ChaosInjector(system, schedule).arm()
        history = History()
        clients = [
            system.add_client(ScriptedWorkload(cmds), history=history)
            for cmds in mixed_scripts(n_clients=4, n_cmds=12)
        ]
        system.run(until=300.0)
        assert_no_stuck_clients(system)
        for client in clients:
            assert client.completed + client.failed == 12
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)
        merged = system.all_store_variables()
        assert set(merged) == {f"k{i}" for i in range(8)}
