"""Replica recovery: crashed replicas re-sync from acceptors, rejoin
their group, and serve commands that reflect every prior write."""

import pytest

from repro.core.client import ScriptedWorkload
from repro.faults import ChaosInjector, FaultSchedule
from repro.smr import Command, History, check_linearizable
from repro.smr.command import ReplyStatus

from tests.core.conftest import assert_replicas_agree, ok_results
from tests.faults.conftest import assert_no_stuck_clients, build_chaos_system


class TestReplicaRecovery:
    def test_partition_leader_crash_and_recover_mid_workload(self):
        """Acceptance scenario: a partition-leader replica and an oracle
        replica crash mid-workload and *recover*; the recovered replicas
        rejoin, serve reads reflecting all prior writes, and the history
        is linearizable."""
        system = build_chaos_system(n_keys=8, n_partitions=2, seed=3)
        part = system.initial_assignment["k0"]
        leader = system.servers(part)[0]
        oracle = system.oracle_replicas()[0]
        schedule = (
            FaultSchedule()
            .at(0.05, "crash_replica", part, 0)
            .at(0.06, "crash_replica", system.oracle_group, 0)
            .at(2.0, "recover_replica", part, 0)
            .at(2.0, "recover_replica", system.oracle_group, 0)
        )
        ChaosInjector(system, schedule).arm()

        history = History()
        cmds = [Command(f"c:{i}", "write", ("k0", i)) for i in range(30)]
        cmds.append(Command("c:final", "read", ("k0",)))
        client = system.add_client(ScriptedWorkload(cmds), history=history)
        system.run(until=60.0)

        assert client.completed == 31
        assert ok_results(client)["c:final"] == 29
        assert not leader.crashed and not oracle.crashed
        # the recovered replicas rejoined: same store as their peers
        assert_replicas_agree(system)
        assert dict(leader.store.items()) == dict(
            system.servers(part)[1].store.items()
        )
        assert check_linearizable(history, system.app)

    def test_recovered_replica_serves_post_recovery_reads(self):
        """Writes land while a replica is down; a read issued *after* the
        recovery horizon still sees them, and the recovered replica holds
        the written state (it re-synced decided instances)."""
        system = build_chaos_system(n_keys=4, n_partitions=1, seed=5)
        schedule = (
            FaultSchedule()
            .at(0.05, "crash_replica", "p0", 1)
            .at(1.0, "recover_replica", "p0", 1)
        )
        ChaosInjector(system, schedule).arm()
        cmds = [Command(f"w:{i}", "write", ("k1", 100 + i)) for i in range(10)]
        cmds.append(Command("r:after", "read", ("k1",)))
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=30.0)
        assert client.completed == 11
        assert ok_results(client)["r:after"] == 109
        recovered = system.servers("p0")[1]
        assert not recovered.crashed
        assert dict(recovered.store.items())["k1"] == 109

    def test_whole_group_crash_and_recover_with_client_timeouts(self):
        """Every replica of a partition goes down.  Clients with request
        timeouts keep retrying through the outage and every command
        completes once the group recovers."""
        system = build_chaos_system(
            n_keys=4,
            n_partitions=2,
            seed=3,
            client_timeout=0.25,
            client_timeout_cap=1.0,
        )
        part = system.initial_assignment["k0"]
        schedule = FaultSchedule()
        for i in range(system.config.n_replicas):
            schedule.at(0.0, "crash_replica", part, i)
            schedule.at(1.5, "recover_replica", part, i)
        ChaosInjector(system, schedule).arm()
        cmds = [Command(f"c:{i}", "write", ("k0", i)) for i in range(5)]
        cmds.append(Command("c:final", "read", ("k0",)))
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=60.0)
        assert_no_stuck_clients(system)
        assert client.completed == 6
        assert client.timeouts > 0, "outage should have triggered timeouts"
        assert ok_results(client)["c:final"] == 4
        assert_replicas_agree(system)

    def test_acceptor_crash_and_recover(self):
        """An acceptor crashing and recovering never disturbs the
        workload (quorum of 2/3 stays available throughout)."""
        system = build_chaos_system(n_keys=8, n_partitions=2, seed=3)
        part = system.partition_names[0]
        schedule = (
            FaultSchedule()
            .at(0.0, "crash_acceptor", part, 0)
            .at(1.0, "recover_acceptor", part, 0)
            .at(1.2, "crash_acceptor", part, 1)
        )
        ChaosInjector(system, schedule).arm()
        cmds = [Command(f"c:{i}", "read", (f"k{i % 8}",)) for i in range(16)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=30.0)
        assert client.completed == 16

    def test_oracle_leader_crash_and_recover_with_repartitioning(self):
        """The oracle leader crashes while repartitioning traffic is in
        flight and recovers; plans still converge and no state is lost."""
        system = build_chaos_system(
            n_keys=16,
            n_partitions=2,
            seed=6,
            repartition=True,
            threshold=120,
        )
        schedule = (
            FaultSchedule()
            .at(1.0, "crash_leader", system.oracle_group)
            .at(3.0, "recover_leader", system.oracle_group)
        )
        ChaosInjector(system, schedule).arm()
        cmds = [
            Command(f"c:{i}", "transfer", (f"k{2 * (i % 8)}", f"k{2 * (i % 8) + 1}", 1))
            for i in range(80)
        ]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=180.0)
        assert client.completed == 80
        merged = system.all_store_variables()
        assert set(merged) == {f"k{i}" for i in range(16)}
        assert_replicas_agree(system)

    def test_repeated_crash_recover_cycles(self):
        """Two crash/recover cycles of the same replica; state converges
        each time."""
        system = build_chaos_system(n_keys=4, n_partitions=1, seed=4)
        schedule = (
            FaultSchedule()
            .at(0.1, "crash_replica", "p0", 0)
            .at(1.0, "recover_replica", "p0", 0)
            .at(2.0, "crash_replica", "p0", 1)
            .at(3.0, "recover_replica", "p0", 1)
        )
        ChaosInjector(system, schedule).arm()
        cmds = [Command(f"c:{i}", "write", ("k0", i)) for i in range(40)]
        cmds.append(Command("c:final", "read", ("k0",)))
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=60.0)
        assert client.completed == 41
        assert ok_results(client)["c:final"] == 39
        assert_replicas_agree(system)

    def test_crash_plus_background_loss_no_timestamp_livelock(self):
        """Regression: with a replica crashed *and* background message
        loss, a group could a-deliver a multi-partition command, drop its
        pending entry, and never re-answer the peer group's timestamp
        probes — the peer's min-pending gate then wedged both partitions
        and the shipped variable was lost.  The a-delivered timestamp log
        must keep answering duplicate OrderEvent probes."""
        system = build_chaos_system(
            n_keys=8,
            n_partitions=2,
            seed=5,
            loss_probability=0.05,
            client_timeout=0.2,
            client_timeout_cap=2.0,
        )
        schedule = (
            FaultSchedule()
            .at(0.05, "crash_replica", "p0", 0)
            .at(1.5, "recover_replica", "p0", 0)
        )
        ChaosInjector(system, schedule).arm()
        scripts = []
        for c in range(3):
            cmds = []
            for i in range(10):
                k = (c * 3 + i) % 8
                if i % 3 == 0:
                    cmds.append(Command(f"c{c}:{i}", "write", (f"k{k}", c * 100 + i)))
                elif i % 3 == 1:
                    cmds.append(Command(f"c{c}:{i}", "read", (f"k{k}",)))
                else:
                    cmds.append(
                        Command(
                            f"c{c}:{i}",
                            "transfer",
                            (f"k{k}", f"k{(k + 1) % 8}", 1),
                        )
                    )
            scripts.append(cmds)
        clients = [system.add_client(ScriptedWorkload(cmds)) for cmds in scripts]
        system.run(until=120.0)
        assert_no_stuck_clients(system)
        for client in clients:
            assert client.completed == 10
        merged = system.all_store_variables()
        assert set(merged) == {f"k{i}" for i in range(8)}, "variable lost"
        assert_replicas_agree(system)
