"""Safety under overload: acked commands stay linearizable and execute
exactly once while the system sheds load, trips breakers, and rides an
``overload_burst`` that overlaps crash and loss faults."""

from repro.core.client import ScriptedWorkload
from repro.faults import ChaosInjector, FaultSchedule
from repro.smr import Command, History, check_linearizable

from tests.core.conftest import assert_replicas_agree
from tests.faults.conftest import assert_no_stuck_clients, build_chaos_system
from tests.faults.test_chaos_linearizability import mixed_scripts


def saturated_system(**extra):
    """A deployment whose admission gate is guaranteed to push back:
    bound 1 with no headroom, slow service, several concurrent clients."""
    return build_chaos_system(
        n_keys=8,
        n_partitions=2,
        seed=13,
        service_time=0.02,
        client_timeout=0.3,
        client_timeout_cap=2.0,
        admission_bound=1,
        admission_headroom=0,
        admission_retry_after=0.01,
        **extra,
    )


class TestSheddingSafety:
    def test_linearizable_with_admission_shedding(self):
        # Unlimited retries (no budget): every command eventually lands,
        # and the acked history must still be linearizable even though
        # many attempts bounced off the admission gate first.
        system = saturated_system()
        history = History()
        scripts = mixed_scripts(n_clients=3, n_cmds=8)
        clients = [
            system.add_client(ScriptedWorkload(cmds), history=history)
            for cmds in scripts
        ]
        system.run(until=120.0)

        assert_no_stuck_clients(system)
        for client, cmds in zip(clients, scripts):
            assert client.completed == len(cmds)
            assert client.failed == 0
        # The gate actually refused traffic during the run.
        assert sum(c.busy_rejections for c in clients) > 0
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)

    def test_budget_limited_clients_conserve_transfers(self):
        # With a tight retry budget some commands give up — but a shed
        # command was refused *before* ordering, so it must never have
        # half-executed: transfer sums are conserved and replicas agree
        # no matter how many clients gave up.
        system = saturated_system(
            client_retry_budget=2.0,
            client_retry_budget_ratio=0.1,
        )
        n_keys = 8
        clients = []
        for c in range(3):
            cmds = [
                Command(
                    f"t{c}:{i}", "transfer",
                    (f"k{(c + i) % n_keys}", f"k{(c + i + 1) % n_keys}", 1),
                )
                for i in range(8)
            ]
            clients.append(system.add_client(ScriptedWorkload(cmds)))
        system.run(until=120.0)

        assert_no_stuck_clients(system)
        for client in clients:
            assert client.completed + client.failed == 8
        merged = system.all_store_variables()
        assert sum(merged.values()) == sum(range(n_keys))
        assert_replicas_agree(system)


class TestOverloadBurstWithChaos:
    def test_burst_overlapping_crash_and_loss_stays_linearizable(self):
        # A flash crowd (10x arrival rate) overlaps a leader crash and a
        # loss burst.  Clients keep generous retry allowances, so every
        # acked command completes and the history is checkable.
        system = build_chaos_system(
            n_keys=8,
            n_partitions=2,
            seed=17,
            service_time=0.005,
            client_timeout=0.3,
            client_timeout_cap=2.0,
            admission_bound=4,
            admission_retry_after=0.01,
            client_breaker_threshold=8,
            client_breaker_cooldown=0.5,
            client_think_time=0.05,
        )
        schedule = (
            FaultSchedule()
            .at(1.0, "overload_burst", 4.0, 10.0)
            .at(2.0, "crash_leader", "p0")
            .at(2.5, "loss_burst", 1.0, 0.1)
            .at(4.0, "recover_leader", "p0")
        )
        injector = ChaosInjector(system, schedule).arm()
        history = History()
        scripts = mixed_scripts(n_clients=3, n_cmds=8)
        clients = [
            system.add_client(ScriptedWorkload(cmds), history=history)
            for cmds in scripts
        ]
        system.run(until=180.0)

        assert len(injector.applied) == 4
        assert_no_stuck_clients(system)
        for client, cmds in zip(clients, scripts):
            assert client.completed == len(cmds), f"{client.name} lost acks"
            assert client.failed == 0
            for command in cmds:
                assert command.uid in client.results
        # Exactly once: a duplicated write or transfer would surface as
        # an unexplainable read in the acked history or as replica skew.
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)
        merged = system.all_store_variables()
        assert set(merged) == {f"k{i}" for i in range(8)}

    def test_burst_restores_arrival_rate_after_window(self):
        system = build_chaos_system(
            n_keys=4, n_partitions=2, seed=3, client_think_time=0.1
        )
        schedule = (
            FaultSchedule()
            .at(0.5, "overload_burst", 1.0, 8.0)
            .at(0.8, "overload_burst", 1.0, 2.0)  # overlapping bursts
        )
        ChaosInjector(system, schedule).arm()
        cmds = [Command(f"r:{i}", "read", ("k0",)) for i in range(40)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.start()
        system.run(until=0.7)
        assert client.load_factor == 8.0
        system.run(until=1.0)
        assert client.load_factor == 16.0  # windows compose
        system.run(until=1.6)
        assert client.load_factor == 2.0  # first window unwound
        system.run(until=60.0)
        assert client.load_factor == 1.0  # both restored exactly
        assert_no_stuck_clients(system)
