"""The existing chaos combs, rerun with parallel execution lanes: loss,
randomized fault schedules, and crash/recovery must not surface any
reordering the conflict footprints failed to rule out."""

import pytest

from repro.core.client import ScriptedWorkload
from repro.faults import ChaosConfig, ChaosInjector, generate_for_system
from repro.smr import Command, History, check_linearizable

from tests.core.conftest import assert_replicas_agree
from tests.faults.conftest import assert_no_stuck_clients, build_chaos_system


def mixed_scripts(n_clients=3, n_cmds=8, n_keys=8):
    scripts = []
    for c in range(n_clients):
        cmds = []
        for i in range(n_cmds):
            k = (c * 3 + i) % n_keys
            if i % 3 == 0:
                cmds.append(Command(f"c{c}:{i}", "write", (f"k{k}", c * 100 + i)))
            elif i % 3 == 1:
                cmds.append(Command(f"c{c}:{i}", "read", (f"k{k}",)))
            else:
                cmds.append(
                    Command(
                        f"c{c}:{i}",
                        "transfer",
                        (f"k{k}", f"k{(k + 1) % n_keys}", 1),
                    )
                )
        scripts.append(cmds)
    return scripts


def build_lanes_chaos_system(**kwargs):
    kwargs.setdefault("n_keys", 8)
    kwargs.setdefault("n_partitions", 2)
    kwargs.setdefault("client_timeout", 0.2)
    kwargs.setdefault("client_timeout_cap", 2.0)
    kwargs.setdefault("execution_lanes", 4)
    kwargs.setdefault("service_time", 0.002)
    return build_chaos_system(**kwargs)


class TestLanesUnderChaos:
    def test_loss_with_lanes_stays_linearizable(self):
        system = build_lanes_chaos_system(seed=11, loss_probability=0.05)
        history = History()
        scripts = mixed_scripts()
        clients = [
            system.add_client(ScriptedWorkload(cmds), history=history)
            for cmds in scripts
        ]
        system.run(until=120.0)
        assert_no_stuck_clients(system)
        for client, cmds in zip(clients, scripts):
            assert client.completed == len(cmds)
            assert client.failed == 0
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)

    def test_loss_with_lanes_conserves_transfer_sum(self):
        system = build_lanes_chaos_system(
            n_keys=4, seed=8, loss_probability=0.05, idempotency_keys=True
        )
        cmds = [
            Command(f"c:{i}", "transfer", (f"k{i % 4}", f"k{(i + 1) % 4}", 1))
            for i in range(12)
        ]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=120.0)
        assert_no_stuck_clients(system)
        assert client.completed + client.failed == 12
        merged = system.all_store_variables()
        assert sum(merged.values()) == sum(range(4))

    @pytest.mark.parametrize("chaos_seed", [101, 202])
    def test_randomized_chaos_with_lanes(self, chaos_seed):
        """Crashes + recoveries + cuts with 4 lanes: checkpointed
        per-command state (``cmd_states``) and volatile lane clocks must
        reconstruct a consistent replica on recovery."""
        system = build_lanes_chaos_system(
            seed=9, loss_probability=0.02, client_timeout=0.25
        )
        config = ChaosConfig(duration=8.0, start_after=0.5)
        schedule = generate_for_system(system, config, seed=chaos_seed)
        ChaosInjector(system, schedule).arm()
        history = History()
        clients = [
            system.add_client(ScriptedWorkload(cmds), history=history)
            for cmds in mixed_scripts()
        ]
        system.run(until=120.0)
        assert_no_stuck_clients(system)
        assert sum(c.completed for c in clients) > 0
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)
        merged = system.all_store_variables()
        assert set(merged) == {f"k{i}" for i in range(8)}

    def test_chaos_with_lanes_replays_identically(self):
        def run():
            system = build_lanes_chaos_system(
                seed=5, loss_probability=0.02, client_timeout=0.25
            )
            config = ChaosConfig(duration=8.0, start_after=0.5)
            schedule = generate_for_system(system, config, seed=77)
            injector = ChaosInjector(system, schedule).arm()
            clients = [
                system.add_client(ScriptedWorkload(cmds))
                for cmds in mixed_scripts()
            ]
            system.run(until=120.0)
            return {
                "applied": list(injector.applied),
                "results": [dict(c.results) for c in clients],
                "events": system.sim.events_processed,
                "net": system.net.stats(),
                "stores": {
                    p: tuple(sorted(system.servers(p)[0].store.items()))
                    for p in system.partition_names
                },
            }

        assert run() == run()
