"""Snapshot-based state transfer under chaos.

The scenarios this file pins down are the acceptance criteria of the
checkpointing PR: a replica that crashes and stays down long enough for
its group to checkpoint and truncate the Paxos log *past* its position
can no longer catch up from acceptors — it must fetch a snapshot from a
live peer, install it, and replay only the log suffix.  We verify that
path end to end (trace spans + metrics prove the snapshot actually
transferred), that it survives a requester crash mid-transfer and a
provider crash mid-transfer, and that compaction keeps per-replica and
per-acceptor memory bounded by the checkpoint interval.
"""

import io

from repro.consensus.paxos import ReplicaConfig
from repro.core.client import ScriptedWorkload
from repro.faults import ChaosInjector, FaultSchedule
from repro.smr import Command, History, check_linearizable

from tests.core.conftest import (
    assert_conservation,
    assert_replicas_agree,
    ok_results,
)
from tests.faults.conftest import assert_no_stuck_clients, build_chaos_system


def write_burst(n, key="k0"):
    """n writes to one key (keeps the traffic on a single partition)."""
    return [Command(f"c:{i}", "write", (key, i)) for i in range(n)]


def snapshot_spans(system):
    """Every span of every ``snapshot:*`` trace, in trace order."""
    return [
        span
        for trace_id, spans in system.tracer.traces().items()
        if trace_id.startswith("snapshot:")
        for span in spans
    ]


class TestSnapshotRecovery:
    def test_replica_behind_truncation_recovers_via_snapshot(self):
        """The headline scenario: rep1 crashes at t=0.05, the group
        checkpoints every 4 instances and truncates while it is down, and
        the recovery at t=4 can only succeed through a snapshot fetch."""
        system = build_chaos_system(
            n_keys=8, n_partitions=2, seed=3, checkpoint_interval=4, tracing=True
        )
        part = system.initial_assignment["k0"]
        schedule = (
            FaultSchedule()
            .at(0.05, "crash_replica", part, 1)
            .at(4.0, "recover_replica", part, 1)
        )
        ChaosInjector(system, schedule).arm()

        history = History()
        cmds = write_burst(40)
        cmds.append(Command("c:final", "read", ("k0",)))
        client = system.add_client(ScriptedWorkload(cmds), history=history)
        system.run(until=60.0)

        assert client.completed == 41
        assert ok_results(client)["c:final"] == 39
        assert_no_stuck_clients(system)

        # The group checkpointed and truncated while rep1 was down ...
        live = system.servers(part)[0]
        assert live.checkpoint_watermark > 0
        assert live.log_floor > 0
        counters = system.monitor.labeled_counters("checkpoint")
        assert counters.get(part, 0) > 0
        assert system.monitor.labeled_counters("log_truncated").get(part, 0) > 0

        # ... so rep1's recovery went through the snapshot path, proven
        # by the metrics and the finished snapshot-transfer span.
        assert system.monitor.labeled_counters("snapshot_fetches").get(part) == 1
        assert system.monitor.labeled_counters("snapshot_recoveries").get(part) == 1
        spans = snapshot_spans(system)
        installed = [s for s in spans if s.tags.get("status") == "installed"]
        assert len(installed) == 1
        assert installed[0].tags["replica"] == f"{part}/rep1"
        assert installed[0].tags["watermark"] > 0
        assert installed[0].tags["chunks"] >= 1

        # Correctness: the recovered replica converged, no key was lost
        # or duplicated, and the client-observed history linearizes.
        recovered = system.servers(part)[1]
        assert not recovered.crashed
        assert_replicas_agree(system)
        assert_conservation(system, [f"k{i}" for i in range(8)])
        assert check_linearizable(history, system.app)

    def test_requester_crash_mid_transfer_then_clean_retry(self):
        """The downloading replica dies mid-transfer and recovers again:
        the half-fetched snapshot is discarded with the crash and the
        second recovery restarts the fetch from scratch.  One item per
        chunk stretches the transfer window so the fault lands inside it."""
        replica_cfg = ReplicaConfig(
            checkpoint_interval=4, snapshot_chunk_init=1, snapshot_chunk_max=1
        )
        system = build_chaos_system(
            n_keys=8, n_partitions=2, seed=3, tracing=True, replica=replica_cfg
        )
        part = system.initial_assignment["k0"]
        schedule = (
            FaultSchedule()
            .at(0.05, "crash_replica", part, 1)
            .at(4.0, "recover_replica", part, 1)
            # Recovery query + discovery take a few RTTs (~1 ms links);
            # with 1-item chunks the transfer runs for tens of ms.
            .at(4.02, "crash_mid_transfer", part)
            .at(6.0, "recover_replica", part, 1)
        )
        injector = ChaosInjector(system, schedule).arm()

        history = History()
        client = system.add_client(ScriptedWorkload(write_burst(40)), history=history)
        system.run(until=60.0)

        assert client.completed == 40
        kinds = [kind for _, kind, _ in injector.applied]
        assert kinds.count("crash_mid_transfer") == 1

        # Two separate fetch attempts (epoch 1 died with the crash,
        # epoch 2 installed), and exactly one completed recovery.
        assert system.monitor.labeled_counters("snapshot_fetches").get(part) == 2
        assert system.monitor.labeled_counters("snapshot_recoveries").get(part) == 1
        installed = [
            s for s in snapshot_spans(system) if s.tags.get("status") == "installed"
        ]
        assert len(installed) == 1

        recovered = system.servers(part)[1]
        assert not recovered.crashed
        assert_replicas_agree(system)
        assert_conservation(system, [f"k{i}" for i in range(8)])
        assert check_linearizable(history, system.app)

    def test_provider_crash_forces_rediscovery_from_another_peer(self):
        """With three replicas, the peer serving the snapshot crashes
        mid-transfer; the requester times out, abandons the provider, and
        completes the download from the remaining live replica."""
        replica_cfg = ReplicaConfig(
            checkpoint_interval=4,
            snapshot_chunk_init=1,
            snapshot_chunk_max=1,
            snapshot_retry=0.1,
            snapshot_giveup=2,
        )
        system = build_chaos_system(
            n_keys=8,
            n_partitions=2,
            seed=3,
            n_replicas=3,
            tracing=True,
            replica=replica_cfg,
        )
        part = system.initial_assignment["k0"]
        schedule = (
            FaultSchedule()
            .at(0.05, "crash_replica", part, 2)
            .at(4.0, "recover_replica", part, 2)
            .at(4.02, "crash_snapshot_provider", part)
        )
        injector = ChaosInjector(system, schedule).arm()

        history = History()
        client = system.add_client(ScriptedWorkload(write_burst(40)), history=history)
        system.run(until=60.0)

        assert client.completed == 40
        kinds = [kind for _, kind, _ in injector.applied]
        assert kinds.count("crash_snapshot_provider") == 1

        # The requester gave up on the dead provider and restarted the
        # fetch against a live one — and still recovered exactly once.
        assert system.monitor.labeled_counters("snapshot_restarts").get(part, 0) >= 1
        assert system.monitor.labeled_counters("snapshot_recoveries").get(part) == 1
        spans = snapshot_spans(system)
        assert any(s.tags.get("status") == "restarted" for s in spans)
        installed = [s for s in spans if s.tags.get("status") == "installed"]
        assert len(installed) == 1
        assert installed[0].tags["replica"] == f"{part}/rep2"

        recovered = system.servers(part)[2]
        assert not recovered.crashed
        assert dict(recovered.store.items()) == dict(
            system.servers(part)[0].store.items()
        )
        assert_conservation(system, [f"k{i}" for i in range(8)])
        assert check_linearizable(history, system.app)


class TestLogCompactionBounds:
    def test_replica_and_acceptor_memory_bounded_by_interval(self):
        """Long fault-free run: with checkpointing every 8 instances the
        decided map on every replica and the accepted map on every
        acceptor stay O(interval), instead of growing with the run."""
        interval = 8
        system = build_chaos_system(
            n_keys=8, n_partitions=2, seed=3, checkpoint_interval=interval
        )
        n = 200
        cmds = [Command(f"c:{i}", "write", (f"k{i % 8}", i)) for i in range(n)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=120.0)
        assert client.completed == n

        saw_truncation = False
        for name in [*system.partition_names, system.oracle_group]:
            group = system.directory.groups[name]
            for replica in group.replicas:
                if replica.next_deliver <= interval:
                    continue  # group saw too little traffic to checkpoint
                # Retained decided instances: at most the suffix since the
                # last checkpoint plus one in-flight interval.
                assert replica.log_floor > 0
                retained = replica.next_deliver - replica.log_floor
                assert retained <= 2 * interval, (
                    f"{replica.name} retains {retained} decided instances"
                )
                assert len(replica.decided) <= 2 * interval
                saw_truncation = True
            for acceptor in group.acceptors:
                if acceptor.truncated_below == 0:
                    continue
                live = [i for i in acceptor.accepted if i >= acceptor.truncated_below]
                assert len(acceptor.accepted) == len(live)
                assert len(live) <= 3 * interval, (
                    f"{acceptor.name} holds {len(live)} accepted instances"
                )
        assert saw_truncation, "no group ever truncated its log"
        assert_replicas_agree(system)

    def test_delivered_log_starts_at_log_floor(self):
        """`PaxosGroup.delivered_log` only covers the retained suffix
        once compaction has run (the prefix is gone by design)."""
        system = build_chaos_system(
            n_keys=4, n_partitions=1, seed=5, checkpoint_interval=4
        )
        client = system.add_client(ScriptedWorkload(write_burst(20, key="k1")))
        system.run(until=30.0)
        assert client.completed == 20
        group = system.directory.groups["p0"]
        replica = group.replicas[0]
        assert replica.log_floor > 0
        log = group.delivered_log(0)
        assert len(log) == replica.next_deliver - replica.log_floor


class TestCheckpointDeterminism:
    @staticmethod
    def _traced_run():
        system = build_chaos_system(
            n_keys=8, n_partitions=2, seed=11, checkpoint_interval=4, tracing=True
        )
        part = system.initial_assignment["k0"]
        schedule = (
            FaultSchedule()
            .at(0.05, "crash_replica", part, 1)
            .at(4.0, "recover_replica", part, 1)
        )
        ChaosInjector(system, schedule).arm()
        client = system.add_client(ScriptedWorkload(write_burst(40)))
        system.run(until=60.0)
        assert client.completed == 40
        assert system.monitor.labeled_counters("snapshot_recoveries").get(part) == 1
        buf = io.StringIO()
        system.tracer.export_jsonl(buf)
        return buf.getvalue()

    def test_snapshot_recovery_replays_byte_identical(self):
        """Checkpoints, truncation, and a full snapshot recovery are all
        on the deterministic path: identical seeds give byte-identical
        trace logs."""
        a = self._traced_run()
        b = self._traced_run()
        assert "snapshot-transfer" in a
        assert "checkpoint" in a
        assert a == b
