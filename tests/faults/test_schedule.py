"""Fault schedules: validation, ordering, and seeded generation."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    ChaosConfig,
    FaultEvent,
    FaultSchedule,
    generate,
)


class TestFaultEvent:
    def test_valid_event(self):
        event = FaultEvent(1.5, "crash_replica", ("p0", 1))
        assert event.describe() == "t=1.500 crash_replica('p0', 1)"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(-0.1, "heal_all")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(1.0, "set_on_fire", ("p0",))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="takes 2 args"):
            FaultEvent(1.0, "crash_replica", ("p0",))
        with pytest.raises(ValueError, match="takes 0 args"):
            FaultEvent(1.0, "heal_all", ("p0",))

    def test_all_kinds_constructible(self):
        candidates = [(), ("p0",), ("p0", 1), (0.5, 0.5)]
        for kind in FAULT_KINDS:
            for args in candidates:
                try:
                    FaultEvent(0.0, kind, args)
                    break
                except ValueError:
                    continue
            else:
                pytest.fail(f"no candidate args worked for {kind}")


class TestFaultSchedule:
    def test_iteration_sorted_by_time(self):
        schedule = (
            FaultSchedule()
            .at(5.0, "heal", "a", "b")
            .at(1.0, "cut", "a", "b")
            .at(3.0, "crash_leader", "p0")
        )
        assert [e.at for e in schedule] == [1.0, 3.0, 5.0]

    def test_equal_times_preserve_insertion_order(self):
        schedule = (
            FaultSchedule()
            .at(2.0, "crash_replica", "p0", 0)
            .at(2.0, "crash_acceptor", "p0", 0)
        )
        kinds = [e.kind for e in schedule]
        assert kinds == ["crash_replica", "crash_acceptor"]

    def test_len_horizon_describe(self):
        schedule = FaultSchedule().at(1.0, "heal_all").at(4.0, "crash_leader", "p1")
        assert len(schedule) == 2
        assert schedule.horizon == 4.0
        assert "heal_all" in schedule.describe()
        assert FaultSchedule().horizon == 0.0

    def test_add_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultSchedule().add(("crash", 1.0))

    def test_init_from_iterable(self):
        events = [FaultEvent(2.0, "heal_all"), FaultEvent(1.0, "heal_all")]
        schedule = FaultSchedule(events)
        assert len(schedule) == 2
        assert schedule.events[0].at == 1.0


class TestChaosConfig:
    def test_duration_must_exceed_start(self):
        with pytest.raises(ValueError, match="duration"):
            ChaosConfig(duration=1.0, start_after=2.0)

    def test_downtime_ordering_enforced(self):
        with pytest.raises(ValueError, match="min_downtime"):
            ChaosConfig(min_downtime=3.0, max_downtime=1.0)


class TestGenerate:
    def _gen(self, seed, **kwargs):
        config = ChaosConfig(duration=10.0, start_after=1.0, **kwargs)
        return generate(
            config,
            ["p0", "p1"],
            seed=seed,
            link_actors=["p0/rep0", "p0/rep1", "p1/rep0", "p1/rep1"],
        )

    def test_same_seed_identical_schedule(self):
        a = self._gen(42)
        b = self._gen(42)
        assert [(e.at, e.kind, e.args) for e in a] == [
            (e.at, e.kind, e.args) for e in b
        ]

    def test_different_seed_different_schedule(self):
        a = self._gen(42)
        b = self._gen(43)
        assert [(e.at, e.kind, e.args) for e in a] != [
            (e.at, e.kind, e.args) for e in b
        ]

    def test_every_crash_paired_with_recovery(self):
        schedule = self._gen(7)
        pending: dict = {}
        for event in schedule:
            if event.kind.startswith("crash_"):
                key = (event.kind.removeprefix("crash_"), event.args)
                pending[key] = pending.get(key, 0) + 1
            elif event.kind.startswith("recover_"):
                key = (event.kind.removeprefix("recover_"), event.args)
                assert pending.get(key, 0) > 0, f"recovery before crash: {event}"
                pending[key] -= 1
        assert all(v == 0 for v in pending.values()), f"unrecovered: {pending}"

    def test_every_cut_is_healed(self):
        schedule = self._gen(7)
        open_cuts: set = set()
        for event in schedule:
            if event.kind == "cut":
                open_cuts.add(frozenset(event.args))
            elif event.kind == "heal":
                open_cuts.discard(frozenset(event.args))
            elif event.kind == "cut_oneway":
                open_cuts.add(event.args)
            elif event.kind == "heal_oneway":
                open_cuts.discard(event.args)
        assert not open_cuts

    def test_at_most_one_replica_down_per_group(self):
        schedule = self._gen(11, replica_crashes_per_group=3)
        down: dict = {}
        for event in schedule:
            if event.kind in ("crash_replica", "crash_leader"):
                group = event.args[0]
                down[group] = down.get(group, 0) + 1
                assert down[group] <= 1, f"two replicas down in {group}"
            elif event.kind in ("recover_replica", "recover_leader"):
                down[event.args[0]] -= 1

    def test_events_within_horizon(self):
        config = ChaosConfig(duration=10.0, start_after=1.0)
        schedule = generate(config, ["p0"], seed=5)
        for event in schedule:
            assert 1.0 <= event.at <= 10.0

    def test_no_links_no_cuts(self):
        config = ChaosConfig(duration=10.0)
        schedule = generate(config, ["p0"], seed=5, link_actors=())
        kinds = {e.kind for e in schedule}
        assert "cut" not in kinds and "cut_oneway" not in kinds


class TestTrafficFaultValidation:
    def test_loss_burst_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration must be positive"):
            FaultEvent(1.0, "loss_burst", (-2.0, 0.5))

    def test_loss_burst_rejects_probability_out_of_range(self):
        with pytest.raises(ValueError, match="probability"):
            FaultEvent(1.0, "loss_burst", (1.0, 1.5))

    def test_loss_burst_rejects_probability_one(self):
        """Certain loss is outside the domain everywhere ([0, 1), same as
        Network); model a dead link with a cut instead."""
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            FaultEvent(1.0, "loss_burst", (2.0, 1.0))

    def test_delay_spike_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(1.0, "delay_spike", (1.0, -0.1))

    def test_valid_traffic_faults_accepted(self):
        FaultEvent(1.0, "loss_burst", (2.0, 0.0))
        FaultEvent(1.0, "loss_burst", (2.0, 0.999))
        FaultEvent(1.0, "delay_spike", (0.5, 0.0))


class TestReconfigFaultValidation:
    def test_arities(self):
        FaultEvent(1.0, "crash_mid_split", ("p0",))
        FaultEvent(1.0, "crash_oracle_during_reconfig")
        with pytest.raises(ValueError, match="takes 1 args"):
            FaultEvent(1.0, "crash_mid_split", ())
        with pytest.raises(ValueError, match="takes 0 args"):
            FaultEvent(1.0, "crash_oracle_during_reconfig", ("oracle",))

    def test_lose_cutover_msgs_shares_loss_burst_domain(self):
        FaultEvent(1.0, "lose_cutover_msgs", (0.5, 0.0))
        FaultEvent(1.0, "lose_cutover_msgs", (0.5, 0.999))
        with pytest.raises(ValueError, match="duration must be positive"):
            FaultEvent(1.0, "lose_cutover_msgs", (0.0, 0.5))
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            FaultEvent(1.0, "lose_cutover_msgs", (0.5, 1.0))


ELASTIC_KINDS = {
    "crash_mid_split", "crash_oracle_during_reconfig", "lose_cutover_msgs",
}


class TestGenerateReconfigFaults:
    def _gen(self, seed, **kwargs):
        config = ChaosConfig(duration=10.0, start_after=1.0, **kwargs)
        return generate(config, ["p0", "p1"], seed=seed)

    def test_elastic_kinds_absent_by_default(self):
        assert not {e.kind for e in self._gen(42)} & ELASTIC_KINDS

    def test_zero_counts_draw_nothing_from_the_rng(self):
        # With all elastic counts at zero the knob *values* must be
        # inert: pre-existing seeded schedules stay byte-identical.
        a = self._gen(9)
        b = self._gen(
            9, cutover_loss_probability=0.9, cutover_loss_duration=5.0
        )
        assert [(e.at, e.kind, e.args) for e in a] == [
            (e.at, e.kind, e.args) for e in b
        ]

    def test_mid_split_crashes_pair_with_recover_leader(self):
        schedule = self._gen(7, mid_split_crashes=2)
        crashes = [e for e in schedule if e.kind == "crash_mid_split"]
        assert len(crashes) == 2
        assert all(c.args[0] in ("p0", "p1") for c in crashes)
        events = schedule.events
        for crash in crashes:
            assert any(
                e.kind == "recover_leader"
                and e.args == crash.args
                and e.at > crash.at
                for e in events
            ), f"unrecovered {crash.describe()}"

    def test_oracle_reconfig_crashes_recover_the_oracle(self):
        schedule = self._gen(7, oracle_reconfig_crashes=1)
        pairs = [(e.kind, e.args) for e in schedule]
        assert ("crash_oracle_during_reconfig", ()) in pairs
        assert ("recover_leader", ("oracle",)) in pairs

    def test_cutover_loss_bursts_use_configured_shape(self):
        schedule = self._gen(
            7,
            cutover_loss_bursts=2,
            cutover_loss_duration=0.4,
            cutover_loss_probability=0.25,
        )
        bursts = [e for e in schedule if e.kind == "lose_cutover_msgs"]
        assert len(bursts) == 2
        assert all(e.args == (0.4, 0.25) for e in bursts)
