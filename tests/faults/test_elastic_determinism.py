"""Replay determinism with elasticity: same seed, same scenario — the
exported trace JSONL and metric snapshots must match byte for byte,
with elasticity enabled, disabled, and under the reconfig fault comb."""

import pytest

from repro.experiments.elastic import ElasticScenario, fingerprint

SCENARIO = ElasticScenario(duration=3.0, shift_at=1.5)


def assert_identical(scenario):
    trace_a, metrics_a = fingerprint(scenario)
    trace_b, metrics_b = fingerprint(scenario)
    assert trace_a, "empty trace — the gate would be vacuous"
    assert trace_a == trace_b
    assert metrics_a == metrics_b
    return trace_a, metrics_a


class TestElasticDeterminism:
    def test_elastic_run_is_byte_identical(self):
        trace, metrics = assert_identical(SCENARIO)
        # The scenario actually reconfigured, or this proves nothing
        # about elasticity.
        assert '"reconfigs_applied"' in metrics or "reconfigs_applied" in metrics

    def test_static_run_is_byte_identical(self):
        assert_identical(
            ElasticScenario(duration=3.0, shift_at=1.5, elastic=False)
        )

    def test_elastic_and_static_runs_differ(self):
        # Sanity: the elasticity knob is not a no-op in this scenario.
        trace_elastic, _ = fingerprint(SCENARIO)
        trace_static, _ = fingerprint(
            ElasticScenario(duration=3.0, shift_at=1.5, elastic=False)
        )
        assert trace_elastic != trace_static

    @pytest.mark.slow
    def test_chaos_run_is_byte_identical(self):
        assert_identical(
            ElasticScenario(duration=8.0, shift_at=4.0, chaos=True)
        )
