"""Two same-seed flash-crowd runs must be byte-identical: the exported
trace JSONL and the full metric dump.  Every overload decision — shed,
busy, breaker trip, retry backoff — runs on the virtual clock and seeded
RNG streams, so nondeterminism anywhere in the admission path shows up
here as a diff."""

import json
from dataclasses import replace

from repro.experiments.overload import (
    FlashCrowdConfig,
    fingerprint,
    run_flash_crowd,
)

# Small but genuinely overloaded: the assertions below require that the
# run actually sheds, not just that an idle system replays identically.
QUICK = FlashCrowdConfig(
    seed=7,
    n_clients=24,
    duration=3.0,
    burst_at=1.0,
    burst_duration=1.5,
    burst_factor=10.0,
)


class TestFlashCrowdDeterminism:
    def test_trace_and_metrics_byte_identical(self):
        trace_a, metrics_a = fingerprint(QUICK)
        trace_b, metrics_b = fingerprint(QUICK)
        assert trace_a == trace_b
        assert metrics_a == metrics_b
        # The gate must not pass vacuously.
        assert trace_a.count("\n") > 100
        assert '"backpressure"' in trace_a or '"shed"' in trace_a or '"busy"' in trace_a

    def test_overload_decisions_visible_in_fingerprint(self):
        summary, _system = run_flash_crowd(QUICK)
        assert summary["stuck_clients"] == 0
        assert summary["shed"] + summary["busy"] > 0, (
            "flash crowd never hit the admission gate — the determinism "
            "fingerprint would not cover the overload path"
        )
        _trace, metrics = fingerprint(QUICK)
        dump = json.loads(metrics)
        assert json.dumps(dump, sort_keys=True) == metrics  # canonical form

    def test_different_seed_changes_the_run(self):
        # Sanity check that the fingerprint has discriminating power.
        trace_a, _ = fingerprint(QUICK)
        trace_b, _ = fingerprint(replace(QUICK, seed=8))
        assert trace_a != trace_b
