"""The chaos injector: scripted schedules applied to a live system."""

import pytest

from repro.faults import ChaosConfig, ChaosInjector, FaultSchedule, generate_for_system

from tests.faults.conftest import build_chaos_system


class TestInjectorBasics:
    def test_applies_events_at_scheduled_times(self):
        system = build_chaos_system()
        schedule = (
            FaultSchedule()
            .at(0.5, "crash_replica", "p0", 1)
            .at(1.5, "recover_replica", "p0", 1)
        )
        injector = ChaosInjector(system, schedule).arm()
        system.run(until=1.0)
        assert system.servers("p0")[1].crashed
        assert [(k, a) for _, k, a in injector.applied] == [
            ("crash_replica", ("p0", 1))
        ]
        system.run(until=2.0)
        assert not system.servers("p0")[1].crashed
        assert len(injector.applied) == 2
        assert injector.applied[0][0] == pytest.approx(0.5)
        assert injector.applied[1][0] == pytest.approx(1.5)

    def test_arm_twice_raises(self):
        system = build_chaos_system()
        injector = ChaosInjector(system, FaultSchedule()).arm()
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()

    def test_monitor_counts_faults(self):
        system = build_chaos_system()
        schedule = (
            FaultSchedule()
            .at(0.1, "crash_acceptor", "p0", 0)
            .at(0.2, "recover_acceptor", "p0", 0)
            .at(0.3, "crash_acceptor", "p0", 1)
        )
        ChaosInjector(system, schedule).arm()
        system.run(until=1.0)
        counters = system.monitor.labeled_counters("fault")
        assert counters["crash_acceptor"] == 2
        assert counters["recover_acceptor"] == 1


class TestLeaderFaults:
    def test_crash_leader_resolves_at_fire_time(self):
        system = build_chaos_system()
        schedule = (
            FaultSchedule()
            .at(1.0, "crash_leader", "p0")
            .at(3.0, "recover_leader", "p0")
        )
        ChaosInjector(system, schedule).arm()
        system.run(until=2.0)
        group = system.partition_group("p0")
        crashed = [r for r in group.replicas if r.crashed]
        assert len(crashed) == 1
        victim = crashed[0]
        system.run(until=4.0)
        assert not victim.crashed

    def test_recover_leader_without_crash_is_noop(self):
        system = build_chaos_system()
        schedule = FaultSchedule().at(0.5, "recover_leader", "p0")
        ChaosInjector(system, schedule).arm()
        system.run(until=1.0)
        assert all(not r.crashed for r in system.partition_group("p0").replicas)


class TestLinkAndTrafficFaults:
    def test_cut_and_heal_route_to_network(self):
        system = build_chaos_system()
        a, b = "p0/rep0", "p1/rep0"
        schedule = FaultSchedule().at(0.5, "cut", a, b).at(1.5, "heal", a, b)
        ChaosInjector(system, schedule).arm()
        system.run(until=1.0)
        assert not system.net.link_up(a, b)
        system.run(until=2.0)
        assert system.net.link_up(a, b)

    def test_oneway_cut_and_partition_groups(self):
        system = build_chaos_system()
        a, b = "p0/rep0", "p1/rep0"
        side_a = ("p0/rep0", "p0/rep1")
        side_b = ("p1/rep0", "p1/rep1")
        schedule = (
            FaultSchedule()
            .at(0.2, "cut_oneway", a, b)
            .at(0.4, "partition_groups", side_a, side_b)
            .at(0.6, "heal_all")
        )
        ChaosInjector(system, schedule).arm()
        system.run(until=0.3)
        assert not system.net.link_up(a, b)
        assert system.net.link_up(b, a)
        system.run(until=0.5)
        assert not system.net.link_up("p0/rep1", "p1/rep1")
        system.run(until=1.0)
        assert system.net.link_up(a, b)
        assert system.net.link_up("p0/rep1", "p1/rep1")

    def test_loss_burst_and_delay_spike_anchor_at_fire_time(self):
        system = build_chaos_system()
        schedule = (
            FaultSchedule()
            .at(1.0, "loss_burst", 2.0, 0.5)
            .at(1.0, "delay_spike", 2.0, 0.05)
        )
        ChaosInjector(system, schedule).arm()
        system.run(until=1.5)
        p, reason = system.net._effective_loss(system.sim.now)
        assert p == 0.5 and reason == "loss_burst"
        assert system.net._extra_delay(system.sim.now) == 0.05
        system.run(until=3.5)
        p, _ = system.net._effective_loss(system.sim.now)
        assert p == 0.0
        assert system.net._extra_delay(system.sim.now) == 0.0


class TestGenerateForSystem:
    def test_schedule_shapes_to_system(self):
        system = build_chaos_system(n_partitions=3)
        config = ChaosConfig(duration=10.0)
        schedule = generate_for_system(system, config, seed=9)
        groups = {e.args[0] for e in schedule if e.kind.startswith(("crash_", "recover_"))}
        assert groups <= set(system.partition_names) | {system.oracle_group}
        assert len(schedule) > 0
        # replica indices stay within the deployment's bounds
        for event in schedule:
            if event.kind in ("crash_replica", "recover_replica"):
                assert 0 <= event.args[1] < system.config.n_replicas
            if event.kind in ("crash_acceptor", "recover_acceptor"):
                assert 0 <= event.args[1] < system.config.n_acceptors

    def test_exclude_oracle_and_links(self):
        system = build_chaos_system()
        config = ChaosConfig(duration=10.0)
        schedule = generate_for_system(
            system, config, seed=9, include_oracle=False, cut_links=False
        )
        for event in schedule:
            assert event.kind not in ("cut", "heal", "cut_oneway", "heal_oneway")
            if event.kind.startswith(("crash_", "recover_")):
                assert event.args[0] != system.oracle_group


class TestReconfigFaults:
    """The three elastic-reconfiguration fault points resolve their
    applicability at fire time: when nothing is in flight they log and
    do nothing, so dense combs are safe to arm unconditionally."""

    def test_all_three_noop_when_quiescent(self):
        system = build_chaos_system()
        schedule = (
            FaultSchedule()
            .at(0.5, "crash_mid_split", "p0")
            .at(0.6, "crash_oracle_during_reconfig")
            .at(0.7, "lose_cutover_msgs", 0.5, 0.3)
        )
        injector = ChaosInjector(system, schedule).arm()
        system.run(until=1.0)
        # Logged even as no-ops — the applied ledger is the replay record.
        assert len(injector.applied) == 3
        for name, group in system.directory.groups.items():
            assert all(not r.crashed for r in group.replicas), name
        assert not system.net._loss_bursts

    def test_crash_oracle_during_reconfig_pairs_with_recover_leader(self):
        system = build_chaos_system()
        system.start()
        for replica in system.oracle_replicas():
            replica.reconfig_inflight = True
        schedule = (
            FaultSchedule()
            .at(0.5, "crash_oracle_during_reconfig")
            .at(1.5, "recover_leader", system.oracle_group)
        )
        ChaosInjector(system, schedule).arm()
        system.run(until=1.0)
        crashed = [r for r in system.oracle_replicas() if r.crashed]
        assert len(crashed) == 1
        system.run(until=2.0)
        assert not crashed[0].crashed

    def test_crash_mid_split_hits_a_replica_with_handoff_state(self):
        system = build_chaos_system()
        system.start()
        victim = system.servers("p0")[0]
        victim.in_transit.add("ghost-node")  # handoff state in flight
        schedule = (
            FaultSchedule()
            .at(0.5, "crash_mid_split", "p0")
            .at(1.5, "recover_leader", "p0")
        )
        ChaosInjector(system, schedule).arm()
        system.run(until=1.0)
        assert victim.crashed
        assert all(
            not r.crashed for r in system.servers("p0") if r is not victim
        )
        system.run(until=2.0)
        assert not victim.crashed

    def test_lose_cutover_msgs_bursts_only_in_flight(self):
        system = build_chaos_system()
        system.start()
        system.oracle_replicas()[0].reconfig_inflight = True
        schedule = FaultSchedule().at(0.5, "lose_cutover_msgs", 0.4, 0.3)
        ChaosInjector(system, schedule).arm()
        system.run(until=1.0)
        p, reason = system.net._effective_loss(0.6)
        assert p == 0.3 and reason == "loss_burst"
        p, _ = system.net._effective_loss(1.5)
        assert p == 0.0
