"""Seeded replay with tracing enabled is deterministic: two identical
runs — same workload seed, same chaos schedule — export byte-identical
JSONL trace logs."""

import io

from repro.core.client import ScriptedWorkload
from repro.faults import ChaosConfig, ChaosInjector, generate_for_system
from repro.smr import Command

from tests.faults.conftest import build_chaos_system


def scripted_commands(n_cmds=10, n_keys=6):
    cmds = []
    for i in range(n_cmds):
        k = i % n_keys
        if i % 3 == 0:
            cmds.append(Command(f"c:{i}", "write", (f"k{k}", i)))
        elif i % 3 == 1:
            cmds.append(Command(f"c:{i}", "read", (f"k{k}",)))
        else:
            cmds.append(
                Command(f"c:{i}", "transfer", (f"k{k}", f"k{(k + 1) % n_keys}", 1))
            )
    return cmds


def traced_chaos_jsonl(seed, chaos_seed, chaos=True):
    system = build_chaos_system(
        n_keys=6,
        n_partitions=2,
        seed=seed,
        loss_probability=0.02,
        client_timeout=0.25,
        client_timeout_cap=2.0,
        tracing=True,
    )
    if chaos:
        config = ChaosConfig(duration=6.0, start_after=0.5)
        schedule = generate_for_system(system, config, seed=chaos_seed)
        ChaosInjector(system, schedule).arm()
    system.add_client(ScriptedWorkload(scripted_commands()))
    system.run(until=60.0)
    buf = io.StringIO()
    system.tracer.export_jsonl(buf)
    return buf.getvalue()


class TestTraceDeterminism:
    def test_same_seeds_byte_identical_jsonl(self):
        """Acceptance scenario: seeded replay with tracing enabled
        produces the identical event log."""
        a = traced_chaos_jsonl(seed=5, chaos_seed=77)
        b = traced_chaos_jsonl(seed=5, chaos_seed=77)
        assert a == b
        assert a  # non-trivial: the log actually has content

    def test_chaos_events_land_in_the_log(self):
        log = traced_chaos_jsonl(seed=5, chaos_seed=77)
        assert '"name": "fault"' in log

    def test_different_chaos_seed_different_log(self):
        a = traced_chaos_jsonl(seed=5, chaos_seed=77)
        b = traced_chaos_jsonl(seed=5, chaos_seed=78)
        assert a != b

    def test_fault_free_runs_replay_identically_too(self):
        a = traced_chaos_jsonl(seed=3, chaos_seed=0, chaos=False)
        b = traced_chaos_jsonl(seed=3, chaos_seed=0, chaos=False)
        assert a == b
