"""Replay determinism with compartmentalization: same seed, same
scenario — the exported trace JSONL and metric snapshots must match
byte for byte, with the stages enabled, disabled, and under the stage
fault comb (proxy crashes + forced lease expiries)."""

import pytest

from dataclasses import replace

from repro.experiments.compartment import CompartmentScenario, fingerprint

SCENARIO = CompartmentScenario(duration=2.0, n_clients=8)


def assert_identical(scenario):
    trace_a, metrics_a = fingerprint(scenario)
    trace_b, metrics_b = fingerprint(scenario)
    assert trace_a, "empty trace — the gate would be vacuous"
    assert trace_a == trace_b
    assert metrics_a == metrics_b
    return trace_a, metrics_a


class TestCompartmentDeterminism:
    def test_compartment_run_is_byte_identical(self):
        _, metrics = assert_identical(SCENARIO)
        # The scenario actually served local reads, or this proves
        # nothing about the read path.
        assert "event=local_ok" in metrics

    def test_baseline_run_is_byte_identical(self):
        _, metrics = assert_identical(replace(SCENARIO, compartment=False))
        # The off switch is total: no stage counter families at all.
        for family in ("proxy{", "lease{", "learner_reads{", "reads{"):
            assert family not in metrics

    def test_compartment_and_baseline_runs_differ(self):
        # Sanity: the compartment knob is not a no-op in this scenario.
        trace_on, _ = fingerprint(SCENARIO)
        trace_off, _ = fingerprint(replace(SCENARIO, compartment=False))
        assert trace_on != trace_off

    def test_lease_ablation_run_is_byte_identical(self):
        _, metrics = assert_identical(replace(SCENARIO, lease=False))
        assert "event=local_ok" not in metrics

    @pytest.mark.slow
    def test_chaos_run_is_byte_identical(self):
        _, metrics = assert_identical(
            replace(SCENARIO, duration=4.0, chaos=True)
        )
        assert "fault{" in metrics
